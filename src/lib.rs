//! **semilocal-suite** — efficient parallel algorithms for string
//! comparison.
//!
//! A Rust reproduction of Mishin, Berezun & Tiskin, *Efficient Parallel
//! Algorithms for String Comparison* (ICPP 2021): semi-local LCS via
//! sticky braid combing, steady-ant braid multiplication, hybrid
//! parallel algorithms, and the paper's novel carry-free bit-parallel
//! LCS — plus every baseline it is evaluated against.
//!
//! # Quick start
//!
//! ```
//! use semilocal_suite::prelude::*;
//!
//! // One O(mn) comb answers LCS queries for *every* substring window.
//! let kernel = iterative_combing(b"tagata", b"gattacagatta");
//! let scores = kernel.index();
//! assert_eq!(scores.lcs(), prefix_rowmajor(b"tagata", b"gattacagatta"));
//! // best window of length 6 in b, from the same kernel:
//! let best = (0..=6).max_by_key(|&i| scores.string_substring(i, i + 6)).unwrap();
//! assert_eq!(
//!     scores.string_substring(best, best + 6),
//!     prefix_rowmajor(b"tagata", &b"gattacagatta"[best..best + 6]),
//! );
//! ```
//!
//! # Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`perm`] | permutations, dominance sums, unit-Monge reference product, range counting |
//! | [`braid`] | steady-ant multiplication (basic / precalc / memory / combined / parallel) |
//! | [`semilocal`] | combing algorithms and the semi-local kernel API |
//! | [`bitpar`] | carry-free bit-parallel LCS (Listing 8) and its variants |
//! | [`baselines`] | DP LCS, Hirschberg, adder-based bit-parallel LCS |
//! | [`apps`] | approximate matching, similarity matrices, clustering |
//! | [`bsp`] | BSP cost model for the parallel algorithms (ref [25]) |
//! | [`datagen`] | synthetic σ-strings, binary strings, genome simulator, FASTA |
//! | [`engine`] | concurrent comparison engine: bounded queue, kernel cache, adaptive dispatch, TCP server |
//! | [`osed`] | output-sensitive edit distance: SA+RMQ LCP oracle, Landau–Vishkin diagonal BFS |

pub use slcs_apps as apps;
pub use slcs_baselines as baselines;
pub use slcs_bitpar as bitpar;
pub use slcs_braid as braid;
pub use slcs_bsp as bsp;
pub use slcs_datagen as datagen;
pub use slcs_engine as engine;
pub use slcs_osed as osed;
pub use slcs_perm as perm;
pub use slcs_semilocal as semilocal;

/// One-stop imports for applications.
pub mod prelude {
    pub use slcs_apps::{ApproxMatcher, Occurrence};
    pub use slcs_baselines::{hirschberg_lcs, prefix_antidiag, prefix_rowmajor};
    pub use slcs_bitpar::{bit_lcs_alphabet, bit_lcs_new2};
    pub use slcs_braid::{parallel_steady_ant, steady_ant, steady_ant_combined};
    pub use slcs_datagen::{binary_string, genome_pair, normal_string, seeded_rng};
    pub use slcs_engine::{CompareRequest, Engine, EngineConfig, Operation, Payload, Submit};
    pub use slcs_perm::Permutation;
    pub use slcs_semilocal::{
        antidiag_combing_branchless, grid_hybrid_combing, hybrid_combing, iterative_combing,
        recursive_combing, SemiLocalKernel, SemiLocalScores,
    };
}

/// Renders a reduced sticky braid as ASCII art (Figure 1 style): strands
/// enter on the left and top edges of the `m × n` grid and exit on the
/// bottom and right. Intended for documentation and the `braid_art`
/// example; quadratic in the grid size.
pub fn render_braid<T: Eq>(a: &[T], b: &[T]) -> String {
    use std::fmt::Write;
    let m = a.len();
    let n = b.len();
    // Re-run combing, tracking the strand occupying every cell edge.
    let mut h_strands: Vec<u32> = (0..m as u32).collect();
    let mut v_strands: Vec<u32> = (m as u32..(m + n) as u32).collect();
    // cell_cross[i][j] = did the strands swap lanes in cell (i, j)?
    let mut turn = vec![false; m * n];
    for (i, ac) in a.iter().enumerate() {
        let hi = m - 1 - i;
        let mut h = h_strands[hi];
        for (j, bc) in b.iter().enumerate() {
            let v = v_strands[j];
            if ac == bc || h > v {
                turn[i * n + j] = true;
                v_strands[j] = h;
                h = v;
            }
        }
        h_strands[hi] = h;
    }
    // Draw: each cell is 3 columns wide, 2 rows tall. A "turn" cell shows
    // the strands bending (╮/╰), a "cross" cell shows them passing (┼).
    let mut out = String::new();
    for i in 0..m {
        let mut top = String::new();
        let mut bot = String::new();
        for j in 0..n {
            if turn[i * n + j] {
                top.push_str("─╮ ");
                bot.push_str(" ╰─");
            } else {
                top.push_str("─┼─");
                bot.push_str(" │ ");
            }
        }
        writeln!(out, "{top}").unwrap();
        writeln!(out, "{bot}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_wired() {
        let k = semilocal::iterative_combing(b"abc", b"cab");
        assert_eq!(k.lcs(), baselines::prefix_rowmajor(b"abc", b"cab"));
        assert_eq!(bitpar::bit_lcs_alphabet(&[0, 1, 2], &[2, 0, 1]), 2);
    }

    #[test]
    fn combing_produces_a_reduced_braid() {
        // Simulate the braid cell by cell, tracking every PAIR of strand
        // identities that cross; reducedness = no pair crosses twice.
        let a = b"abacbbca";
        let b = b"bcabcabacb";
        let (m, n) = (a.len(), b.len());
        let mut h: Vec<u32> = (0..m as u32).collect();
        let mut v: Vec<u32> = (m as u32..(m + n) as u32).collect();
        let mut crossed = std::collections::HashSet::new();
        for (i, &ac) in a.iter().enumerate() {
            let hi = m - 1 - i;
            let mut hs = h[hi];
            for j in 0..n {
                let vs = v[j];
                if ac == b[j] || hs > vs {
                    // turn: no crossing
                    v[j] = hs;
                    hs = vs;
                } else {
                    // crossing: record the unordered pair
                    let pair = (hs.min(vs), hs.max(vs));
                    assert!(
                        crossed.insert(pair),
                        "strands {pair:?} crossed twice at cell ({i},{j})"
                    );
                }
            }
            h[hi] = hs;
        }
        // and the braid is fully combed: ends define a permutation with
        // exactly the recorded inversions
        let kernel = semilocal::iterative_combing(a, b);
        let perm = kernel.permutation();
        let inversions = (0..m + n)
            .flat_map(|x| (x + 1..m + n).map(move |y| (x, y)))
            .filter(|&(x, y)| perm.col_of(x) > perm.col_of(y))
            .count();
        assert_eq!(
            inversions,
            crossed.len(),
            "kernel inversions must equal the number of physical crossings"
        );
    }

    #[test]
    fn render_braid_has_expected_shape() {
        let art = render_braid(b"ab", b"ba");
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4); // 2 rows × 2 lines
        assert!(lines[0].chars().count() >= 6);
        // the grid must contain at least one crossing and one turn for
        // this input (one match per row)
        assert!(art.contains('┼'));
        assert!(art.contains('╮'));
    }
}
