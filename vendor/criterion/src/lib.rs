//! Vendored, dependency-free subset of the `criterion` API.
//!
//! Provides the benchmark-definition surface this workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `throughput` / `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], [`Throughput`], `criterion_group!` /
//! `criterion_main!` — with a simple measurement loop: one warmup call,
//! then `sample_size` timed iterations, reporting min / median / mean to
//! stdout. No statistical analysis, plots, or HTML reports.
//!
//! When invoked by `cargo test --benches` (criterion's `--test` flag),
//! each benchmark body runs exactly once so test runs stay fast.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmark result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration label used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` runs bench binaries with `--test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
            _measurement: std::marker::PhantomData,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let test_mode = self.test_mode;
        run_one(name, 10, None, test_mode, f);
    }
}

/// Measurement backends (only wall-clock time here).
pub mod measurement {
    /// The default (and only) measurement: `std::time::Instant` deltas.
    pub struct WallTime;
}

/// A set of related benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, self.throughput, self.criterion.test_mode, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.sample_size, self.throughput, self.criterion.test_mode, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(&mut self) {}
}

/// Timing context passed to each benchmark body.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f()); // warmup
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            self.durations.push(t.elapsed());
        }
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    mut f: impl FnMut(&mut Bencher),
) {
    let samples = if test_mode { 1 } else { samples };
    let mut b = Bencher { samples, durations: Vec::with_capacity(samples) };
    f(&mut b);
    if b.durations.is_empty() {
        println!("  {label:<40} (no measurements)");
        return;
    }
    b.durations.sort();
    let median = b.durations[b.durations.len() / 2];
    let min = b.durations[0];
    let mean = b.durations.iter().sum::<Duration>() / b.durations.len() as u32;
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => format!("  {}/s", si(n as f64 / median.as_secs_f64())),
            Throughput::Bytes(n) => format!("  {}B/s", si(n as f64 / median.as_secs_f64())),
        })
        .unwrap_or_default();
    println!("  {label:<40} min {:>10?}  median {:>10?}  mean {:>10?}{rate}", min, median, mean);
}

fn si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}K", x / 1e3)
    } else {
        format!("{x:.2}")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3).throughput(Throughput::Elements(100));
            g.bench_function("noop", |b| {
                b.iter(|| ran += 1);
            });
            g.finish();
        }
        // warmup + 1 test-mode sample
        assert_eq!(ran, 2);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("algo", 42);
        assert_eq!(id.name, "algo/42");
    }
}
