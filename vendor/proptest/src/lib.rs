//! Vendored, dependency-free subset of the `proptest` API.
//!
//! Supports the shapes this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), range and [`Just`] strategies, tuple strategies,
//! [`collection::vec`], `prop_flat_map` / `prop_map` / `prop_perturb`,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failure reports the
//! generated input as-is via `Debug`), and generation is driven by a
//! deterministic per-test SplitMix64 stream, so failures reproduce
//! exactly on re-run.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic generation stream (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// An independent stream, handed by value to `prop_perturb` closures.
    pub fn fork(&mut self) -> TestRng {
        TestRng::from_seed(self.next_u64())
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a, used to derive a per-test seed from the test name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------

/// Runner configuration (`cases` = inputs generated per test).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Outcome of one test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip this input.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value: Debug;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<F, V2>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> V2,
        V2: Debug,
    {
        MapStrategy { inner: self, f }
    }

    fn prop_flat_map<F, S2>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S2,
        S2: Strategy,
    {
        FlatMapStrategy { inner: self, f }
    }

    /// Derives a value from the generated one plus an independent RNG
    /// (handed by value, as in real proptest).
    fn prop_perturb<F, V2>(self, f: F) -> PerturbStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> V2,
        V2: Debug,
    {
        PerturbStrategy { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy { inner: self, f, reason }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> V2, V2: Debug> Strategy for MapStrategy<S, F> {
    type Value = V2;

    fn new_value(&self, rng: &mut TestRng) -> V2 {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> S2, S2: Strategy> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.new_value(rng);
        (self.f)(mid).new_value(rng)
    }
}

pub struct PerturbStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value, TestRng) -> V2, V2: Debug> Strategy for PerturbStrategy<S, F> {
    type Value = V2;

    fn new_value(&self, rng: &mut TestRng) -> V2 {
        let v = self.inner.new_value(rng);
        let fork = rng.fork();
        (self.f)(v, fork)
    }
}

pub struct FilterStrategy<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates in a row", self.reason);
    }
}

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

pub mod collection {
    use super::{Range, RangeInclusive, Strategy, TestRng};

    /// Inclusive length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// A `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// item expands to a `#[test]` that runs `body` over `cases` generated
/// inputs, panicking with the generated input on the first failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @config($cfg) $($rest)* }
    };
    (@config($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_seed(
                $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                let input = ($($crate::Strategy::new_value(&($strat), &mut rng),)+);
                let shown = format!("{:?}", input);
                let ($($pat,)+) = input;
                let result: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match result {
                    Ok(()) => case += 1,
                    Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < 4 * config.cases.max(16),
                            "too many prop_assume! rejections in {}",
                            stringify!($name),
                        );
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {}\ninput: {}",
                            case + 1, config.cases, msg, shown,
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @config($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = (3..9u8).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let xs = collection::vec(0..4u8, 2..=5).new_value(&mut rng);
            assert!((2..=5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn flat_map_and_perturb_compose() {
        let strat = (1usize..=8).prop_flat_map(|n| {
            Just(n)
                .prop_perturb(|n, mut rng| (0..n).map(|_| rng.next_u64() % 2).collect::<Vec<_>>())
        });
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let bits = strat.new_value(&mut rng);
            assert!((1..=8).contains(&bits.len()));
            assert!(bits.iter().all(|&b| b < 2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_binds_tuples((a, b) in (0..10u32, 0..10u32), n in 1usize..4) {
            prop_assume!(a != 9);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(n.checked_mul(1).unwrap(), n);
        }
    }

    #[test]
    fn failures_report_the_input() {
        // Simulate the macro expansion for a failing body.
        let r: Result<(), TestCaseError> = (|x: u32| {
            prop_assert_eq!(x, 0u32);
            Ok(())
        })(3);
        match r {
            Err(TestCaseError::Fail(msg)) => assert!(msg.contains("left: 3"), "{msg}"),
            other => panic!("expected failure, got {other:?}"),
        }
    }
}
