//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* surface it uses: [`Rng`], [`RngExt`],
//! [`SeedableRng`], [`rngs::StdRng`] and uniform range sampling. The
//! generator is SplitMix64 — statistically fine for test-data generation
//! and Fisher–Yates shuffles, **not** cryptographic. Seeded streams are
//! deterministic and stable across runs and platforms.

/// A source of random 64-bit words.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods on any [`Rng`] (mirrors `rand`'s split between the
/// core word source and the user-facing sampling helpers).
pub trait RngExt: Rng {
    /// A uniform sample from `range` (`a..b` or `a..=b` for integers,
    /// `a..b` for floats).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform sample over `T`'s whole domain (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0f64) < p
    }
}

/// Types samplable uniformly over their whole domain via [`RngExt::random`].
pub trait Standard {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that uniform samples can be drawn from.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                let off = (rng.next_u64() as u128 % span) as $u;
                self.start.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as $u;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

int_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1)
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

float_range!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..17u8);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0..=4usize);
            assert!(w <= 4);
            let f = rng.random_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let n = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
