//! slcs-trace — a zero-dependency structured tracing core.
//!
//! The build environment has no crates.io access, so — like
//! `shim-loom` before it — the observability layer is vendored: this
//! crate provides the span/event recording machinery that the engine,
//! the executor pool and the wavefront drivers instrument themselves
//! with, plus the collector that turns the recorded buffers into a
//! Chrome-tracing JSON (`chrome://tracing`, Perfetto) or a plain-text
//! span tree.
//!
//! Design constraints, in priority order:
//!
//! 1. **Disabled tracing costs ~nothing.** Every instrumentation macro
//!    starts with [`enabled`] — a single `Relaxed` atomic load — and
//!    does no other work when tracing is off. Hot paths (per-diagonal
//!    wavefront chunks, pool jobs) stay uninstrumented in the generated
//!    code beyond that one load and branch.
//! 2. **Recording is lock-free.** Each thread owns a fixed-capacity
//!    event buffer ([`ring`]) of plain atomics; recording an event is a
//!    handful of `Relaxed` stores plus one `Release` publish of the
//!    head index. When the buffer fills, events are dropped and counted
//!    ([`stats`] reports the drop count) — tracing never blocks or
//!    allocates on a hot path. The only locks are on cold paths: the
//!    once-per-thread buffer registration, the once-per-call-site name
//!    interning (cached in a [`Site`] static), and `&'static str` field
//!    *values*, which intern per event and are therefore documented as
//!    "keep off per-cell hot paths".
//! 3. **Collection is safe at any time.** The collector ([`collect`])
//!    reads the buffers while writers may still be appending; slots are
//!    atomics, so a concurrent read is at worst *stale*, never unsound.
//!    Buffers are reset generationally: [`enable_fresh`] bumps a global
//!    epoch and each writer lazily resets its own buffer when it next
//!    records, so no thread ever touches another thread's indices.
//!
//! # Span model
//!
//! A [`SpanGuard`] records a `Begin` event when created and the
//! matching `End` when dropped; a thread-local span stack tracks
//! nesting (see [`current_depth`]). `Instant` events mark points,
//! `Counter` events carry a value. Spans carry up to three key/value
//! fields (`u64` or interned `&'static str`).
//!
//! # Speculative capture
//!
//! Independently of the global flag, a thread can arm a bounded
//! [`capture`] buffer for a window of work (e.g. one engine request)
//! and later *take* the buffered span tree (the request turned out to
//! be slow) or *discard* it (the common fast path). Instrumentation
//! sites gate on [`recording`] — global flag OR armed capture — so
//! exemplar capture works with full tracing off.
//!
//! ```
//! slcs_trace::enable_fresh();
//! {
//!     let _sweep = slcs_trace::span!("sweep", "n" => 4096u64);
//!     let _diag = slcs_trace::span!("diag", "d" => 7u64, "len" => 8u64);
//!     slcs_trace::instant!("cache", "status" => "hit");
//! }
//! slcs_trace::set_enabled(false);
//! let timeline = slcs_trace::drain();
//! assert!(timeline.to_chrome_json().contains("\"ph\":\"B\""));
//! ```

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub mod capture;
pub mod collect;
pub(crate) mod intern;
pub(crate) mod ring;
pub(crate) mod span;

pub use collect::{drain, FieldOut, Timeline, TraceEvent};
pub use ring::{stats, TraceStats};
pub use span::{current_depth, instant, span_enter, SpanGuard};

// ---------------------------------------------------------------------
// The global enabled flag and buffer generation (epoch)
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Buffer generation. Bumping it (see [`enable_fresh`]) logically
/// clears every thread buffer: each writer compares its buffer's epoch
/// on the next record and resets its *own* head, so no cross-thread
/// index writes ever happen.
static EPOCH: AtomicUsize = AtomicUsize::new(1);

/// Is tracing on? One `Relaxed` load — the entire disabled-path cost of
/// every instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    // ORDERING: Relaxed — an on/off hint; instrumentation only needs
    // eventual visibility, and no data is published through the flag
    // (event slots carry their own ordering).
    ENABLED.load(Ordering::Relaxed)
}

/// Should instrumentation sites record? True when global tracing is on
/// *or* the calling thread has an armed [`capture`] buffer. This is
/// the macro gate: one relaxed load plus one thread-local flag read on
/// the fully-disabled path.
#[inline(always)]
pub fn recording() -> bool {
    enabled() || capture::armed()
}

/// Turns tracing on or off without touching recorded events.
pub fn set_enabled(on: bool) {
    // ORDERING: Relaxed — see `enabled`.
    ENABLED.store(on, Ordering::Relaxed);
}

/// Starts a fresh trace: logically clears all thread buffers (epoch
/// bump; writers reset lazily) and enables recording.
pub fn enable_fresh() {
    // ORDERING: Relaxed — writers re-read the epoch on every record;
    // a briefly-stale read only delays the reset by one event.
    EPOCH.fetch_add(1, Ordering::Relaxed);
    set_enabled(true);
}

pub(crate) fn current_epoch() -> usize {
    // ORDERING: Relaxed — see `enable_fresh`.
    EPOCH.load(Ordering::Relaxed)
}

/// Microseconds since the process's first trace activity (the common
/// timebase of every event).
pub(crate) fn now_micros() -> u64 {
    static T0: OnceLock<Instant> = OnceLock::new();
    T0.get_or_init(Instant::now).elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------
// Event vocabulary
// ---------------------------------------------------------------------

/// What an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A span opened (RAII guard created).
    Begin,
    /// A span closed (guard dropped).
    End,
    /// A point-in-time marker.
    Instant,
    /// A named value sample.
    Counter,
}

impl Kind {
    pub(crate) fn code(self) -> u64 {
        match self {
            Kind::Begin => 1,
            Kind::End => 2,
            Kind::Instant => 3,
            Kind::Counter => 4,
        }
    }

    pub(crate) fn from_code(code: u64) -> Option<Kind> {
        match code {
            1 => Some(Kind::Begin),
            2 => Some(Kind::End),
            3 => Some(Kind::Instant),
            4 => Some(Kind::Counter),
            _ => None,
        }
    }
}

/// A field value: a number, or an interned static string.
#[derive(Clone, Copy, Debug)]
pub enum FieldValue {
    U64(u64),
    /// Interned string id (resolved back at collection time).
    Str(u16),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<&'static str> for FieldValue {
    /// Interns the value (one short global lock). Fine for low-rate
    /// events (request outcomes, cache statuses); keep string-valued
    /// fields off per-cell hot paths — numeric fields are lock-free.
    fn from(v: &'static str) -> Self {
        FieldValue::Str(intern::intern(v))
    }
}

/// Up to three key/value fields attached to an event. Keys are
/// [`Site`] statics so their interning is cached per call site.
pub type Fields = [Option<(&'static Site, FieldValue)>; 3];

/// The no-fields constant for bare spans and instants.
pub const NO_FIELDS: Fields = [None, None, None];

// ---------------------------------------------------------------------
// Call sites
// ---------------------------------------------------------------------

/// A named instrumentation call site. Declared as a `static` (the
/// macros do this for you), it caches the interned id of its name so
/// the hot recording path never takes the intern lock.
pub struct Site {
    name: &'static str,
    /// 0 = not interned yet; otherwise interned id + 1.
    id: AtomicU32,
}

impl Site {
    pub const fn new(name: &'static str) -> Site {
        Site { name, id: AtomicU32::new(0) }
    }

    /// The interned id of this site's name (interns on first use).
    pub fn id(&self) -> u16 {
        // ORDERING: Relaxed — a once-set cache; racing initializers
        // compute and store the same value.
        let cached = self.id.load(Ordering::Relaxed);
        if cached != 0 {
            return (cached - 1) as u16;
        }
        let id = intern::intern(self.name);
        // ORDERING: Relaxed — see above.
        self.id.store(id as u32 + 1, Ordering::Relaxed);
        id
    }
}

/// Records a counter sample (named value at a point in time).
pub fn counter(site: &'static Site, value: u64) {
    ring::record(Kind::Counter, site.id(), Some((site.id(), FieldValue::U64(value))), None, None);
}

// ---------------------------------------------------------------------
// Instrumentation macros
// ---------------------------------------------------------------------

/// Opens a span: records `Begin` now and `End` when the returned guard
/// drops. Yields `Option<SpanGuard>` — `None` when tracing is
/// disabled, so the disabled cost is one relaxed load. Bind the result
/// (`let _span = span!(…)`) or the span closes immediately.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        if $crate::recording() {
            static SITE: $crate::Site = $crate::Site::new($name);
            Some($crate::span_enter(&SITE, $crate::NO_FIELDS))
        } else {
            None
        }
    }};
    ($name:literal, $k1:literal => $v1:expr) => {{
        if $crate::recording() {
            static SITE: $crate::Site = $crate::Site::new($name);
            static K1: $crate::Site = $crate::Site::new($k1);
            Some($crate::span_enter(
                &SITE,
                [Some((&K1, $crate::FieldValue::from($v1))), None, None],
            ))
        } else {
            None
        }
    }};
    ($name:literal, $k1:literal => $v1:expr, $k2:literal => $v2:expr) => {{
        if $crate::recording() {
            static SITE: $crate::Site = $crate::Site::new($name);
            static K1: $crate::Site = $crate::Site::new($k1);
            static K2: $crate::Site = $crate::Site::new($k2);
            Some($crate::span_enter(
                &SITE,
                [
                    Some((&K1, $crate::FieldValue::from($v1))),
                    Some((&K2, $crate::FieldValue::from($v2))),
                    None,
                ],
            ))
        } else {
            None
        }
    }};
    ($name:literal, $k1:literal => $v1:expr, $k2:literal => $v2:expr, $k3:literal => $v3:expr) => {{
        if $crate::recording() {
            static SITE: $crate::Site = $crate::Site::new($name);
            static K1: $crate::Site = $crate::Site::new($k1);
            static K2: $crate::Site = $crate::Site::new($k2);
            static K3: $crate::Site = $crate::Site::new($k3);
            Some($crate::span_enter(
                &SITE,
                [
                    Some((&K1, $crate::FieldValue::from($v1))),
                    Some((&K2, $crate::FieldValue::from($v2))),
                    Some((&K3, $crate::FieldValue::from($v3))),
                ],
            ))
        } else {
            None
        }
    }};
}

/// Records an instant (point) event, with up to three fields.
#[macro_export]
macro_rules! instant {
    ($name:literal) => {{
        if $crate::recording() {
            static SITE: $crate::Site = $crate::Site::new($name);
            $crate::instant(&SITE, $crate::NO_FIELDS);
        }
    }};
    ($name:literal, $k1:literal => $v1:expr) => {{
        if $crate::recording() {
            static SITE: $crate::Site = $crate::Site::new($name);
            static K1: $crate::Site = $crate::Site::new($k1);
            $crate::instant(&SITE, [Some((&K1, $crate::FieldValue::from($v1))), None, None]);
        }
    }};
    ($name:literal, $k1:literal => $v1:expr, $k2:literal => $v2:expr) => {{
        if $crate::recording() {
            static SITE: $crate::Site = $crate::Site::new($name);
            static K1: $crate::Site = $crate::Site::new($k1);
            static K2: $crate::Site = $crate::Site::new($k2);
            $crate::instant(
                &SITE,
                [
                    Some((&K1, $crate::FieldValue::from($v1))),
                    Some((&K2, $crate::FieldValue::from($v2))),
                    None,
                ],
            );
        }
    }};
    ($name:literal, $k1:literal => $v1:expr, $k2:literal => $v2:expr, $k3:literal => $v3:expr) => {{
        if $crate::recording() {
            static SITE: $crate::Site = $crate::Site::new($name);
            static K1: $crate::Site = $crate::Site::new($k1);
            static K2: $crate::Site = $crate::Site::new($k2);
            static K3: $crate::Site = $crate::Site::new($k3);
            $crate::instant(
                &SITE,
                [
                    Some((&K1, $crate::FieldValue::from($v1))),
                    Some((&K2, $crate::FieldValue::from($v2))),
                    Some((&K3, $crate::FieldValue::from($v3))),
                ],
            );
        }
    }};
}

/// Records a counter sample (shown as a value track in Chrome tracing).
#[macro_export]
macro_rules! counter {
    ($name:literal, $value:expr) => {{
        if $crate::recording() {
            static SITE: $crate::Site = $crate::Site::new($name);
            $crate::counter(&SITE, $value as u64);
        }
    }};
}

/// Serialization helper for tests in any crate that toggle or drain
/// the process-global trace state.
pub mod test_support {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Tracing state is process-global; tests that enable/drain must
    /// not overlap (cargo runs tests on threads within one binary).
    /// Hold the returned guard for the duration of such a test. The
    /// lock is poison-tolerant: a panicking test does not wedge the
    /// rest of the suite.
    pub fn hold() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_macros_yield_none_and_record_nothing() {
        let _guard = test_support::hold();
        set_enabled(false);
        let before = stats().recorded;
        let span = span!("lib.disabled_probe");
        assert!(span.is_none());
        instant!("lib.disabled_probe_instant");
        counter!("lib.disabled_probe_counter", 7);
        assert_eq!(stats().recorded, before);
    }

    #[test]
    fn sites_intern_once_and_agree_by_name() {
        static A: Site = Site::new("lib.same_name");
        static B: Site = Site::new("lib.same_name");
        assert_eq!(A.id(), B.id());
        assert_eq!(A.id(), A.id());
    }

    #[test]
    fn enable_fresh_starts_an_empty_timeline() {
        let _guard = test_support::hold();
        enable_fresh();
        instant!("lib.fresh_probe");
        enable_fresh();
        set_enabled(false);
        let t = drain();
        assert!(
            !t.events.iter().any(|e| e.name == "lib.fresh_probe"),
            "epoch bump must clear prior events"
        );
    }
}
