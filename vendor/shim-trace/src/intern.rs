//! Global string interner for event/field names.
//!
//! Names in trace events are `u16` ids so a recorded slot fits in four
//! words; this table maps ids back to the `&'static str` they came
//! from. Interning takes a short global lock — callers cache the result
//! (see [`crate::Site`]) so the lock is off every hot path.

use std::sync::{Mutex, OnceLock};

fn table() -> &'static Mutex<Vec<&'static str>> {
    static TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    // Id 0 is reserved for "unknown" so a zeroed slot decodes safely.
    TABLE.get_or_init(|| Mutex::new(vec!["?"]))
}

fn lock() -> std::sync::MutexGuard<'static, Vec<&'static str>> {
    match table().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Interns `name`, returning its stable id. Idempotent per string
/// *content* (linear scan — the table holds tens of entries, one per
/// distinct call-site name, not one per event).
pub(crate) fn intern(name: &'static str) -> u16 {
    let mut t = lock();
    if let Some(ix) = t.iter().position(|&s| s == name) {
        return ix as u16;
    }
    assert!(t.len() < u16::MAX as usize, "trace intern table overflow");
    t.push(name);
    (t.len() - 1) as u16
}

/// Resolves an id back to its string ("?" for unknown ids).
pub(crate) fn resolve(id: u16) -> &'static str {
    let t = lock();
    t.get(id as usize).copied().unwrap_or("?")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let a = intern("intern.alpha");
        let b = intern("intern.alpha");
        let c = intern("intern.beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(resolve(a), "intern.alpha");
        assert_eq!(resolve(c), "intern.beta");
    }

    #[test]
    fn unknown_ids_resolve_to_placeholder() {
        assert_eq!(resolve(u16::MAX), "?");
        assert_eq!(resolve(0), "?");
    }
}
