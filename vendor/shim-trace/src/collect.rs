//! Draining recorded events into an ordered timeline and exporting it.
//!
//! Two export formats:
//! - [`Timeline::to_chrome_json`] — the Chrome trace-event format
//!   (load in `chrome://tracing` or <https://ui.perfetto.dev>). The
//!   output is a single line so it can travel over the engine's
//!   one-line-per-response TCP protocol.
//! - [`Timeline::to_text_tree`] — a human-readable per-thread span
//!   tree with durations, for terminals without a trace viewer.

use crate::{intern, ring, FieldValue, Kind};

/// A resolved field value in a drained event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldOut {
    U64(u64),
    Str(&'static str),
}

/// One drained, name-resolved event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Microseconds since the process trace timebase.
    pub ts_micros: u64,
    /// Stable id of the recording thread's buffer.
    pub tid: u64,
    pub kind: Kind,
    pub name: &'static str,
    pub fields: Vec<(&'static str, FieldOut)>,
}

/// One contributing thread of a [`Timeline`].
#[derive(Clone, Debug)]
pub struct ThreadInfo {
    /// Stable id of the thread's buffer.
    pub tid: u64,
    /// The thread's name at registration time.
    pub label: String,
    /// Events this thread lost to a full buffer in this epoch.
    pub dropped: u64,
}

/// All events of the current trace epoch, ordered by timestamp.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    pub events: Vec<TraceEvent>,
    /// Events lost to full thread buffers in this epoch (sum over
    /// [`Self::threads`]).
    pub dropped: u64,
    /// Every thread that contributed events (or drops).
    pub threads: Vec<ThreadInfo>,
}

/// Drains every registered thread buffer for the current epoch into a
/// single time-ordered [`Timeline`]. Non-destructive: buffers keep
/// their contents until the next [`crate::enable_fresh`]. Safe to call
/// while recording continues (late events simply miss this drain).
pub fn drain() -> Timeline {
    let epoch = crate::current_epoch();
    let mut out = Timeline::default();
    for buf in ring::registered_buffers() {
        let (raw, dropped) = buf.snapshot(epoch);
        out.dropped += dropped;
        if raw.is_empty() && dropped == 0 {
            continue;
        }
        out.threads.push(ThreadInfo { tid: buf.tid, label: buf.label.clone(), dropped });
        for ev in raw {
            let mut fields = Vec::new();
            for f in [ev.f1, ev.f2, ev.f3].into_iter().flatten() {
                let (key, value) = f;
                let value = match value {
                    FieldValue::U64(n) => FieldOut::U64(n),
                    FieldValue::Str(id) => FieldOut::Str(intern::resolve(id)),
                };
                fields.push((intern::resolve(key), value));
            }
            out.events.push(TraceEvent {
                ts_micros: ev.ts,
                tid: buf.tid,
                kind: ev.kind,
                name: intern::resolve(ev.name),
                fields,
            });
        }
    }
    out.events.sort_by_key(|e| (e.ts_micros, e.tid));
    out.threads.sort_by_key(|t| t.tid);
    out
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Timeline {
    /// Serializes to Chrome trace-event JSON (one line, no trailing
    /// newline). `B`/`E` duration events for spans, `i` for instants,
    /// `C` for counters, plus `M` metadata naming each thread track.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut push_event = |out: &mut String, body: &dyn Fn(&mut String)| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            body(out);
        };
        // Name the (single) process so Perfetto shows "slcs" rather
        // than a bare pid-1 group.
        push_event(&mut out, &|out: &mut String| {
            out.push_str(
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"slcs\"}}",
            );
        });
        for t in &self.threads {
            push_event(&mut out, &|out: &mut String| {
                out.push_str(&format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"",
                    t.tid
                ));
                escape_into(out, &t.label);
                out.push_str("\"}}");
            });
        }
        for ev in &self.events {
            push_event(&mut out, &|out: &mut String| {
                let ph = match ev.kind {
                    Kind::Begin => "B",
                    Kind::End => "E",
                    Kind::Instant => "i",
                    Kind::Counter => "C",
                };
                out.push_str("{\"name\":\"");
                escape_into(out, ev.name);
                out.push_str(&format!(
                    "\",\"cat\":\"slcs\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{}",
                    ev.ts_micros, ev.tid
                ));
                if ev.kind == Kind::Instant {
                    out.push_str(",\"s\":\"t\"");
                }
                if !ev.fields.is_empty() {
                    out.push_str(",\"args\":{");
                    for (i, (key, value)) in ev.fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('"');
                        escape_into(out, key);
                        out.push_str("\":");
                        match value {
                            FieldOut::U64(n) => out.push_str(&n.to_string()),
                            FieldOut::Str(s) => {
                                out.push('"');
                                escape_into(out, s);
                                out.push('"');
                            }
                        }
                    }
                    out.push('}');
                }
                out.push('}');
            });
        }
        // Per-thread drop counts as counter events: the Perfetto UI
        // renders them as a value track per thread, so lost events are
        // visible in the viewer (and not just in the top-level total or
        // the text tree). Stamped at the end of the timeline — the drop
        // count is only known once the epoch is drained.
        let end_ts = self.events.last().map(|e| e.ts_micros).unwrap_or(0);
        for t in &self.threads {
            push_event(&mut out, &|out: &mut String| {
                out.push_str(&format!(
                    "{{\"name\":\"slcsDroppedEvents\",\"cat\":\"slcs\",\"ph\":\"C\",\"ts\":{end_ts},\"pid\":1,\"tid\":{},\"args\":{{\"dropped\":{}}}}}",
                    t.tid, t.dropped
                ));
            });
        }
        out.push_str(&format!("],\"slcsDroppedEvents\":{}}}", self.dropped));
        out
    }

    /// Renders a per-thread indented span tree with durations, e.g.
    ///
    /// ```text
    /// thread 1 (main)
    ///   engine.request [op=lcs] 812us
    ///     engine.kernel_build 640us
    ///     @ engine.cache_hit [status=miss]
    /// ```
    pub fn to_text_tree(&self) -> String {
        let mut out = String::new();
        for t in &self.threads {
            let (tid, label) = (t.tid, &t.label);
            if t.dropped > 0 {
                out.push_str(&format!("thread {tid} ({label}) [{} dropped]\n", t.dropped));
            } else {
                out.push_str(&format!("thread {tid} ({label})\n"));
            }
            // Open Begin events awaiting their End: (event index, depth).
            let mut open: Vec<(usize, usize)> = Vec::new();
            // Lines already emitted; span durations are patched in when
            // the matching End arrives.
            let mut depth = 0usize;
            for (ix, ev) in self.events.iter().enumerate() {
                if ev.tid != tid {
                    continue;
                }
                match ev.kind {
                    Kind::Begin => {
                        out.push_str(&format!(
                            "{}{}{} +{}us\n",
                            "  ".repeat(depth + 1),
                            ev.name,
                            format_fields(&ev.fields),
                            ev.ts_micros
                        ));
                        open.push((ix, depth));
                        depth += 1;
                    }
                    Kind::End => {
                        if let Some((begin_ix, d)) = open.pop() {
                            depth = d;
                            let begin = &self.events[begin_ix];
                            out.push_str(&format!(
                                "{}^ {} {}us\n",
                                "  ".repeat(depth + 1),
                                ev.name,
                                ev.ts_micros.saturating_sub(begin.ts_micros)
                            ));
                        }
                        // An End without a Begin (tracing toggled
                        // mid-span) is silently skipped.
                    }
                    Kind::Instant => {
                        out.push_str(&format!(
                            "{}@ {}{}\n",
                            "  ".repeat(depth + 1),
                            ev.name,
                            format_fields(&ev.fields)
                        ));
                    }
                    Kind::Counter => {
                        out.push_str(&format!(
                            "{}# {}{}\n",
                            "  ".repeat(depth + 1),
                            ev.name,
                            format_fields(&ev.fields)
                        ));
                    }
                }
            }
        }
        if self.dropped > 0 {
            out.push_str(&format!("({} events dropped)\n", self.dropped));
        }
        out
    }
}

fn format_fields(fields: &[(&'static str, FieldOut)]) -> String {
    if fields.is_empty() {
        return String::new();
    }
    let mut out = String::from(" [");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match value {
            FieldOut::U64(n) => out.push_str(&format!("{key}={n}")),
            FieldOut::Str(s) => out.push_str(&format!("{key}={s}")),
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    #[test]
    fn chrome_json_has_all_phases_and_thread_metadata() {
        let _guard = test_support::hold();
        crate::enable_fresh();
        {
            let _span = crate::span!("collect.span", "n" => 42u64, "mode" => "team");
            crate::instant!("collect.mark", "status" => "hit");
            crate::counter!("collect.depth", 3u64);
        }
        crate::set_enabled(false);
        let json = drain().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(!json.contains('\n'), "must be single-line for the TCP protocol");
        assert!(json.contains("\"ph\":\"M\""), "thread metadata: {json}");
        assert!(
            json.contains(
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"slcs\"}}"
            ),
            "process metadata: {json}"
        );
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""), "{json}");
        assert!(json.contains("\"ph\":\"i\"") && json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"n\":42") && json.contains("\"mode\":\"team\""), "{json}");
        assert!(json.contains("\"slcsDroppedEvents\":0"), "{json}");
    }

    #[test]
    fn text_tree_nests_and_reports_durations() {
        let _guard = test_support::hold();
        crate::enable_fresh();
        {
            let _outer = crate::span!("collect.outer");
            let _inner = crate::span!("collect.inner", "d" => 5u64);
        }
        crate::set_enabled(false);
        let tree = drain().to_text_tree();
        let outer_at = tree.find("collect.outer").expect("outer span present");
        let inner_at = tree.find("collect.inner [d=5]").expect("inner span with fields");
        assert!(outer_at < inner_at, "outer opens before inner:\n{tree}");
        assert!(tree.contains("^ collect.inner"), "inner closes:\n{tree}");
        assert!(tree.contains("us\n"), "durations rendered:\n{tree}");
    }

    #[test]
    fn dropped_counts_surface_per_thread_in_both_exporters() {
        let _guard = test_support::hold();
        crate::enable_fresh();
        crate::instant!("collect.drop_probe");
        crate::set_enabled(false);
        let t = drain();
        let me = t
            .threads
            .iter()
            .find(|info| {
                t.events.iter().any(|e| e.name == "collect.drop_probe" && e.tid == info.tid)
            })
            .expect("recording thread listed");
        // No drops expected at this tiny volume; the *track* must exist
        // regardless so Perfetto users can see drops when they happen.
        let json = t.to_chrome_json();
        let needle = format!(
            "{{\"name\":\"slcsDroppedEvents\",\"cat\":\"slcs\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"dropped\":{}}}}}",
            t.events.last().map(|e| e.ts_micros).unwrap_or(0),
            me.tid,
            me.dropped
        );
        assert!(json.contains(&needle), "per-thread drop counter: {json}");
        assert_eq!(t.dropped, t.threads.iter().map(|i| i.dropped).sum::<u64>());
        // The text tree only flags threads that actually lost events.
        let mut flagged = t.clone();
        flagged.threads[0].dropped = 3;
        assert!(flagged.to_text_tree().contains("[3 dropped]"));
        assert!(!t.to_text_tree().contains("dropped]"));
    }

    #[test]
    fn drain_is_nondestructive_within_an_epoch() {
        let _guard = test_support::hold();
        crate::enable_fresh();
        crate::instant!("collect.keep");
        crate::set_enabled(false);
        let first = drain().events.iter().filter(|e| e.name == "collect.keep").count();
        let second = drain().events.iter().filter(|e| e.name == "collect.keep").count();
        assert_eq!(first, 1);
        assert_eq!(second, 1, "drain must not consume events");
    }
}
