//! RAII spans and the thread-local span stack.

use std::cell::RefCell;
use std::marker::PhantomData;

use crate::{ring, FieldValue, Fields, Kind, Site};

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static STACK: RefCell<Vec<u16>> = const { RefCell::new(Vec::new()) };
}

/// Nesting depth of open spans on the calling thread.
pub fn current_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

fn resolve(fields: Fields) -> [Option<(u16, FieldValue)>; 3] {
    [
        fields[0].map(|(k, v)| (k.id(), v)),
        fields[1].map(|(k, v)| (k.id(), v)),
        fields[2].map(|(k, v)| (k.id(), v)),
    ]
}

/// An open span. Records `Begin` on creation (via [`span_enter`]) and
/// the matching `End` when dropped. `!Send` — a span belongs to the
/// thread-local stack it was pushed on.
pub struct SpanGuard {
    name: u16,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(stack.last().copied(), Some(self.name), "span stack out of order");
            stack.pop();
        });
        // If tracing was disabled mid-span this records nothing; the
        // exporters tolerate a Begin without its End.
        ring::record(Kind::End, self.name, None, None, None);
    }
}

/// Opens a span: records `Begin` with `fields` and pushes onto the
/// thread-local stack. Prefer the [`crate::span!`] macro, which also
/// performs the enabled check and caches the call site.
pub fn span_enter(site: &'static Site, fields: Fields) -> SpanGuard {
    let name = site.id();
    let [f1, f2, f3] = resolve(fields);
    ring::record(Kind::Begin, name, f1, f2, f3);
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard { name, _not_send: PhantomData }
}

/// Records an instant event. Prefer the [`crate::instant!`] macro.
pub fn instant(site: &'static Site, fields: Fields) {
    let [f1, f2, f3] = resolve(fields);
    ring::record(Kind::Instant, site.id(), f1, f2, f3);
}

#[cfg(test)]
mod tests {
    use crate::test_support;

    #[test]
    fn nesting_depth_tracks_guard_lifetimes() {
        let _guard = test_support::hold();
        crate::enable_fresh();
        assert_eq!(crate::current_depth(), 0);
        {
            let _outer = crate::span!("span.outer", "n" => 1u64);
            assert_eq!(crate::current_depth(), 1);
            {
                let _inner = crate::span!("span.inner");
                assert_eq!(crate::current_depth(), 2);
            }
            assert_eq!(crate::current_depth(), 1);
        }
        assert_eq!(crate::current_depth(), 0);
        crate::set_enabled(false);
        let t = crate::drain();
        let names: Vec<&str> =
            t.events.iter().filter(|e| e.name.starts_with("span.")).map(|e| e.name).collect();
        // Begin outer, Begin inner, End inner, End outer.
        assert_eq!(names, ["span.outer", "span.inner", "span.inner", "span.outer"]);
    }

    #[test]
    fn unbound_span_closes_immediately() {
        let _guard = test_support::hold();
        crate::enable_fresh();
        let _ = crate::span!("span.immediate");
        assert_eq!(crate::current_depth(), 0, "unbound guard drops at once");
        crate::set_enabled(false);
        crate::drain();
    }
}
