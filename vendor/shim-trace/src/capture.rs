//! Speculative per-thread span capture for slow-request exemplars.
//!
//! A server cannot know a request was slow until the request is done,
//! so capturing an exemplar trace has to be speculative: [`begin`]
//! arms a bounded thread-local buffer before the work starts, and at
//! completion the caller either [`take`]s the buffered span tree (the
//! request breached its SLO) or [`discard`]s it (the common fast
//! path). Capture is independent of the global [`crate::enabled`]
//! flag — exemplars work with full tracing off — and instrumentation
//! sites reach it through [`crate::recording`], so a thread with no
//! armed capture pays one thread-local flag read.
//!
//! The buffer is bounded: events past the limit are dropped and
//! counted (surfaced as the captured timeline's `dropped` total).
//! Capture only sees events recorded *on the arming thread*; work
//! handed to other threads (e.g. an executor pool) shows up in the
//! global trace stream, not the exemplar.

use std::cell::{Cell, RefCell};

use crate::collect::{FieldOut, ThreadInfo, Timeline, TraceEvent};
use crate::{intern, FieldValue, Kind};

struct Buffered {
    ts: u64,
    kind: Kind,
    name: u16,
    fields: [Option<(u16, FieldValue)>; 3],
}

struct State {
    events: Vec<Buffered>,
    limit: usize,
    dropped: u64,
}

thread_local! {
    /// Hot-path flag, kept separate from the buffer so [`armed`] is a
    /// plain `Cell` read with no `RefCell` bookkeeping.
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<State> =
        const { RefCell::new(State { events: Vec::new(), limit: 0, dropped: 0 }) };
}

/// Is a capture armed on the calling thread? (The cheap gate checked
/// by [`crate::recording`].)
#[inline(always)]
pub(crate) fn armed() -> bool {
    ARMED.with(Cell::get)
}

/// Arms capture on the calling thread, buffering up to `limit` events.
/// Any previously armed capture on this thread is discarded. Pair with
/// [`take`] or [`discard`].
pub fn begin(limit: usize) {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        st.events.clear();
        st.limit = limit;
        st.dropped = 0;
    });
    ARMED.with(|a| a.set(true));
}

/// True between a [`begin`] and its matching [`take`]/[`discard`].
pub fn active() -> bool {
    armed()
}

/// Disarms capture and drops the buffered events (the fast-path
/// outcome). The buffer's allocation is retained for the next window.
pub fn discard() {
    ARMED.with(|a| a.set(false));
    STATE.with(|s| s.borrow_mut().events.clear());
}

/// Disarms capture and returns the buffered events as a single-thread
/// [`Timeline`] (render with [`Timeline::to_text_tree`] or
/// [`Timeline::to_chrome_json`]). The timeline's `dropped` count is
/// the number of events lost to the capture limit.
pub fn take() -> Timeline {
    ARMED.with(|a| a.set(false));
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let dropped = st.dropped;
        let label = std::thread::current().name().unwrap_or("capture").to_string();
        let events = st
            .events
            .drain(..)
            .map(|ev| {
                let mut fields = Vec::new();
                for f in ev.fields.into_iter().flatten() {
                    let (key, value) = f;
                    let value = match value {
                        FieldValue::U64(n) => FieldOut::U64(n),
                        FieldValue::Str(id) => FieldOut::Str(intern::resolve(id)),
                    };
                    fields.push((intern::resolve(key), value));
                }
                TraceEvent {
                    ts_micros: ev.ts,
                    tid: 1,
                    kind: ev.kind,
                    name: intern::resolve(ev.name),
                    fields,
                }
            })
            .collect();
        Timeline { events, dropped, threads: vec![ThreadInfo { tid: 1, label, dropped }] }
    })
}

/// Appends one event to the armed buffer. Called from the recording
/// path only when [`armed`] is true.
pub(crate) fn record(
    kind: Kind,
    name: u16,
    f1: Option<(u16, FieldValue)>,
    f2: Option<(u16, FieldValue)>,
    f3: Option<(u16, FieldValue)>,
) {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        if st.events.len() >= st.limit {
            st.dropped += 1;
            return;
        }
        st.events.push(Buffered { ts: crate::now_micros(), kind, name, fields: [f1, f2, f3] });
    });
}

#[cfg(test)]
mod tests {
    use crate::test_support;

    #[test]
    fn capture_records_with_global_tracing_off() {
        let _guard = test_support::hold();
        crate::set_enabled(false);
        let before = crate::stats().recorded;
        super::begin(16);
        assert!(super::active());
        {
            let _span = crate::span!("capture.req", "op" => "lcs", "wait" => 3u64, "req" => 7u64);
            crate::instant!("capture.mark", "status" => "hit");
        }
        let t = super::take();
        assert!(!super::active());
        let tree = t.to_text_tree();
        assert!(tree.contains("capture.req [op=lcs wait=3 req=7]"), "{tree}");
        assert!(tree.contains("@ capture.mark [status=hit]"), "{tree}");
        assert!(tree.contains("^ capture.req"), "span End captured:\n{tree}");
        assert_eq!(t.dropped, 0);
        assert_eq!(crate::stats().recorded, before, "global ring untouched");
    }

    #[test]
    fn capture_is_bounded_and_counts_drops() {
        let _guard = test_support::hold();
        crate::set_enabled(false);
        super::begin(2);
        for _ in 0..5 {
            crate::instant!("capture.flood");
        }
        let t = super::take();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.dropped, 3);
    }

    #[test]
    fn discard_drops_buffered_events() {
        let _guard = test_support::hold();
        crate::set_enabled(false);
        super::begin(16);
        crate::instant!("capture.discarded");
        super::discard();
        super::begin(16);
        let t = super::take();
        assert!(t.events.is_empty(), "discarded events must not leak into the next window");
    }

    #[test]
    fn capture_and_global_ring_record_simultaneously() {
        let _guard = test_support::hold();
        crate::enable_fresh();
        super::begin(16);
        crate::instant!("capture.both");
        let t = super::take();
        crate::set_enabled(false);
        assert_eq!(t.events.len(), 1);
        let global = crate::drain();
        assert!(
            global.events.iter().any(|e| e.name == "capture.both"),
            "event reaches the global ring too"
        );
    }
}
