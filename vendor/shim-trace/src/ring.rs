//! Per-thread lock-free event buffers.
//!
//! Each thread that records events owns one fixed-capacity buffer of
//! atomic slots. The owner is the only writer; the collector reads
//! concurrently. Because every slot field is an atomic (no
//! `UnsafeCell`), a racing read is at worst *stale* — it can observe a
//! slot that is mid-write — never undefined behaviour; the collector
//! additionally orders itself after completed writes by reading `head`
//! with `Acquire` against the owner's `Release` store, so slots below
//! `head` are always fully published.
//!
//! Buffers are never cleared remotely. [`crate::enable_fresh`] bumps a
//! global epoch; each owner notices on its next record and resets its
//! own indices (lazy, owner-only reset), and the collector simply
//! skips buffers whose epoch is behind. On overflow events are dropped
//! and counted — recording never blocks, allocates, or reallocates on
//! the hot path.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::{FieldValue, Kind};

/// Default per-thread buffer capacity (events). Override with the
/// `SLCS_TRACE_BUFFER` environment variable (read once per process).
const DEFAULT_CAPACITY: usize = 64 * 1024;

pub(crate) fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SLCS_TRACE_BUFFER")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CAPACITY)
    })
}

// ---------------------------------------------------------------------
// Slot encoding
// ---------------------------------------------------------------------

// `meta` packs the discriminants:  kind:8 | name:16 | k1:16 | k2:16 | flags:8
// The third field's key does not fit in `meta`; it lives in the slot's
// `ext` word (low 16 bits), with presence/shape still in the flags byte.
const FLAG_F1: u64 = 1;
const FLAG_F1_STR: u64 = 2;
const FLAG_F2: u64 = 4;
const FLAG_F2_STR: u64 = 8;
const FLAG_F3: u64 = 16;
const FLAG_F3_STR: u64 = 32;

fn encode_meta(
    kind: Kind,
    name: u16,
    f1: &Option<(u16, FieldValue)>,
    f2: &Option<(u16, FieldValue)>,
    f3: &Option<(u16, FieldValue)>,
) -> u64 {
    let mut meta = (kind.code() << 56) | ((name as u64) << 40);
    if let Some((k, v)) = f1 {
        meta |= ((*k as u64) << 24) | FLAG_F1;
        if matches!(v, FieldValue::Str(_)) {
            meta |= FLAG_F1_STR;
        }
    }
    if let Some((k, v)) = f2 {
        meta |= ((*k as u64) << 8) | FLAG_F2;
        if matches!(v, FieldValue::Str(_)) {
            meta |= FLAG_F2_STR;
        }
    }
    if let Some((_, v)) = f3 {
        meta |= FLAG_F3;
        if matches!(v, FieldValue::Str(_)) {
            meta |= FLAG_F3_STR;
        }
    }
    meta
}

fn field_bits(v: &FieldValue) -> u64 {
    match v {
        FieldValue::U64(n) => *n,
        FieldValue::Str(id) => *id as u64,
    }
}

/// A decoded event as stored in a slot (ids not yet resolved).
pub(crate) struct RawEvent {
    pub ts: u64,
    pub kind: Kind,
    pub name: u16,
    pub f1: Option<(u16, FieldValue)>,
    pub f2: Option<(u16, FieldValue)>,
    pub f3: Option<(u16, FieldValue)>,
}

struct Slot {
    ts: AtomicU64,
    meta: AtomicU64,
    /// Third-field key (low 16 bits); see the `meta` layout comment.
    ext: AtomicU64,
    f1: AtomicU64,
    f2: AtomicU64,
    f3: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            ts: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            ext: AtomicU64::new(0),
            f1: AtomicU64::new(0),
            f2: AtomicU64::new(0),
            f3: AtomicU64::new(0),
        }
    }

    fn write(&self, ts: u64, meta: u64, ext: u64, f1: u64, f2: u64, f3: u64) {
        // ORDERING: Relaxed — the owner's later `head.store(Release)`
        // publishes all six fields to any `Acquire` reader of `head`.
        self.ts.store(ts, Ordering::Relaxed);
        self.ext.store(ext, Ordering::Relaxed);
        self.f1.store(f1, Ordering::Relaxed);
        self.f2.store(f2, Ordering::Relaxed);
        self.f3.store(f3, Ordering::Relaxed);
        self.meta.store(meta, Ordering::Relaxed);
    }

    fn read(&self) -> Option<RawEvent> {
        // ORDERING: Relaxed — callers only read slots below a `head`
        // loaded with `Acquire`, which orders these loads after the
        // owner's writes.
        let meta = self.meta.load(Ordering::Relaxed);
        let kind = Kind::from_code(meta >> 56)?;
        let decode = |present: u64, str_flag: u64, key: u16, bits: u64| {
            if meta & present == 0 {
                return None;
            }
            let value = if meta & str_flag != 0 {
                FieldValue::Str(bits as u16)
            } else {
                FieldValue::U64(bits)
            };
            Some((key, value))
        };
        // ORDERING: Relaxed — see the `meta` load above.
        let ext = self.ext.load(Ordering::Relaxed);
        let k1 = ((meta >> 24) & 0xffff) as u16;
        let k2 = ((meta >> 8) & 0xffff) as u16;
        let k3 = (ext & 0xffff) as u16;
        // ORDERING: Relaxed — see the `meta` load above.
        let f1 = decode(FLAG_F1, FLAG_F1_STR, k1, self.f1.load(Ordering::Relaxed));
        // ORDERING: Relaxed — see the `meta` load above.
        let f2 = decode(FLAG_F2, FLAG_F2_STR, k2, self.f2.load(Ordering::Relaxed));
        // ORDERING: Relaxed — see the `meta` load above.
        let f3 = decode(FLAG_F3, FLAG_F3_STR, k3, self.f3.load(Ordering::Relaxed));
        Some(RawEvent {
            // ORDERING: Relaxed — see the `meta` load above.
            ts: self.ts.load(Ordering::Relaxed),
            kind,
            name: ((meta >> 40) & 0xffff) as u16,
            f1,
            f2,
            f3,
        })
    }
}

// ---------------------------------------------------------------------
// Thread buffers and the global registry
// ---------------------------------------------------------------------

pub(crate) struct ThreadBuf {
    /// Stable per-buffer id, used as the `tid` in exported traces.
    pub(crate) tid: u64,
    /// Thread name at registration time (for the export's thread labels).
    pub(crate) label: String,
    head: AtomicUsize,
    epoch: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadBuf {
    pub(crate) fn new(tid: u64, label: String, cap: usize) -> ThreadBuf {
        ThreadBuf {
            tid,
            label,
            head: AtomicUsize::new(0),
            // Start one epoch behind so the first record resets cleanly.
            epoch: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }

    /// Owner-only append. Lazily resets the buffer when the global
    /// epoch has moved on, drops (and counts) on overflow.
    pub(crate) fn push(
        &self,
        kind: Kind,
        name: u16,
        f1: Option<(u16, FieldValue)>,
        f2: Option<(u16, FieldValue)>,
        f3: Option<(u16, FieldValue)>,
    ) {
        let epoch = crate::current_epoch();
        // ORDERING: Relaxed — only this thread writes head/epoch/dropped;
        // the collector tolerates staleness and skips behind-epoch buffers.
        if self.epoch.load(Ordering::Relaxed) != epoch {
            // ORDERING: Relaxed — owner-only reset; `head` shrinking to 0
            // is published to collectors by the next Release store below.
            self.head.store(0, Ordering::Relaxed);
            // ORDERING: Relaxed — same owner-only reset.
            self.dropped.store(0, Ordering::Relaxed);
            // ORDERING: Relaxed — same owner-only reset.
            self.epoch.store(epoch, Ordering::Relaxed);
        }
        // ORDERING: Relaxed — owner is the only writer of `head`.
        let idx = self.head.load(Ordering::Relaxed);
        if idx >= self.slots.len() {
            // ORDERING: Relaxed — monotonic drop counter, owner-only.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let meta = encode_meta(kind, name, &f1, &f2, &f3);
        let ext = f3.map(|(k, _)| k as u64).unwrap_or(0);
        let f1_bits = f1.map(|(_, v)| field_bits(&v)).unwrap_or(0);
        let f2_bits = f2.map(|(_, v)| field_bits(&v)).unwrap_or(0);
        let f3_bits = f3.map(|(_, v)| field_bits(&v)).unwrap_or(0);
        self.slots[idx].write(crate::now_micros(), meta, ext, f1_bits, f2_bits, f3_bits);
        // ORDERING: Release — publishes the slot writes above to any
        // collector that loads `head` with Acquire.
        self.head.store(idx + 1, Ordering::Release);
    }

    /// Events currently published in this buffer for `epoch` (empty if
    /// the buffer has not recorded since the last epoch bump).
    pub(crate) fn snapshot(&self, epoch: usize) -> (Vec<RawEvent>, u64) {
        // ORDERING: Relaxed — a behind-epoch buffer is simply skipped;
        // worst case a racing writer's first event of the new epoch is
        // missed until the next drain.
        if self.epoch.load(Ordering::Relaxed) != epoch {
            return (Vec::new(), 0);
        }
        // ORDERING: Acquire — pairs with the owner's Release store,
        // making all slots below `head` fully visible.
        let head = self.head.load(Ordering::Acquire).min(self.slots.len());
        let events = self.slots[..head].iter().filter_map(Slot::read).collect();
        // ORDERING: Relaxed — monotonic counter, staleness is benign.
        (events, self.dropped.load(Ordering::Relaxed))
    }

    #[cfg(test)]
    pub(crate) fn dropped_count(&self) -> u64 {
        // ORDERING: Relaxed — test-side read of a monotonic counter.
        self.dropped.load(Ordering::Relaxed)
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

pub(crate) fn registered_buffers() -> Vec<Arc<ThreadBuf>> {
    match registry().lock() {
        Ok(g) => g.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    }
}

fn local_buf() -> Arc<ThreadBuf> {
    thread_local! {
        static BUF: std::cell::OnceCell<Arc<ThreadBuf>> = const { std::cell::OnceCell::new() };
    }
    BUF.with(|cell| {
        cell.get_or_init(|| {
            let label = std::thread::current().name().unwrap_or("worker").to_string();
            let mut reg = match registry().lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let buf = Arc::new(ThreadBuf::new(reg.len() as u64 + 1, label, capacity()));
            reg.push(Arc::clone(&buf));
            buf
        })
        .clone()
    })
}

/// Records one event into the calling thread's buffer, and/or the
/// thread's armed speculative capture. No-op when neither sink is
/// active (so `End` events from guards that outlive a
/// `set_enabled(false)` are silently dropped — the exporters tolerate
/// unbalanced spans).
pub(crate) fn record(
    kind: Kind,
    name: u16,
    f1: Option<(u16, FieldValue)>,
    f2: Option<(u16, FieldValue)>,
    f3: Option<(u16, FieldValue)>,
) {
    if crate::capture::armed() {
        crate::capture::record(kind, name, f1, f2, f3);
    }
    if !crate::enabled() {
        return;
    }
    local_buf().push(kind, name, f1, f2, f3);
}

// ---------------------------------------------------------------------
// Recording stats
// ---------------------------------------------------------------------

/// Totals for the current trace epoch across all registered threads.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceStats {
    /// Events currently held in buffers.
    pub recorded: u64,
    /// Events dropped because a thread buffer was full.
    pub dropped: u64,
    /// Thread buffers registered over the process lifetime.
    pub threads: usize,
    /// Per-thread buffer capacity in events.
    pub capacity: usize,
}

/// Snapshot of recording totals for the current epoch.
pub fn stats() -> TraceStats {
    let epoch = crate::current_epoch();
    let bufs = registered_buffers();
    let mut out = TraceStats { threads: bufs.len(), capacity: capacity(), ..TraceStats::default() };
    for buf in &bufs {
        let (events, dropped) = buf.snapshot(epoch);
        out.recorded += events.len() as u64;
        out.dropped += dropped;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_drops_and_counts_instead_of_wrapping() {
        let buf = ThreadBuf::new(99, "test".into(), 4);
        let epoch = crate::current_epoch();
        for i in 0..10u64 {
            buf.push(Kind::Instant, 1, Some((2, FieldValue::U64(i))), None, None);
        }
        let (events, dropped) = buf.snapshot(epoch);
        assert_eq!(events.len(), 4, "capacity bounds retained events");
        assert_eq!(dropped, 6, "overflow is counted, not silently lost");
        assert_eq!(buf.dropped_count(), 6);
        // The retained events are the *first* four, in order.
        for (i, ev) in events.iter().enumerate() {
            match ev.f1 {
                Some((2, FieldValue::U64(v))) => assert_eq!(v, i as u64),
                other => panic!("unexpected field {other:?}"),
            }
        }
    }

    #[test]
    fn epoch_bump_lazily_resets_owner_buffer() {
        let buf = ThreadBuf::new(98, "test".into(), 4);
        let e1 = crate::current_epoch();
        buf.push(Kind::Instant, 1, None, None, None);
        assert_eq!(buf.snapshot(e1).0.len(), 1);
        // Simulate `enable_fresh`: a later epoch makes old content
        // invisible, and the next push resets the buffer.
        let e2 = e1 + 1;
        assert_eq!(buf.snapshot(e2).0.len(), 0, "stale-epoch buffers are skipped");
        // Can't bump the global epoch here without racing other tests;
        // the lazy reset itself is exercised via lib::enable_fresh tests.
    }

    #[test]
    fn meta_roundtrips_all_kinds_and_field_shapes() {
        let buf = ThreadBuf::new(97, "test".into(), 8);
        let epoch = crate::current_epoch();
        buf.push(Kind::Begin, 3, None, None, None);
        buf.push(Kind::End, 3, Some((4, FieldValue::U64(7))), None, None);
        buf.push(
            Kind::Instant,
            5,
            Some((4, FieldValue::Str(2))),
            Some((6, FieldValue::U64(u64::MAX))),
            Some((9, FieldValue::U64(31))),
        );
        buf.push(Kind::Counter, 6, Some((6, FieldValue::U64(123))), None, None);
        buf.push(Kind::Instant, 7, None, None, Some((10, FieldValue::Str(3))));
        let (events, _) = buf.snapshot(epoch);
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, Kind::Begin);
        assert_eq!(events[0].name, 3);
        assert!(events[0].f1.is_none() && events[0].f2.is_none() && events[0].f3.is_none());
        assert_eq!(events[1].kind, Kind::End);
        assert!(matches!(events[1].f1, Some((4, FieldValue::U64(7)))));
        assert_eq!(events[2].kind, Kind::Instant);
        assert!(matches!(events[2].f1, Some((4, FieldValue::Str(2)))));
        assert!(matches!(events[2].f2, Some((6, FieldValue::U64(u64::MAX)))));
        assert!(matches!(events[2].f3, Some((9, FieldValue::U64(31)))));
        assert_eq!(events[3].kind, Kind::Counter);
        assert!(matches!(events[4].f3, Some((10, FieldValue::Str(3)))));
        assert!(events[4].f1.is_none() && events[4].f2.is_none());
    }
}
