//! Model-check harnesses for the pool's job-slot protocol and the team
//! barrier, driven by the vendored shim-loom checker.
//!
//! This whole file only exists under `--cfg slcs_model_check` (set via
//! RUSTFLAGS by `cargo xtask model-check`): that cfg swaps the crate's
//! sync facade from std to the instrumented shim-loom primitives, so the
//! code being explored here is the *real* `pool.rs` / `team.rs` — not a
//! re-model of it.
//!
//! Knobs (all optional):
//! * `SLCS_MODEL_PREEMPTIONS` — DFS preemption bound (default 2).
//! * `SLCS_MODEL_SCHEDULES` — iterations per random sweep / DFS cap
//!   (default 10 000, the acceptance floor).
//! * `SLCS_MODEL_SEED` — base seed for the random sweeps.
#![cfg(slcs_model_check)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rayon::model_check::{Deque, Pool, StackJob, TeamShared};
use shim_loom::model::{Builder, Strategy};
use shim_loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use shim_loom::thread;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn dfs(max_schedules: usize) -> Builder {
    Builder {
        max_preemptions: env_usize("SLCS_MODEL_PREEMPTIONS", 2),
        max_schedules,
        ..Builder::default()
    }
}

fn random_sweep() -> Builder {
    Builder {
        strategy: Strategy::Random {
            seed: env_usize("SLCS_MODEL_SEED", 0x5eed) as u64,
            iterations: env_usize("SLCS_MODEL_SCHEDULES", 10_000),
        },
        ..Builder::default()
    }
}

// ---------------------------------------------------------------------
// Job-slot lifecycle: publish → steal → complete → reuse
// ---------------------------------------------------------------------

/// One full slot lifecycle on a fresh pool, raced against a thief.
fn job_slot_lifecycle() {
    let pool = Arc::new(Pool::new());
    let job = Arc::new(StackJob::new(|| 40 + 2, 1));
    // SAFETY: the Arcs keep the job alive (and pinned) well past DONE;
    // the single ref is popped and executed at most once.
    unsafe { pool.inject(job.as_job_ref()) };
    let (pool2, job2) = (Arc::clone(&pool), Arc::clone(&job));
    let thief = thread::spawn(move || {
        if let Some(stolen) = pool2.try_pop() {
            // SAFETY: `job2` keeps the published StackJob alive.
            unsafe { stolen.execute() };
        }
        drop(job2);
    });
    // The publisher helps instead of blocking — whoever popped first
    // runs the closure; the state machine admits exactly one claimant.
    pool.help_until(|| job.is_done());
    assert_eq!(job.unwrap_value(), 42);
    thief.join().unwrap();

    // Reuse: a fresh job through the same (now idle) pool.
    let again = Arc::new(StackJob::new(|| 7, 1));
    // SAFETY: as above — `again` outlives DONE on this frame.
    unsafe { pool.inject(again.as_job_ref()) };
    pool.help_until(|| again.is_done());
    assert_eq!(again.unwrap_value(), 7);
}

#[test]
fn job_slot_lifecycle_dfs() {
    let cap = env_usize("SLCS_MODEL_SCHEDULES", 10_000);
    let report = dfs(cap).check(job_slot_lifecycle);
    println!(
        "job_slot_lifecycle_dfs: {} schedules, complete={}",
        report.schedules, report.complete
    );
    assert!(report.complete || report.schedules >= cap);
}

#[test]
fn job_slot_lifecycle_random_sweep() {
    let report = random_sweep().check(job_slot_lifecycle);
    println!("job_slot_lifecycle_random_sweep: {} schedules", report.schedules);
}

#[test]
fn job_slot_admits_exactly_one_claimant() {
    // Two refs to one job raced on two threads: the PENDING → RUNNING
    // CAS must let exactly one run the closure, and the loser must not
    // touch the result.
    let report = dfs(env_usize("SLCS_MODEL_SCHEDULES", 10_000)).check(|| {
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let job = Arc::new(StackJob::new(
            move || {
                hits2.fetch_add(1, Ordering::SeqCst);
            },
            1,
        ));
        // SAFETY: both refs point at a job the Arcs keep alive past DONE.
        let (r1, r2) = unsafe { (job.as_job_ref(), job.as_job_ref()) };
        let job2 = Arc::clone(&job);
        let racer = thread::spawn(move || {
            // SAFETY: `job2` keeps the StackJob alive.
            unsafe { r1.execute() };
            drop(job2);
        });
        // SAFETY: `job` keeps the StackJob alive.
        unsafe { r2.execute() };
        racer.join().unwrap();
        assert!(job.is_done(), "the winning claimant drove the slot to DONE");
        assert_eq!(hits.load(Ordering::SeqCst), 1, "closure ran exactly once");
        job.take_result().unwrap();
    });
    println!("job_slot_admits_exactly_one_claimant: {} schedules", report.schedules);
}

#[test]
fn nested_join_helps_while_waiting() {
    // The real `rayon::join` through the global pool, with a model
    // "worker" helping concurrently: nested fork/join must complete on
    // every explored schedule (no deadlock, no lost job), whoever ends
    // up running each arm.
    let report = Builder {
        strategy: Strategy::Random {
            seed: env_usize("SLCS_MODEL_SEED", 0x5eed) as u64 ^ 0x9042,
            iterations: env_usize("SLCS_MODEL_SCHEDULES", 10_000).min(2_000),
        },
        ..Builder::default()
    }
    .check(|| {
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let helper = thread::spawn(move || {
            rayon::model_check::Pool::global().help_until(|| done2.load(Ordering::Acquire));
        });
        let ((a, b), (c, d)) = rayon::join(|| rayon::join(|| 1, || 2), || rayon::join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
        done.store(true, Ordering::Release);
        helper.join().unwrap();
    });
    println!("nested_join_helps_while_waiting: {} schedules", report.schedules);
}

// ---------------------------------------------------------------------
// Chase–Lev deque: owner/thief protocol
// ---------------------------------------------------------------------

/// The classic last-element race: the owner pops while a thief steals a
/// one-entry deque. Exactly one side may win; the entry must never be
/// lost or delivered twice.
fn pop_vs_steal_last_element() {
    let d = Arc::new(Deque::new(4));
    d.push((41, 99)).unwrap();
    let d2 = Arc::clone(&d);
    let thief = thread::spawn(move || d2.steal());
    let popped = d.pop();
    let stolen = thief.join().unwrap();
    let deliveries = usize::from(popped.is_some()) + usize::from(stolen.is_some());
    assert_eq!(
        deliveries, 1,
        "last element delivered exactly once (pop={popped:?} steal={stolen:?})"
    );
    assert_eq!(popped.or(stolen), Some((41, 99)));
    assert!(d.is_empty());
    assert_eq!(d.pop(), None);
    assert_eq!(d.steal(), None);
    // The deque must be reusable after the race normalized bottom/top.
    d.push((7, 8)).unwrap();
    assert_eq!(d.pop(), Some((7, 8)));
}

#[test]
fn deque_pop_vs_steal_last_element_dfs() {
    let cap = env_usize("SLCS_MODEL_SCHEDULES", 10_000);
    let report = dfs(cap).check(pop_vs_steal_last_element);
    println!(
        "deque_pop_vs_steal_last_element_dfs: {} schedules, complete={}",
        report.schedules, report.complete
    );
    assert!(report.complete || report.schedules >= cap);
}

#[test]
fn deque_pop_vs_steal_last_element_random_sweep() {
    let report = random_sweep().check(pop_vs_steal_last_element);
    println!("deque_pop_vs_steal_last_element_random_sweep: {} schedules", report.schedules);
}

#[test]
fn deque_owner_races_two_thieves_exactly_once_delivery() {
    // Three entries, the owner popping against two concurrent thieves:
    // every entry is delivered to exactly one taker on every schedule,
    // and the owner's LIFO end never yields an entry a thief already took.
    let cap = env_usize("SLCS_MODEL_SCHEDULES", 10_000);
    let report = dfs(cap).check(|| {
        let d = Arc::new(Deque::new(4));
        for i in 0..3 {
            d.push((i, i + 10)).unwrap();
        }
        let taken = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0), AtomicUsize::new(0)]);
        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let (d2, taken2) = (Arc::clone(&d), Arc::clone(&taken));
                thread::spawn(move || {
                    if let Some((i, v)) = d2.steal() {
                        assert_eq!(v, i + 10, "payload words travel together");
                        taken2[i].fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        while let Some((i, v)) = d.pop() {
            assert_eq!(v, i + 10);
            taken[i].fetch_add(1, Ordering::SeqCst);
        }
        for t in thieves {
            t.join().unwrap();
        }
        // Each thief takes at most one entry, the owner drains the rest:
        // every entry lands exactly once.
        while let Some((i, _)) = d.steal() {
            taken[i].fetch_add(1, Ordering::SeqCst);
        }
        for (i, slot) in taken.iter().enumerate() {
            assert_eq!(slot.load(Ordering::SeqCst), 1, "entry {i} delivered exactly once");
        }
    });
    println!(
        "deque_owner_races_two_thieves: {} schedules, complete={}",
        report.schedules, report.complete
    );
}

#[test]
fn deque_push_overflow_is_safe_under_concurrent_steal() {
    // A full ring being stolen from while the owner keeps pushing: the
    // push either succeeds (a steal freed a slot) or hands the entry
    // back — never clobbers an undelivered slot.
    let report = random_sweep().check(|| {
        let d = Arc::new(Deque::new(4));
        for i in 0..4 {
            d.push((i, 0)).unwrap();
        }
        let d2 = Arc::clone(&d);
        let thief = thread::spawn(move || d2.steal().is_some());
        let pushed = d.push((4, 0)).is_ok();
        let stole = thief.join().unwrap();
        assert!(stole, "steal from a full ring always finds an entry");
        // Drain and count: 4 originals minus the steal, plus the extra
        // push if it landed.
        let mut drained = 0;
        while d.pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained, 3 + usize::from(pushed), "no entry lost or duplicated");
    });
    println!("deque_push_overflow_is_safe_under_concurrent_steal: {} schedules", report.schedules);
}

// ---------------------------------------------------------------------
// Chase–Lev deque: generation-tagged growth vs concurrent thieves
// ---------------------------------------------------------------------

/// The owner doubles the ring (copying the live range into a new
/// generation-tagged buffer and swapping the buffer pointer) while a
/// thief is mid-steal. A thief that read the old buffer must either
/// win its CAS on `top` — in which case the entry it read is still
/// valid, growth copies only live slots — or lose and retry on the new
/// buffer. Either way: exactly-once delivery, nothing torn.
fn owner_grow_vs_thief() {
    // max 16, initial ring 8: the 9th push forces exactly one doubling.
    let d = Arc::new(Deque::new(16));
    for i in 0..8 {
        d.push((i, i + 100)).unwrap();
    }
    assert_eq!(d.ring_len(), 8, "still on the initial ring before the race");
    let d2 = Arc::clone(&d);
    let thief = thread::spawn(move || d2.steal());
    // If the thief hasn't freed a slot yet this push grows the ring;
    // if it has, the push lands in the hole. The model explores both.
    d.push((8, 108)).unwrap();
    let stolen = thief.join().unwrap();
    let mut seen = [0usize; 9];
    if let Some((i, v)) = stolen {
        assert_eq!(v, i + 100, "stolen payload words travel together");
        seen[i] += 1;
    }
    while let Some((i, v)) = d.pop() {
        assert_eq!(v, i + 100, "popped payload words travel together");
        seen[i] += 1;
    }
    for (i, n) in seen.iter().enumerate() {
        assert_eq!(*n, 1, "entry {i} delivered exactly once across growth");
    }
    assert!(d.ring_len() == 8 || d.ring_len() == 16, "ring is pre- or post-growth, never torn");
}

#[test]
fn deque_owner_grow_vs_thief_dfs() {
    let cap = env_usize("SLCS_MODEL_SCHEDULES", 10_000);
    let report = dfs(cap).check(owner_grow_vs_thief);
    println!(
        "deque_owner_grow_vs_thief_dfs: {} schedules, complete={}",
        report.schedules, report.complete
    );
    assert!(report.complete || report.schedules >= cap);
}

#[test]
fn deque_owner_grow_vs_thief_random_sweep() {
    let report = random_sweep().check(owner_grow_vs_thief);
    println!("deque_owner_grow_vs_thief_random_sweep: {} schedules", report.schedules);
}

#[test]
fn deque_grow_preserves_a_wrapped_range_under_steal() {
    // Advance top/bottom so the live range wraps the initial ring, then
    // force growth while a thief races: the copy loop must renumber the
    // wrapped range into the new buffer without losing the entry the
    // thief is contending for.
    let report = random_sweep().check(|| {
        let d = Arc::new(Deque::new(16));
        // Wrap: 6 pushes consumed, so indices 6..14 occupy a wrapped
        // window of the 8-slot ring once we refill.
        for i in 0..6 {
            d.push((i, 0)).unwrap();
        }
        for _ in 0..6 {
            d.steal().unwrap();
        }
        for i in 0..8 {
            d.push((i, i + 200)).unwrap();
        }
        let d2 = Arc::clone(&d);
        let thief = thread::spawn(move || d2.steal());
        d.push((8, 208)).unwrap();
        let stolen = thief.join().unwrap();
        let mut seen = [0usize; 9];
        if let Some((i, v)) = stolen {
            assert_eq!(v, i + 200);
            seen[i] += 1;
        }
        while let Some((i, v)) = d.pop() {
            assert_eq!(v, i + 200);
            seen[i] += 1;
        }
        for (i, n) in seen.iter().enumerate() {
            assert_eq!(*n, 1, "wrapped entry {i} delivered exactly once");
        }
    });
    println!("deque_grow_preserves_a_wrapped_range_under_steal: {} schedules", report.schedules);
}

#[test]
fn deque_pop_vs_steal_on_grown_buffer() {
    // Take-vs-steal on a generation-1 buffer: growth must hand the
    // last-element race to the new slots with the same exactly-once
    // guarantee the initial ring had.
    let cap = env_usize("SLCS_MODEL_SCHEDULES", 10_000);
    let report = dfs(cap).check(|| {
        let d = Arc::new(Deque::new(16));
        // Grow single-threaded so only the post-growth race is explored.
        for i in 0..9 {
            d.push((i, 0)).unwrap();
        }
        assert_eq!(d.generation(), 1, "one doubling before the race");
        for _ in 0..8 {
            d.pop().unwrap();
        }
        let d2 = Arc::clone(&d);
        let thief = thread::spawn(move || d2.steal());
        let popped = d.pop();
        let stolen = thief.join().unwrap();
        assert_eq!(
            usize::from(popped.is_some()) + usize::from(stolen.is_some()),
            1,
            "last element on the grown buffer delivered exactly once"
        );
    });
    println!(
        "deque_pop_vs_steal_on_grown_buffer: {} schedules, complete={}",
        report.schedules, report.complete
    );
    assert!(report.complete || report.schedules >= cap);
}

// ---------------------------------------------------------------------
// Team barrier: sense reversal, poisoning, registration race
// ---------------------------------------------------------------------

/// `members` threads (this one included) cross two barrier generations;
/// the counter proves nobody passes a barrier before every phase-`k`
/// increment landed.
fn barrier_two_generations(members: usize) {
    let shared = Arc::new(TeamShared::new());
    let counter = Arc::new(AtomicUsize::new(0));
    let phase = move |shared: &TeamShared, counter: &AtomicUsize| {
        counter.fetch_add(1, Ordering::SeqCst);
        assert!(shared.barrier(members));
        let seen = counter.load(Ordering::SeqCst);
        assert!(
            seen >= members,
            "crossed the barrier before all {members} phase-1 arrivals (saw {seen})"
        );
        counter.fetch_add(1, Ordering::SeqCst);
        assert!(shared.barrier(members));
    };
    let handles: Vec<_> = (1..members)
        .map(|_| {
            let (s, c) = (Arc::clone(&shared), Arc::clone(&counter));
            thread::spawn(move || phase(&s, &c))
        })
        .collect();
    phase(&shared, &counter);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::SeqCst), 2 * members, "both generations fully crossed");
}

#[test]
fn barrier_sense_reversal_dfs() {
    let cap = env_usize("SLCS_MODEL_SCHEDULES", 10_000);
    let report = dfs(cap).check(|| barrier_two_generations(2));
    println!(
        "barrier_sense_reversal_dfs: {} schedules, complete={}",
        report.schedules, report.complete
    );
    assert!(report.complete || report.schedules >= cap);
}

#[test]
fn barrier_sense_reversal_random_sweep() {
    let report = random_sweep().check(|| barrier_two_generations(2));
    println!("barrier_sense_reversal_random_sweep: {} schedules", report.schedules);
}

#[test]
fn barrier_three_members_random() {
    let report = Builder {
        strategy: Strategy::Random {
            seed: env_usize("SLCS_MODEL_SEED", 0x5eed) as u64 ^ 0x333,
            iterations: env_usize("SLCS_MODEL_SCHEDULES", 10_000).min(2_000),
        },
        ..Builder::default()
    }
    .check(|| barrier_two_generations(3));
    println!("barrier_three_members_random: {} schedules", report.schedules);
}

#[test]
fn poison_releases_a_parked_barrier_waiter() {
    // A member dies before ever arriving; the peer may already be parked
    // inside barrier(2). Poison must wake it and the barrier must report
    // failure — never completion, never a hang.
    let report = dfs(env_usize("SLCS_MODEL_SCHEDULES", 10_000)).check(|| {
        let shared = Arc::new(TeamShared::new());
        let shared2 = Arc::clone(&shared);
        let killer = thread::spawn(move || {
            shared2.poison(Box::new("member down"));
        });
        let crossed = shared.barrier(2);
        assert!(!crossed, "a poisoned 2-member barrier with one arrival must not complete");
        killer.join().unwrap();
    });
    println!("poison_releases_a_parked_barrier_waiter: {} schedules", report.schedules);
}

#[test]
fn team_run_poison_propagates_under_model() {
    // Full team_run with a model worker racing registration: whichever
    // roster forms (solo leader or leader + member), a member panic must
    // surface as the leader's unwind and nothing may hang.
    let report = Builder {
        strategy: Strategy::Random {
            seed: env_usize("SLCS_MODEL_SEED", 0x5eed) as u64 ^ 0x7071,
            iterations: env_usize("SLCS_MODEL_SCHEDULES", 10_000).min(2_000),
        },
        ..Builder::default()
    }
    .check(|| {
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let helper = thread::spawn(move || {
            rayon::model_check::Pool::global().help_until(|| done2.load(Ordering::Acquire));
        });
        let member_ran = Arc::new(AtomicBool::new(false));
        let member_ran2 = Arc::clone(&member_ran);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            rayon::team_run(2, |view| {
                if view.id != 0 {
                    member_ran2.store(true, Ordering::SeqCst);
                    panic!("member blew up");
                }
                let _ = view.barrier();
            });
        }));
        assert_eq!(
            outcome.is_err(),
            member_ran.load(Ordering::SeqCst),
            "team_run unwinds exactly when a member joined and panicked"
        );
        done.store(true, Ordering::Release);
        helper.join().unwrap();
    });
    println!("team_run_poison_propagates_under_model: {} schedules", report.schedules);
}
