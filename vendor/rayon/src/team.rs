//! Worker *teams*: a group of pool workers pinned to one cooperative
//! computation, synchronizing with a lightweight barrier instead of
//! fork/join.
//!
//! [`team_run`] is the right tool for wavefront algorithms (anti-diagonal
//! combing, level-synchronous divide-and-conquer): instead of paying a
//! fork + join per dependency step, the caller and up to `max_members−1`
//! workers enter the closure **once**, keep their identity (`id`/`size`)
//! for the whole computation, and separate steps with
//! [`TeamView::barrier`] — a sense-reversing spin/yield barrier that
//! costs two atomics per member per step.
//!
//! Membership is *best effort*: member jobs are published to the pool,
//! and whichever workers pick one up before the leader closes
//! registration join the team; stragglers see the closed flag and exit
//! without participating. The team size is therefore only fixed when the
//! closure starts, which is what makes the design deadlock-free — the
//! barrier never waits for a member that was never scheduled. Callers
//! must not bake correctness into a particular size: split work by the
//! `size` the view reports (always ≥ 1; 1 means the leader runs alone).
//!
//! A panic in any member poisons the team: every member drops out at its
//! next barrier, the leader waits for all of them and re-throws the
//! first payload.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;
#[cfg(not(slcs_model_check))]
use std::time::Instant;

use crate::pool::{Pool, StackJob};
use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::{Condvar, Mutex};

/// Registration flag folded into the member count.
const CLOSED: usize = 1 << (usize::BITS - 1);

/// How long the leader waits for published member jobs to be picked up
/// before closing registration. Paid once per [`team_run`], so it is
/// negligible against any sweep worth a team, but long enough for parked
/// (or freshly spawned) workers to wake on a loaded machine.
#[cfg(not(slcs_model_check))]
const REGISTRATION_WAIT: Duration = Duration::from_millis(2);

/// The team's shared synchronization state. `pub` only so the
/// model-check harnesses (see `crate::model_check`) can drive the real
/// registration/barrier/poison protocol directly; the `team` module
/// itself is private, so this never reaches the normal public API.
#[doc(hidden)]
pub struct TeamShared {
    /// Member count (leader excluded) plus the [`CLOSED`] bit.
    registered: AtomicUsize,
    /// Members that arrived at the current barrier generation.
    arrived: AtomicUsize,
    /// Barrier generation counter (the "sense").
    generation: AtomicUsize,
    poisoned: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    /// Parking lot for members that exhausted their barrier spin budget
    /// (essential when the team oversubscribes the CPUs: spinning would
    /// steal the timeslice the straggler needs to arrive).
    sleep_lock: Mutex<()>,
    wake: Condvar,
}

impl Default for TeamShared {
    fn default() -> Self {
        TeamShared::new()
    }
}

impl TeamShared {
    pub fn new() -> Self {
        TeamShared {
            registered: AtomicUsize::new(0),
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// Joins the team, returning the member's id (≥ 1), or `None` if
    /// registration already closed.
    pub fn try_register(&self) -> Option<usize> {
        // ORDERING: AcqRel — the success edge pairs with `close`'s
        // fetch_or so a joiner and the closer agree on the roster;
        // Acquire on failure still observes the closed bit reliably.
        let (set, fetch) = (Ordering::AcqRel, Ordering::Acquire);
        self.registered
            .fetch_update(set, fetch, |v| if v & CLOSED != 0 { None } else { Some(v + 1) })
            .ok()
            .map(|prev| prev + 1)
    }

    /// Closes registration; returns the final team size (leader + members).
    pub fn close(&self) -> usize {
        // ORDERING: AcqRel — publishes the closed bit to registrants
        // and acquires every registration that won the race, so the
        // returned roster size is final.
        (self.registered.fetch_or(CLOSED, Ordering::AcqRel) & !CLOSED) + 1
    }

    /// Spins until registration closes; returns the final team size.
    pub fn wait_for_close(&self) -> usize {
        loop {
            // ORDERING: Acquire — pairs with `close`'s AcqRel so the
            // observed roster count is the one the closer fixed.
            let v = self.registered.load(Ordering::Acquire);
            if v & CLOSED != 0 {
                return (v & !CLOSED) + 1;
            }
            crate::sync::yield_now();
        }
    }

    pub fn members_registered(&self) -> usize {
        // ORDERING: Acquire — see `wait_for_close`; a monitoring read
        // that must still not run ahead of a concurrent close.
        self.registered.load(Ordering::Acquire) & !CLOSED
    }

    pub fn poison(&self, payload: Box<dyn Any + Send>) {
        slcs_trace::instant!("team.poisoned");
        let mut slot = self.panic_payload.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
        // ORDERING: Release — publishes the payload written under the
        // lock above; pairs with the Acquire loads in `barrier`.
        self.poisoned.store(true, Ordering::Release);
        drop(slot);
        self.notify_sleepers();
    }

    /// Wakes members parked in [`TeamShared::barrier`]. Taking the lock
    /// first pairs with the waiter's under-lock re-check, so a wakeup
    /// cannot slip between that check and the wait.
    fn notify_sleepers(&self) {
        drop(self.sleep_lock.lock().unwrap());
        self.wake.notify_all();
    }

    /// Sense-reversing barrier across `size` members. Returns `false`
    /// when the team is poisoned and the caller should stop working.
    pub fn barrier(&self, size: usize) -> bool {
        // ORDERING: Acquire — pairs with `poison`'s Release so a caller
        // that sees the flag also sees the panic payload.
        if self.poisoned.load(Ordering::Acquire) {
            return false;
        }
        if size <= 1 {
            return true;
        }
        // ORDERING: Acquire — the sense word; pairs with the releaser's
        // fetch_add(Release) so crossing implies every arrival landed.
        let generation = self.generation.load(Ordering::Acquire);
        // ORDERING: AcqRel — each arrival releases this member's phase-k
        // writes and acquires the previous arrivals', so the last one
        // holds the whole team's work before flipping the sense.
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == size {
            // Last to arrive: reset the counter, then release the rest.
            // ORDERING: Relaxed — only the last arriver writes here, and waiters
            // re-synchronize through the generation Release just below.
            self.arrived.store(0, Ordering::Relaxed);
            // ORDERING: Release — flips the sense word; pairs with the
            // waiters' Acquire loads so crossing carries the reset above
            // and every member's phase-k writes.
            self.generation.fetch_add(1, Ordering::Release);
            self.notify_sleepers();
        } else {
            crate::stats::note_barrier_wait();
            // Wall-clock wait time is collected only under tracing: two
            // `Instant` reads per barrier would otherwise tax every
            // diagonal of an untraced sweep. (No wall clock at all in
            // model-check builds — it would desynchronize schedules.)
            #[cfg(not(slcs_model_check))]
            let wait_start = if slcs_trace::enabled() { Some(Instant::now()) } else { None };
            // Spin briefly (the uncontended multi-core case), yield a
            // few timeslices, then park: with more members than CPUs,
            // a spinning waiter only delays the member it is waiting
            // for, so blocking is what keeps the barrier cheap.
            let mut spins = 0u32;
            // ORDERING: Acquire on both the sense word and the poison
            // flag — crossing (or aborting) must carry the releaser's
            // (or poisoner's) writes; pairs with their Release stores.
            while self.generation.load(Ordering::Acquire) == generation {
                if self.poisoned.load(Ordering::Acquire) {
                    return false;
                }
                spins += 1;
                if spins < 64 {
                    crate::sync::spin_loop();
                } else if spins < 80 {
                    crate::sync::yield_now();
                } else {
                    let guard = self.sleep_lock.lock().unwrap();
                    // ORDERING: Acquire — the under-lock re-check that
                    // pairs with the releaser's under-lock notify; same
                    // edges as the spin loads above.
                    if self.generation.load(Ordering::Acquire) != generation
                        || self.poisoned.load(Ordering::Acquire)
                    {
                        continue;
                    }
                    // Timeout is a safety net only; the releaser's
                    // under-lock notify makes wakeups reliable.
                    let _ = self.wake.wait_timeout(guard, Duration::from_millis(1)).unwrap();
                }
            }
            #[cfg(not(slcs_model_check))]
            if let Some(t0) = wait_start {
                let micros = t0.elapsed().as_micros() as u64;
                crate::stats::note_barrier_wait_micros(micros);
                slcs_trace::instant!("team.barrier_wait", "us" => micros);
            }
        }
        // ORDERING: Acquire — final poison check; pairs with `poison`'s
        // Release so a `false` return implies the payload is visible.
        !self.poisoned.load(Ordering::Acquire)
    }
}

/// A member's handle on the running team.
pub struct TeamView<'a> {
    /// This member's index: 0 for the leader, `1..size` for workers.
    pub id: usize,
    /// Total members executing the closure (≥ 1, fixed for the run).
    pub size: usize,
    shared: &'a TeamShared,
}

impl TeamView<'_> {
    /// Waits until every member reaches this barrier. Returns `false`
    /// if the team is poisoned by a panic — the caller should return
    /// from the closure immediately (its partial work is discarded by
    /// the unwind the leader re-throws).
    #[must_use]
    pub fn barrier(&self) -> bool {
        self.shared.barrier(self.size)
    }

    /// True once any member has panicked. Barrier-free sweeps (the
    /// work-stealing wavefront) poll this instead of crossing a barrier
    /// so they still stop promptly when a peer dies.
    pub fn poisoned(&self) -> bool {
        // ORDERING: Acquire — pairs with poison()'s Release store; a
        // member that observes the flag must also see the payload slot.
        self.shared.poisoned.load(Ordering::Acquire)
    }
}

/// Runs `body` cooperatively on the caller plus up to `max_members − 1`
/// pool workers. Every member gets a [`TeamView`] with a stable `id` and
/// the common `size`; the closure must partition its work by those and
/// synchronize steps with [`TeamView::barrier`].
///
/// The actual team size is between 1 and `max_members`, depending on how
/// many workers were free to join (see module docs); results must not
/// depend on it. Panics from any member are propagated to the caller
/// after every member has stopped.
pub fn team_run<F>(max_members: usize, body: F)
where
    F: Fn(TeamView<'_>) + Sync,
{
    let wanted = max_members.saturating_sub(1);
    crate::stats::note_team_run();
    if wanted == 0 {
        let _team_span = slcs_trace::span!("team.run", "size" => 1u64);
        body(TeamView { id: 0, size: 1, shared: &TeamShared::new() });
        return;
    }
    let pool = Pool::global();
    pool.ensure_workers(wanted);
    let shared = TeamShared::new();
    let budget = crate::current_num_threads();

    let shared_ref = &shared;
    let body_ref = &body;
    let member = move || {
        let Some(id) = shared_ref.try_register() else {
            return; // registration closed before a worker picked this up
        };
        let size = shared_ref.wait_for_close();
        let _member_span = slcs_trace::span!("team.member", "id" => id, "size" => size);
        let view = TeamView { id, size, shared: shared_ref };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body_ref(view))) {
            slcs_trace::instant!("team.member_panic", "id" => id);
            shared_ref.poison(payload);
        }
    };
    // SAFETY: one closure expression ⇒ one concrete type ⇒ a homogeneous Vec.
    // The Vec is fully built before any JobRef is taken, so the jobs
    // never move while published.
    let jobs: Vec<StackJob<_, ()>> = (0..wanted).map(|_| StackJob::new(member, budget)).collect();
    // SAFETY: `jobs` is pinned on this frame until `help_until` below has
    // observed every job DONE, satisfying as_job_ref's liveness contract.
    pool.inject_many(jobs.iter().map(|job| unsafe { job.as_job_ref() }));

    // Give the published jobs a moment to be picked up, then freeze the
    // roster. Anything that registers later sees CLOSED and exits.
    #[cfg(not(slcs_model_check))]
    {
        let deadline = Instant::now() + REGISTRATION_WAIT;
        while shared.members_registered() < wanted && Instant::now() < deadline {
            crate::sync::yield_now();
        }
    }
    #[cfg(slcs_model_check)]
    {
        // Wall-clock deadlines would make schedules nondeterministic
        // under the model scheduler; a bounded yield loop keeps the
        // roster race explorable without real time.
        let mut tries = 0;
        while shared.members_registered() < wanted && tries < 8 {
            crate::sync::yield_now();
            tries += 1;
        }
    }
    let size = shared.close();

    let _team_span = slcs_trace::span!("team.run", "size" => size);
    let view = TeamView { id: 0, size, shared: &shared };
    let leader_outcome = catch_unwind(AssertUnwindSafe(|| body(view)));
    if let Err(payload) = leader_outcome {
        slcs_trace::instant!("team.member_panic", "id" => 0u64);
        shared.poison(payload);
    }
    // Member jobs must finish (or early-exit) before the stack frame
    // holding `shared`, `body` and the jobs unwinds.
    pool.help_until(|| jobs.iter().all(|job| job.is_done()));
    for job in &jobs {
        let _ = job.take_result(); // panics were routed through poison()
    }
    let payload = shared.panic_payload.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn team_of_one_runs_leader_only() {
        let mut hits = 0;
        team_run(1, |view| {
            assert_eq!(view.id, 0);
            assert_eq!(view.size, 1);
            assert!(view.barrier());
            // Leader-only closures still observe a working barrier.
        });
        hits += 1;
        assert_eq!(hits, 1);
    }

    #[test]
    fn members_partition_work_with_barriers() {
        const STEPS: usize = 50;
        let counters: Vec<AtomicU64> = (0..STEPS).map(|_| AtomicU64::new(0)).collect();
        team_run(4, |view| {
            for c in &counters {
                c.fetch_add(view.id as u64 + 1, Ordering::Relaxed);
                if !view.barrier() {
                    return;
                }
            }
        });
        // Whatever size formed, every step saw the same full roster:
        // 1 + 2 + … + size.
        let expected = counters[0].load(Ordering::Relaxed);
        assert!(expected >= 1);
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), expected);
        }
    }

    #[test]
    fn ids_are_distinct_and_dense() {
        let seen = Mutex::new(Vec::new());
        team_run(4, |view| {
            seen.lock().unwrap().push((view.id, view.size));
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        let size = seen[0].1;
        assert_eq!(seen.len(), size);
        for (i, &(id, s)) in seen.iter().enumerate() {
            assert_eq!(id, i);
            assert_eq!(s, size);
        }
    }

    #[test]
    fn member_panic_never_leaves_peers_parked() {
        // A member dies without ever reaching the barrier. The others
        // arrive, exhaust their spin budget, and park on the condvar;
        // poison() must wake every sleeper or the team (and this test)
        // would hang forever. The sleep is what pushes the waiting
        // peers past spinning and into the parked path.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            team_run(4, |view| {
                if view.id == view.size - 1 {
                    std::thread::sleep(Duration::from_millis(20));
                    panic!("member blew up");
                }
                while view.barrier() {}
            });
        }));
        assert!(outcome.is_err(), "the member's panic must propagate out of team_run");
        // Every peer exited through the poisoned barrier and the pool is
        // still serviceable.
        let ran = AtomicBool::new(false);
        team_run(2, |_| ran.store(true, Ordering::Relaxed));
        assert!(ran.load(Ordering::Relaxed));
    }

    #[test]
    fn member_panic_emits_trace_events() {
        // Pins the observability contract of the poison path: a traced
        // run that loses a member must show `team.member_panic` (with
        // the member's id) followed by `team.poisoned` in the stream.
        slcs_trace::enable_fresh();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            team_run(2, |view| {
                if view.id == view.size - 1 {
                    panic!("traced member blew up");
                }
                while view.barrier() {}
            });
        }));
        slcs_trace::set_enabled(false);
        assert!(outcome.is_err());
        let timeline = slcs_trace::drain();
        let panic_ev = timeline
            .events
            .iter()
            .find(|e| e.name == "team.member_panic")
            .expect("member_panic event recorded");
        assert!(
            panic_ev
                .fields
                .iter()
                .any(|(k, v)| *k == "id" && matches!(v, slcs_trace::FieldOut::U64(_))),
            "member_panic carries the member id: {panic_ev:?}"
        );
        assert!(
            timeline.events.iter().any(|e| e.name == "team.poisoned"),
            "poison() emits team.poisoned"
        );
        let json = timeline.to_chrome_json();
        assert!(json.contains("team.member_panic") && json.contains("team.poisoned"));
    }

    #[test]
    fn panics_poison_and_propagate() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            team_run(4, |view| {
                if view.id == 0 {
                    panic!("leader blew up");
                }
                while view.barrier() {}
            });
        }));
        assert!(outcome.is_err());
        // The pool is still serviceable afterwards.
        let ran = AtomicBool::new(false);
        team_run(2, |_| ran.store(true, Ordering::Relaxed));
        assert!(ran.load(Ordering::Relaxed));
    }
}
