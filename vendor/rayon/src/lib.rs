//! Vendored, dependency-free subset of the `rayon` API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the rayon surface it actually uses, implemented on a
//! **persistent worker pool** (see [`pool`]): one parked OS thread per
//! budget slot, spawned lazily on first use and reused forever — a
//! `join` or a parallel-iterator drive costs an enqueue and a wakeup,
//! not a thread spawn.
//!
//! * [`join`] — fork/join with a global live-fork budget: the second arm
//!   is published to the pool while the budget (the configured thread
//!   count) allows, and degrades to sequential execution beyond it; the
//!   publishing thread *helps* run queued work while it waits, so nested
//!   divide-and-conquer can neither deadlock nor idle a core;
//! * indexed parallel iterators (`par_iter`, `par_iter_mut`,
//!   `into_par_iter` on ranges) with `map` / `zip` / `enumerate` /
//!   `step_by` / `flat_map_iter` / `with_min_len` / `for_each` /
//!   `collect` — chunked across pool workers, preserving order;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] /
//!   [`current_num_threads`] — a *budget*, not a worker set: `install`
//!   scopes the budget to a closure, `build_global` sets the process
//!   default; the shared pool grows to the largest budget ever used;
//! * [`team_run`] — an extension for wavefront algorithms: pins a group
//!   of workers to one computation with a per-step barrier instead of a
//!   fork/join per step (see [`team`]).
//!
//! Semantics match rayon for every call shape used in this workspace.
//! Iterators chunk contiguously, but jobs published from pool threads go
//! onto per-worker Chase–Lev deques ([`deque`]) and idle workers steal,
//! so nested fork/join stays local and short tasks coalesce instead of
//! round-tripping through the condvar injector.

#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;

use crate::sync::atomic::{AtomicUsize, Ordering};

pub mod deque;
pub mod iter;
pub(crate) mod pool;
pub mod stats;
pub(crate) mod sync;
pub mod team;

pub use deque::Deque;
pub use stats::{pool_stats, PoolStats};
pub use team::{team_run, TeamView};

/// Internals exposed to the model-check harnesses (`tests/model.rs`)
/// only: a model-check build needs to drive the real job-slot, barrier
/// and registration protocols from outside the crate. Absent from
/// normal builds.
#[cfg(slcs_model_check)]
#[doc(hidden)]
pub mod model_check {
    pub use crate::deque::Deque;
    pub use crate::pool::{JobRef, Pool, StackJob};
    pub use crate::team::TeamShared;
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

// ---------------------------------------------------------------------
// Thread budget ("pool size")
// ---------------------------------------------------------------------

/// Process-wide default budget; 0 = unset (use available parallelism).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Outstanding forked jobs across all joins, bounding fork depth the
/// way a fixed worker set would.
static LIVE_EXTRA: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The parallelism budget visible to the current thread: an `install`
/// scope if inside one, else the `build_global` setting, else
/// `std::thread::available_parallelism()`.
pub fn current_num_threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local > 0 {
        return local;
    }
    // ORDERING: Relaxed — a sizing hint; a stale read only affects heuristics.
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of persistent workers the shared pool has spawned so far
/// (grows lazily toward the largest budget ever exercised). Extension
/// used by the bench harness for observability.
pub fn pool_spawned_workers() -> usize {
    pool::Pool::global().spawned_workers()
}

/// Runs `f` with the current thread's budget set to `n` (used on spawned
/// threads so nested operations see the parent's budget).
pub(crate) fn with_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = LOCAL_THREADS.with(|c| c.replace(n));
    let out = f();
    LOCAL_THREADS.with(|c| c.set(prev));
    out
}

/// Tries to reserve one extra in-flight fork within the budget.
pub(crate) fn try_reserve_thread() -> bool {
    let cap = current_num_threads().saturating_sub(1);
    // ORDERING: Relaxed (load and CAS below) — LIVE_EXTRA is a budget counter;
    // no memory is published through it, and over/undershoot is benign.
    let mut live = LIVE_EXTRA.load(Ordering::Relaxed);
    loop {
        if live >= cap {
            return false;
        }
        // ORDERING: Relaxed — see the budget-counter note above.
        match LIVE_EXTRA.compare_exchange_weak(live, live + 1, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return true,
            Err(now) => live = now,
        }
    }
}

pub(crate) fn release_thread() {
    // ORDERING: Relaxed — budget counter, as in try_reserve_thread.
    LIVE_EXTRA.fetch_sub(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// join
// ---------------------------------------------------------------------

/// Runs both closures, potentially in parallel, returning both results.
///
/// The second arm is published to the persistent pool; the caller runs
/// the first arm inline and then *helps* execute queued pool work until
/// the second arm completes (it may well run it itself if no worker got
/// there first). Panics from either arm propagate to the caller, first
/// arm's panic winning, and only after both arms have stopped touching
/// the caller's stack.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if !try_reserve_thread() {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let budget = current_num_threads();
    let pool = pool::Pool::global();
    pool.ensure_workers(budget.saturating_sub(1));
    let job_b = pool::StackJob::new(b, budget);
    // SAFETY: this frame waits for `job_b` to reach DONE before returning
    // or unwinding, so the published pointer outlives its use.
    unsafe { pool.publish(job_b.as_job_ref()) };
    let ra = std::panic::catch_unwind(std::panic::AssertUnwindSafe(a));
    pool.help_until(|| job_b.is_done());
    release_thread();
    match ra {
        Ok(ra) => (ra, job_b.unwrap_value()),
        Err(payload) => {
            let _ = job_b.take_result();
            std::panic::resume_unwind(payload)
        }
    }
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

/// Builder for a parallelism budget (rayon-compatible shape).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type kept for signature compatibility; construction here cannot
/// actually fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    fn resolved(&self) -> usize {
        match self.num_threads {
            Some(0) | None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            Some(n) => n,
        }
    }

    /// Builds a scoped budget usable via [`ThreadPool::install`].
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { threads: self.resolved() })
    }

    /// Sets the process-wide default budget.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        // ORDERING: Relaxed — a sizing hint read with Relaxed loads.
        GLOBAL_THREADS.store(self.resolved(), Ordering::Relaxed);
        Ok(())
    }
}

/// A parallelism budget; `install` scopes it to a closure.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_budget(self.threads, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn nested_joins_do_not_deadlock() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 100 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 10_000), (0..10_000).sum());
    }

    #[test]
    fn install_scopes_the_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = pool.install(|| {
            let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            inner.install(current_num_threads)
        });
        assert_eq!(nested, 2);
    }

    #[test]
    fn join_inside_install_sees_budget_on_both_arms() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let (a, b) = pool.install(|| join(current_num_threads, current_num_threads));
        assert_eq!((a, b), (4, 4));
    }
}
