//! Indexed parallel iterators over slices and ranges.
//!
//! Everything here is *splittable*: an iterator knows its length, can be
//! split at an index, and can be lowered to a sequential iterator. The
//! terminal operations ([`ParallelIterator::for_each`],
//! [`ParallelIterator::collect`]) cut the iterator into at most
//! `current_num_threads()` contiguous chunks (respecting
//! `with_min_len`), publish all but the first to the persistent worker
//! pool, run the first on the calling thread (which then helps drain the
//! pool queue until its chunks are done), and reassemble results in
//! order — so output order and side-effect targets are identical to
//! rayon's, with no thread spawned per drive.

use crate::current_num_threads;
use crate::pool::{Pool, StackJob};

/// A splittable, indexed parallel iterator.
pub trait ParallelIterator: Sized + Send {
    type Item: Send;
    type Seq: Iterator<Item = Self::Item>;

    /// Number of items (for `flat_map_iter`, outer items).
    fn pi_len(&self) -> usize;

    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Lowers to a sequential iterator over the same items in order.
    fn into_seq(self) -> Self::Seq;

    /// Minimum items per chunk (raised by [`Self::with_min_len`]).
    fn min_piece(&self) -> usize {
        1
    }

    // ---- adapters ----------------------------------------------------

    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { inner: self, min: min.max(1) }
    }

    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send,
        R: Send,
    {
        Map { inner: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self, base: 0 }
    }

    fn step_by(self, step: usize) -> StepBy<Self> {
        assert!(step > 0, "step_by requires a positive step");
        StepBy { inner: self, step }
    }

    fn flat_map_iter<F, I>(self, f: F) -> FlatMapIter<Self, F>
    where
        F: Fn(Self::Item) -> I + Clone + Send,
        I: IntoIterator,
        I::Item: Send,
    {
        FlatMapIter { inner: self, f }
    }

    // ---- terminals ---------------------------------------------------

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Clone + Send,
    {
        drive(self, move |part| part.into_seq().for_each(&f));
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        drive_collect(self, |part| part.into_seq().sum::<S>()).into_iter().sum()
    }

    fn count(self) -> usize {
        drive_collect(self, |part| part.into_seq().count()).into_iter().sum()
    }
}

/// Collection from a parallel iterator (rayon's `FromParallelIterator`).
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let parts = drive_collect(iter, |part| part.into_seq().collect::<Vec<T>>());
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------

fn pieces_for<I: ParallelIterator>(it: &I) -> usize {
    let threads = current_num_threads();
    if threads <= 1 {
        return 1;
    }
    let len = it.pi_len();
    let min = it.min_piece().max(1);
    threads.min(len / min).max(1)
}

/// Splits `it` into `pieces` contiguous parts, in order.
fn split_into<I: ParallelIterator>(it: I, pieces: usize) -> Vec<I> {
    let mut parts = Vec::with_capacity(pieces);
    let mut rest = it;
    for k in (1..pieces).rev() {
        // k + 1 pieces remain (this one plus k more): take an even share
        let len = rest.pi_len();
        let take = len.div_ceil(k + 1).min(len);
        let (head, tail) = rest.split_at(take);
        parts.push(head);
        rest = tail;
    }
    parts.push(rest);
    parts
}

/// Runs `f` on every chunk, returning chunk results in order.
///
/// The first chunk runs on the calling thread; the rest are published to
/// the persistent pool. The caller helps drain the pool queue until all
/// of its chunks are done, then reassembles results (propagating the
/// first panic only after every chunk has stopped running).
fn drive_collect<I, R, F>(it: I, f: F) -> Vec<R>
where
    I: ParallelIterator,
    F: Fn(I) -> R + Clone + Send,
    R: Send,
{
    let pieces = pieces_for(&it);
    if pieces <= 1 {
        return vec![f(it)];
    }
    let budget = current_num_threads();
    let pool = Pool::global();
    pool.ensure_workers(budget.saturating_sub(1));
    let mut parts = split_into(it, pieces).into_iter();
    // PANIC: split_into always returns at least one piece.
    let first = parts.next().expect("at least one piece");
    // Built fully before any JobRef is published, so the jobs never move.
    let jobs: Vec<StackJob<_, R>> = parts
        .map(|part| {
            let f = f.clone();
            StackJob::new(move || f(part), budget)
        })
        .collect();
    // SAFETY: this frame waits for every job to reach DONE before
    // returning or unwinding, so the published pointers outlive use.
    pool.inject_many(jobs.iter().map(|job| unsafe { job.as_job_ref() }));
    let head = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(first)));
    pool.help_until(|| jobs.iter().all(|job| job.is_done()));
    let mut out = Vec::with_capacity(pieces);
    match head {
        Ok(r) => out.push(r),
        Err(payload) => {
            for job in &jobs {
                let _ = job.take_result();
            }
            std::panic::resume_unwind(payload);
        }
    }
    for job in &jobs {
        out.push(job.unwrap_value());
    }
    out
}

fn drive<I, F>(it: I, f: F)
where
    I: ParallelIterator,
    F: Fn(I) + Clone + Send,
{
    let _ = drive_collect(it, f);
}

// ---------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------

/// `&[T]` → items `&T`.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (ParIter { slice: l }, ParIter { slice: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// `&mut [T]` → items `&mut T`.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send + 'a> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (ParIterMut { slice: l }, ParIterMut { slice: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

/// `Range<usize>` → items `usize`.
pub struct RangePar {
    range: std::ops::Range<usize>,
}

impl ParallelIterator for RangePar {
    type Item = usize;
    type Seq = std::ops::Range<usize>;

    fn pi_len(&self) -> usize {
        self.range.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.range.start + index;
        (RangePar { range: self.range.start..mid }, RangePar { range: mid..self.range.end })
    }

    fn into_seq(self) -> Self::Seq {
        self.range
    }
}

// ---------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------

pub struct MinLen<I> {
    inner: I,
    min: usize,
}

impl<I: ParallelIterator> ParallelIterator for MinLen<I> {
    type Item = I::Item;
    type Seq = I::Seq;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(index);
        (MinLen { inner: l, min: self.min }, MinLen { inner: r, min: self.min })
    }

    fn into_seq(self) -> Self::Seq {
        self.inner.into_seq()
    }

    fn min_piece(&self) -> usize {
        self.inner.min_piece().max(self.min)
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }

    fn min_piece(&self) -> usize {
        self.a.min_piece().max(self.b.min_piece())
    }
}

pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Clone + Send,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<I::Seq, F>;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(index);
        (Map { inner: l, f: self.f.clone() }, Map { inner: r, f: self.f })
    }

    fn into_seq(self) -> Self::Seq {
        self.inner.into_seq().map(self.f)
    }

    fn min_piece(&self) -> usize {
        self.inner.min_piece()
    }
}

pub struct Enumerate<I> {
    inner: I,
    base: usize,
}

pub struct EnumerateSeq<S> {
    inner: S,
    next: usize,
}

impl<S: Iterator> Iterator for EnumerateSeq<S> {
    type Item = (usize, S::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type Seq = EnumerateSeq<I::Seq>;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(index);
        (Enumerate { inner: l, base: self.base }, Enumerate { inner: r, base: self.base + index })
    }

    fn into_seq(self) -> Self::Seq {
        EnumerateSeq { inner: self.inner.into_seq(), next: self.base }
    }

    fn min_piece(&self) -> usize {
        self.inner.min_piece()
    }
}

pub struct StepBy<I> {
    inner: I,
    step: usize,
}

impl<I: ParallelIterator> ParallelIterator for StepBy<I> {
    type Item = I::Item;
    type Seq = std::iter::StepBy<I::Seq>;

    fn pi_len(&self) -> usize {
        self.inner.pi_len().div_ceil(self.step)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let cut = (index * self.step).min(self.inner.pi_len());
        let (l, r) = self.inner.split_at(cut);
        (StepBy { inner: l, step: self.step }, StepBy { inner: r, step: self.step })
    }

    fn into_seq(self) -> Self::Seq {
        self.inner.into_seq().step_by(self.step)
    }
}

pub struct FlatMapIter<I, F> {
    inner: I,
    f: F,
}

impl<I, F, II> ParallelIterator for FlatMapIter<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> II + Clone + Send,
    II: IntoIterator,
    II::Item: Send,
{
    type Item = II::Item;
    type Seq = std::iter::FlatMap<I::Seq, II, F>;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(index);
        (FlatMapIter { inner: l, f: self.f.clone() }, FlatMapIter { inner: r, f: self.f })
    }

    fn into_seq(self) -> Self::Seq {
        self.inner.into_seq().flat_map(self.f)
    }

    fn min_piece(&self) -> usize {
        self.inner.min_piece()
    }
}

// ---------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------

/// `collection.into_par_iter()`.
pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangePar;
    type Item = usize;

    fn into_par_iter(self) -> RangePar {
        RangePar { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecPar<T>;
    type Item = T;

    fn into_par_iter(self) -> VecPar<T> {
        VecPar { items: self }
    }
}

/// Owned `Vec<T>` source.
pub struct VecPar<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecPar<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn pi_len(&self) -> usize {
        self.items.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        (self, VecPar { items: tail })
    }

    fn into_seq(self) -> Self::Seq {
        self.items.into_iter()
    }
}

/// `collection.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'a;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// `collection.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'a> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'a;
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = ParIterMut<'a, T>;
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = ParIterMut<'a, T>;
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPoolBuilder;

    fn with_threads<R: Send>(n: usize, f: impl FnOnce() -> R + Send) -> R {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(f)
    }

    #[test]
    fn map_collect_preserves_order() {
        for threads in [1, 2, 4] {
            let out: Vec<usize> =
                with_threads(threads, || (0..1000).into_par_iter().map(|i| i * 2).collect());
            assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zipped_for_each_mutates_every_slot() {
        for threads in [1, 3] {
            let mut a = vec![0u32; 500];
            let b: Vec<u32> = (0..500).collect();
            with_threads(threads, || {
                a.par_iter_mut().with_min_len(16).zip(b.par_iter()).for_each(|(x, &y)| *x = y + 1);
            });
            assert!(a.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
        }
    }

    #[test]
    fn enumerate_indices_are_global() {
        for threads in [1, 4] {
            let mut a = vec![0usize; 300];
            with_threads(threads, || {
                a.par_iter_mut().enumerate().for_each(|(i, slot)| *slot = i);
            });
            assert!(a.iter().enumerate().all(|(i, &v)| v == i));
        }
    }

    #[test]
    fn step_by_flat_map_matches_sequential() {
        let total = 1000usize;
        let chunk = 64usize;
        for threads in [1, 5] {
            let out: Vec<usize> = with_threads(threads, || {
                (0..total)
                    .into_par_iter()
                    .step_by(chunk)
                    .flat_map_iter(|start| start..(start + chunk).min(total))
                    .collect()
            });
            assert_eq!(out, (0..total).collect::<Vec<_>>());
        }
    }

    #[test]
    fn with_min_len_caps_chunking_without_changing_results() {
        let out: Vec<usize> =
            with_threads(8, || (0..10).into_par_iter().with_min_len(64).map(|i| i).collect());
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sum_and_count_agree_with_sequential() {
        let v: Vec<u64> = (0..10_000).collect();
        let (s, c) =
            with_threads(4, || (v.par_iter().map(|&x| x).sum::<u64>(), v.par_iter().count()));
        assert_eq!(s, (0..10_000).sum::<u64>());
        assert_eq!(c, 10_000);
    }
}
