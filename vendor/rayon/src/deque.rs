//! A Chase–Lev-style work-stealing deque over the crate's sync facade.
//!
//! One thread — the **owner** — pushes and pops at the *bottom* (LIFO,
//! cache-hot, uncontended in the common case); any other thread may
//! *steal* from the *top* (FIFO, one CAS per successful steal). This is
//! the classic split that lets nested fork/join work stay local while
//! idle workers drain the oldest entries, and it is what lets wavefront
//! leaders hand out diagonal chunks without a condvar or a barrier.
//!
//! # Design notes
//!
//! * **Entries are two plain machine words** (`(usize, usize)`), not
//!   pointers: the deque itself performs no unsafe memory access at all.
//!   Layers that store pointers (the pool's `JobRef`) do their own
//!   encode/decode and carry the at-most-once-delivery argument there.
//! * **Fixed-capacity power-of-two ring.** `push` reports overflow by
//!   returning the entry instead of growing; callers fall back to their
//!   slower channel (the pool's condvar injector). This keeps the hot
//!   path allocation-free and the model-checked state space small.
//! * **`top` and `bottom` are monotonic counters**, never wrapped into
//!   the ring except at the moment of slot indexing (`index & mask`).
//!   `top` only ever increases (owner `pop` on the last element and
//!   thief `steal` both advance it by CAS), which is what rules out ABA.
//! * **Every atomic access is `SeqCst`.** The crate's facade (and the
//!   shim-loom model runtime behind it) provides no fences, and deque
//!   operations are per-chunk — not per-cell — so the cost of the
//!   strongest ordering is noise. The protocol arguments below are
//!   therefore stated against a single total order of operations.
//!
//! # Why the racy slot read in `steal` is sound
//!
//! A thief reads the slot words *before* its CAS on `top`. The owner
//! may concurrently overwrite that slot — but only by pushing at
//! `bottom = t + capacity`, which requires `top > t` to have passed the
//! capacity check, and `top > t` makes the thief's CAS fail. A stale or
//! mixed read therefore never escapes `steal`: the CAS on the monotonic
//! `top` validates the preceding slot reads. Because the slot words are
//! themselves atomics, the race is defined behavior (no torn reads at
//! the language level — just possibly *stale* values, discarded on CAS
//! failure).

use crate::sync::atomic::{AtomicUsize, Ordering};

/// One ring slot: the two words of an entry, individually atomic so
/// concurrent owner-write/thief-read races are defined behavior.
struct Slot {
    lo: AtomicUsize,
    hi: AtomicUsize,
}

/// A fixed-capacity work-stealing deque of two-word entries.
///
/// The owner discipline (`push`/`pop` from one thread at a time) is a
/// *correctness* contract, not a memory-safety one: violating it can
/// lose or duplicate entries but cannot corrupt the deque, which is why
/// the methods are safe `fn`s. Layers whose entries are pointers must
/// uphold the discipline to keep their own decode sound (see
/// `pool::Pool`).
pub struct Deque {
    /// Next index a thief will take. Monotonic.
    top: AtomicUsize,
    /// Next index the owner will push at. Owner-written only.
    bottom: AtomicUsize,
    slots: Box<[Slot]>,
    mask: usize,
}

impl Deque {
    /// A deque holding up to `capacity` entries (rounded up to a power
    /// of two, minimum 4).
    pub fn new(capacity: usize) -> Deque {
        let cap = capacity.max(4).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot { lo: AtomicUsize::new(0), hi: AtomicUsize::new(0) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Deque { top: AtomicUsize::new(0), bottom: AtomicUsize::new(0), slots, mask: cap - 1 }
    }

    /// Number of entries the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// True when a racy size estimate says the deque is empty. Cheap
    /// pre-filter for steal loops; a `false` answer may be stale in
    /// either direction.
    pub fn is_empty(&self) -> bool {
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        b <= t
    }

    /// Owner-only: appends an entry at the bottom. Returns the entry
    /// back when the ring is full so the caller can overflow to its
    /// fallback channel.
    pub fn push(&self, entry: (usize, usize)) -> Result<(), (usize, usize)> {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        // `top` only grows, so a stale `t` can only make the deque look
        // *fuller* than it is — overflow is conservative, never unsound.
        if b - t >= self.slots.len() {
            return Err(entry);
        }
        let slot = &self.slots[b & self.mask];
        slot.lo.store(entry.0, Ordering::SeqCst);
        slot.hi.store(entry.1, Ordering::SeqCst);
        // Publishing the new bottom is what makes the slot visible to
        // thieves; the SeqCst store orders the slot writes before it.
        self.bottom.store(b + 1, Ordering::SeqCst);
        crate::stats::note_deque_push();
        Ok(())
    }

    /// Owner-only: takes the most recently pushed entry (LIFO). Races
    /// with thieves only on the last element, resolved by a CAS on the
    /// monotonic `top`.
    pub fn pop(&self) -> Option<(usize, usize)> {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if b <= t {
            return None; // empty (only the owner advances `bottom`)
        }
        // Reserve the bottom slot, then re-read `top`: any thief that
        // CASes `top` after seeing the old `bottom` is serialized
        // against this store by the total SeqCst order.
        let nb = b - 1;
        self.bottom.store(nb, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t < nb {
            // More than one entry remained: the reserved slot is ours.
            let slot = &self.slots[nb & self.mask];
            let entry = (slot.lo.load(Ordering::SeqCst), slot.hi.load(Ordering::SeqCst));
            crate::stats::note_local_hit();
            return Some(entry);
        }
        if t == nb {
            // Exactly one entry: decide the owner-vs-thief race by
            // advancing `top` ourselves. Either way the deque ends
            // empty, so restore `bottom` to the new `top`.
            let slot = &self.slots[nb & self.mask];
            let entry = (slot.lo.load(Ordering::SeqCst), slot.hi.load(Ordering::SeqCst));
            let won =
                self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst).is_ok();
            self.bottom.store(t + 1, Ordering::SeqCst);
            if won {
                crate::stats::note_local_hit();
                return Some(entry);
            }
            return None; // a thief got it first
        }
        // t > nb: thieves emptied the deque while we reserved. Normalize.
        self.bottom.store(t, Ordering::SeqCst);
        None
    }

    /// Thief: takes the oldest entry (FIFO). Returns `None` when the
    /// deque looks empty *or* when another thread won the race — callers
    /// treat both as "try elsewhere" and come back around.
    pub fn steal(&self) -> Option<(usize, usize)> {
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        if b <= t {
            return None;
        }
        // Read the slot *before* claiming it; the CAS below validates
        // the read (see the module docs — the slot can only have been
        // overwritten if `top` already moved past `t`, which fails the
        // CAS and discards the value).
        let slot = &self.slots[t & self.mask];
        let entry = (slot.lo.load(Ordering::SeqCst), slot.hi.load(Ordering::SeqCst));
        if self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
            crate::stats::note_steal();
            return Some(entry);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Deque::new(0).capacity(), 4);
        assert_eq!(Deque::new(5).capacity(), 8);
        assert_eq!(Deque::new(8).capacity(), 8);
    }

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = Deque::new(8);
        for i in 0..4 {
            d.push((i, i * 10)).unwrap();
        }
        assert_eq!(d.steal(), Some((0, 0)), "thief takes the oldest");
        assert_eq!(d.pop(), Some((3, 30)), "owner takes the newest");
        assert_eq!(d.steal(), Some((1, 10)));
        assert_eq!(d.pop(), Some((2, 20)));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn push_overflows_to_the_caller() {
        let d = Deque::new(4);
        for i in 0..4 {
            assert!(d.push((i, 0)).is_ok());
        }
        assert_eq!(d.push((9, 9)), Err((9, 9)));
        // Draining one entry frees a slot again.
        assert!(d.steal().is_some());
        assert!(d.push((9, 9)).is_ok());
    }

    #[test]
    fn ring_indices_wrap_without_losing_entries() {
        let d = Deque::new(4);
        // Push/drain many times so bottom/top run far past the capacity.
        for round in 0..100usize {
            d.push((round, round + 1)).unwrap();
            if round % 2 == 0 {
                assert_eq!(d.pop(), Some((round, round + 1)));
            } else {
                assert_eq!(d.steal(), Some((round, round + 1)));
            }
        }
        assert!(d.is_empty());
    }

    #[test]
    #[cfg(not(slcs_model_check))]
    fn concurrent_thieves_take_each_entry_once() {
        use std::sync::atomic::{AtomicUsize as StdUsize, Ordering as StdOrd};
        let d = Deque::new(1024);
        const N: usize = 1000;
        for i in 0..N {
            d.push((i, 0)).unwrap();
        }
        let taken: Vec<StdUsize> = (0..N).map(|_| StdUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some((i, _)) = d.steal() {
                        taken[i].fetch_add(1, StdOrd::Relaxed);
                    }
                });
            }
            // The owner pops concurrently from the other end.
            while let Some((i, _)) = d.pop() {
                taken[i].fetch_add(1, StdOrd::Relaxed);
            }
        });
        for (i, t) in taken.iter().enumerate() {
            assert_eq!(t.load(StdOrd::Relaxed), 1, "entry {i} delivered exactly once");
        }
    }
}
