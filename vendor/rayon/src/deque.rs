//! A Chase–Lev-style work-stealing deque over the crate's sync facade.
//!
//! One thread — the **owner** — pushes and pops at the *bottom* (LIFO,
//! cache-hot, uncontended in the common case); any other thread may
//! *steal* from the *top* (FIFO, one CAS per successful steal). This is
//! the classic split that lets nested fork/join work stay local while
//! idle workers drain the oldest entries, and it is what lets wavefront
//! leaders hand out diagonal chunks without a condvar or a barrier.
//!
//! # Design notes
//!
//! * **Entries are two plain machine words** (`(usize, usize)`), stored
//!   in individually-atomic slots so concurrent owner-write/thief-read
//!   races are defined behavior. Layers that store pointers (the pool's
//!   `JobRef`) do their own encode/decode and carry the
//!   at-most-once-delivery argument there.
//! * **Growable power-of-two ring with a hard cap.** The ring starts
//!   small and the owner doubles it on demand up to `max_capacity`
//!   ([`Deque::new`]'s argument); only at the cap does `push` report
//!   overflow by returning the entry, and callers fall back to their
//!   slower channel (the pool's condvar injector). Growth is owner-only:
//!   a new generation-tagged [`Buffer`] is allocated, live entries are
//!   copied, and the buffer pointer is republished; the old buffer is
//!   *retired* — kept alive, never written again — so a thief holding a
//!   stale pointer still reads valid (at worst stale, CAS-discarded)
//!   data. Retired buffers are freed only in `Drop`.
//! * **`top` and `bottom` are monotonic counters**, never wrapped into
//!   the ring except at the moment of slot indexing (`index & mask`).
//!   `top` only ever increases (owner `pop` on the last element and
//!   thief `steal` both advance it by CAS), which is what rules out ABA.
//! * **Every atomic access is `SeqCst`.** The crate's facade (and the
//!   shim-loom model runtime behind it) provides no fences, and deque
//!   operations are per-chunk — not per-cell — so the cost of the
//!   strongest ordering is noise. The protocol arguments below are
//!   therefore stated against a single total order of operations.
//!
//! # Why the racy slot read in `steal` is sound
//!
//! A thief reads the slot words *before* its CAS on `top`. The owner
//! may concurrently overwrite that slot — but only by pushing at
//! `bottom = t + capacity`, which requires `top > t` to have passed the
//! capacity check, and `top > t` makes the thief's CAS fail. Likewise a
//! thief that loaded the buffer pointer just before a grow reads from
//! the retired buffer: its contents below the copied range are only
//! reachable when `top` already advanced, which also fails the CAS. A
//! stale or mixed read therefore never escapes `steal`: the CAS on the
//! monotonic `top` validates the preceding slot reads. Because the slot
//! words are atomics, the race is defined behavior (no torn reads at the
//! language level — just possibly *stale* values, discarded on CAS
//! failure).

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::cell::UnsafeCell;

/// One ring slot: the two words of an entry, individually atomic so
/// concurrent owner-write/thief-read races are defined behavior.
struct Slot {
    lo: AtomicUsize,
    hi: AtomicUsize,
}

/// One generation of the ring. Heap-allocated and published through
/// `Deque::buffer` as a raw pointer; immutable in shape (the slots are
/// interior-atomic) from publication until the owning `Deque` drops.
struct Buffer {
    /// Grow count at allocation time: 0 for the initial ring, +1 per
    /// grow. Diagnostic only — steal validation rests on `top`'s CAS,
    /// not on comparing generations.
    generation: usize,
    mask: usize,
    slots: Box<[Slot]>,
}

impl Buffer {
    /// Heap-allocates a zeroed ring of `cap` slots and leaks it to a raw
    /// pointer; ownership transfers to the publishing `Deque`, which
    /// frees every generation in its `Drop`.
    fn alloc(generation: usize, cap: usize) -> *mut Buffer {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| Slot { lo: AtomicUsize::new(0), hi: AtomicUsize::new(0) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::into_raw(Box::new(Buffer { generation, mask: cap - 1, slots }))
    }

    /// Reads the entry at ring position `index & mask`.
    fn read(&self, index: usize) -> (usize, usize) {
        let slot = &self.slots[index & self.mask];
        // ORDERING: SeqCst — slot reads take part in the single total
        // order the protocol arguments are stated against (module docs);
        // a stale value is possible and is discarded by the caller's CAS.
        (slot.lo.load(Ordering::SeqCst), slot.hi.load(Ordering::SeqCst))
    }

    /// Writes the entry at ring position `index & mask`.
    fn write(&self, index: usize, entry: (usize, usize)) {
        let slot = &self.slots[index & self.mask];
        // ORDERING: SeqCst — the slot words must be ordered before the
        // `bottom` store that publishes them to thieves (module docs).
        slot.lo.store(entry.0, Ordering::SeqCst);
        slot.hi.store(entry.1, Ordering::SeqCst);
    }
}

/// A work-stealing deque of two-word entries with a growable ring.
///
/// The owner discipline (`push`/`pop` from one thread at a time) is a
/// *correctness* contract, not a memory-safety one: violating it can
/// lose or duplicate entries but cannot corrupt the deque, which is why
/// the methods are safe `fn`s. Layers whose entries are pointers must
/// uphold the discipline to keep their own decode sound (see
/// `pool::Pool`).
pub struct Deque {
    /// Next index a thief will take. Monotonic.
    top: AtomicUsize,
    /// Next index the owner will push at. Owner-written only.
    bottom: AtomicUsize,
    /// The current `*mut Buffer`, stored as a word. Owner-swapped on
    /// grow; loaded per-operation by everyone else.
    buffer: AtomicUsize,
    /// Former generations, owner-appended on grow. Kept alive (and
    /// unwritten) until `Drop` so stale thief reads stay defined; goes
    /// through the tracked cell so the model checker verifies no thief
    /// ever touches it.
    retired: UnsafeCell<Vec<*mut Buffer>>,
    /// Hard ring cap; `push` overflows to the caller once reached.
    max_capacity: usize,
}

// SAFETY: the raw buffer pointers are only dereferenced while the Deque
// is alive (they are freed exclusively in Drop, which takes &mut self),
// and `retired` is touched only by the owner (grow) or exclusively
// (Drop) — the owner/thief protocol is model-checked on top.
unsafe impl Send for Deque {}

// SAFETY: shared access is the point of the type — slots are atomic,
// grow republishes via an atomic swap, and the protocol (one owner,
// CAS-validated thieves) is argued in the module docs and model-checked.
unsafe impl Sync for Deque {}

/// Initial ring size: big enough that non-nested workloads never grow,
/// small enough that the grow path is actually exercised by real use
/// (and model harnesses) rather than being dead code.
const INITIAL_RING: usize = 8;

impl Deque {
    /// A deque growing up to `capacity` entries (rounded up to a power
    /// of two, minimum 4). The ring starts at `min(capacity, 8)` slots.
    pub fn new(capacity: usize) -> Deque {
        let max = capacity.max(4).next_power_of_two();
        let initial = max.min(INITIAL_RING);
        Deque {
            top: AtomicUsize::new(0),
            bottom: AtomicUsize::new(0),
            buffer: AtomicUsize::new(Buffer::alloc(0, initial) as usize),
            retired: UnsafeCell::new(Vec::new()),
            max_capacity: max,
        }
    }

    /// Maximum number of entries the deque can hold (the grow cap).
    pub fn capacity(&self) -> usize {
        self.max_capacity
    }

    /// Current ring size (grows towards [`Self::capacity`]); racy if
    /// read while the owner is mid-grow, exact for the owner itself.
    pub fn ring_len(&self) -> usize {
        self.current().slots.len()
    }

    /// Grow count so far (the current buffer's generation tag).
    pub fn generation(&self) -> usize {
        self.current().generation
    }

    /// The currently-published buffer.
    fn current(&self) -> &Buffer {
        // ORDERING: SeqCst — pointer loads sit in the same total order
        // as the slot/index operations they precede (module docs).
        let ptr = self.buffer.load(Ordering::SeqCst) as *const Buffer;
        // SAFETY: `ptr` came from Buffer::alloc via new() or grow(), and
        // no generation is freed before Drop (&mut self), so it outlives
        // this &self borrow. A stale pointer (owner grew concurrently)
        // still refers to a live, retired, no-longer-written buffer.
        unsafe { &*ptr }
    }

    /// True when a racy size estimate says the deque is empty. Cheap
    /// pre-filter for steal loops; a `false` answer may be stale in
    /// either direction.
    pub fn is_empty(&self) -> bool {
        // ORDERING: SeqCst — see the module docs; a racy estimate is
        // acceptable here, the strongest order is just the house style.
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        b <= t
    }

    /// Owner-only: appends an entry at the bottom, doubling the ring if
    /// it is full. Returns the entry back only when the ring already
    /// holds `capacity()` entries, so the caller can overflow to its
    /// fallback channel.
    pub fn push(&self, entry: (usize, usize)) -> Result<(), (usize, usize)> {
        // ORDERING: SeqCst — total-order protocol, see module docs.
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        let mut buf = self.current();
        // `top` only grows, so a stale `t` can only make the deque look
        // *fuller* than it is — grow/overflow is conservative, never
        // unsound.
        if b - t >= buf.slots.len() {
            if buf.slots.len() >= self.max_capacity {
                return Err(entry);
            }
            buf = self.grow(buf, t, b);
        }
        buf.write(b, entry);
        // ORDERING: SeqCst — publishing the new bottom is what makes the
        // slot visible to thieves; this store must order after the slot
        // writes above.
        self.bottom.store(b + 1, Ordering::SeqCst);
        crate::stats::note_deque_push();
        Ok(())
    }

    /// Owner-only slow path: doubles the ring (capped at
    /// `max_capacity`), copies the live range `[t, b)`, publishes the
    /// new buffer and retires the old one. Entries a thief steals from
    /// the *old* buffer mid-copy stay exactly-once: their copies in the
    /// new buffer sit below `top` and are never read.
    fn grow(&self, old: &Buffer, t: usize, b: usize) -> &Buffer {
        let new_cap = (old.slots.len() * 2).min(self.max_capacity);
        let new_ptr = Buffer::alloc(old.generation + 1, new_cap);
        // SAFETY: freshly allocated above and not yet published — this
        // is the only reference.
        let new_buf = unsafe { &*new_ptr };
        for i in t..b {
            new_buf.write(i, old.read(i));
        }
        // ORDERING: SeqCst — republishing the buffer pointer must order
        // after the copies above and before the caller's slot write;
        // thieves that loaded the old pointer keep reading retired (but
        // live and unwritten) memory, validated by their CAS on `top`.
        let old_ptr = self.buffer.swap(new_ptr as usize, Ordering::SeqCst) as *mut Buffer;
        debug_assert_eq!(old_ptr as *const Buffer, old as *const Buffer);
        // Owner-only by the push contract; the tracked cell makes the
        // model checker verify exactly that.
        self.retired.with_mut(|p| {
            // SAFETY: the pointer is valid for the closure and `retired`
            // is accessed only here (owner) and in Drop (&mut self).
            unsafe { (*p).push(old_ptr) }
        });
        crate::stats::note_deque_grow();
        new_buf
    }

    /// Owner-only: takes the most recently pushed entry (LIFO). Races
    /// with thieves only on the last element, resolved by a CAS on the
    /// monotonic `top`.
    pub fn pop(&self) -> Option<(usize, usize)> {
        // ORDERING: SeqCst — total-order protocol, see module docs.
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if b <= t {
            return None; // empty (only the owner advances `bottom`)
        }
        // Reserve the bottom slot, then re-read `top`: any thief that
        // CASes `top` after seeing the old `bottom` is serialized
        // against this store by the total SeqCst order.
        let nb = b - 1;
        // ORDERING: SeqCst — the reservation store and the `top` re-read
        // below must not reorder; this is the Chase–Lev pop handshake.
        self.bottom.store(nb, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        let buf = self.current();
        if t < nb {
            // More than one entry remained: the reserved slot is ours.
            let entry = buf.read(nb);
            crate::stats::note_local_hit();
            return Some(entry);
        }
        if t == nb {
            // Exactly one entry: decide the owner-vs-thief race by
            // advancing `top` ourselves. Either way the deque ends
            // empty, so restore `bottom` to the new `top`.
            let entry = buf.read(nb);
            // ORDERING: SeqCst on both sides — the CAS decides the race
            // in the same total order the thief's CAS uses.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst) // ORDERING: ^
                .is_ok();
            // ORDERING: SeqCst — normalization store, same total order.
            self.bottom.store(t + 1, Ordering::SeqCst);
            if won {
                crate::stats::note_local_hit();
                return Some(entry);
            }
            return None; // a thief got it first
        }
        // t > nb: thieves emptied the deque while we reserved. Normalize.
        // ORDERING: SeqCst — see above.
        self.bottom.store(t, Ordering::SeqCst);
        None
    }

    /// Thief: takes the oldest entry (FIFO). Returns `None` when the
    /// deque looks empty *or* when another thread won the race — callers
    /// treat both as "try elsewhere" and come back around.
    pub fn steal(&self) -> Option<(usize, usize)> {
        // ORDERING: SeqCst — total-order protocol, see module docs.
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        if b <= t {
            return None;
        }
        // Read the slot *before* claiming it; the CAS below validates
        // the read (see the module docs — the slot can only hold the
        // wrong entry if `top` already moved past `t`, which fails the
        // CAS and discards the value; the same argument covers reading
        // a retired buffer during a concurrent grow).
        let entry = self.current().read(t);
        // ORDERING: SeqCst on both sides — the claim CAS is the
        // linearization point of a successful steal and the validator of
        // the racy reads above.
        if self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
            crate::stats::note_steal();
            return Some(entry);
        }
        None
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        // ORDERING: SeqCst — house style; &mut self already guarantees
        // exclusive access here.
        let cur = self.buffer.load(Ordering::SeqCst) as *mut Buffer;
        // SAFETY: `cur` came from Buffer::alloc's Box::into_raw and is
        // freed nowhere else; &mut self means no thief holds a reference.
        unsafe { drop(Box::from_raw(cur)) };
        for p in std::mem::take(self.retired.get_mut()) {
            // SAFETY: each retired pointer was pushed exactly once by
            // grow() after being unpublished, and is freed only here.
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Deque::new(0).capacity(), 4);
        assert_eq!(Deque::new(5).capacity(), 8);
        assert_eq!(Deque::new(8).capacity(), 8);
    }

    #[test]
    fn ring_starts_small_and_caps_at_capacity() {
        assert_eq!(Deque::new(4).ring_len(), 4);
        assert_eq!(Deque::new(64).ring_len(), INITIAL_RING);
        assert_eq!(Deque::new(64).generation(), 0);
    }

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = Deque::new(8);
        for i in 0..4 {
            d.push((i, i * 10)).unwrap();
        }
        assert_eq!(d.steal(), Some((0, 0)), "thief takes the oldest");
        assert_eq!(d.pop(), Some((3, 30)), "owner takes the newest");
        assert_eq!(d.steal(), Some((1, 10)));
        assert_eq!(d.pop(), Some((2, 20)));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn push_overflows_to_the_caller() {
        let d = Deque::new(4);
        for i in 0..4 {
            assert!(d.push((i, 0)).is_ok());
        }
        assert_eq!(d.push((9, 9)), Err((9, 9)));
        // Draining one entry frees a slot again.
        assert!(d.steal().is_some());
        assert!(d.push((9, 9)).is_ok());
    }

    #[test]
    fn grow_doubles_to_the_cap_and_keeps_every_entry() {
        let d = Deque::new(64);
        assert_eq!(d.ring_len(), INITIAL_RING);
        for i in 0..64 {
            assert!(d.push((i, i)).is_ok(), "entry {i} fits (the ring grows)");
        }
        assert_eq!(d.ring_len(), 64, "ring grew to the cap");
        assert_eq!(d.generation(), 3, "8 → 16 → 32 → 64 is three grows");
        assert_eq!(d.push((99, 99)), Err((99, 99)), "the cap still overflows");
        // FIFO drain sees every entry exactly once, across generations.
        for i in 0..64 {
            assert_eq!(d.steal(), Some((i, i)));
        }
        assert_eq!(d.steal(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn grow_preserves_a_wrapped_live_range() {
        // Offset top/bottom so the live range wraps the small ring, then
        // force a grow: the copy must unwrap it correctly.
        let d = Deque::new(32);
        for i in 0..6 {
            d.push((i, 0)).unwrap();
        }
        for i in 0..6 {
            assert_eq!(d.steal(), Some((i, 0)));
        }
        // Ring is empty with top = bottom = 6; fill past the seam.
        for i in 0..16 {
            d.push((100 + i, 1)).unwrap();
        }
        assert!(d.generation() >= 1, "the refill forced a grow");
        for i in 0..16 {
            assert_eq!(d.steal(), Some((100 + i, 1)));
        }
    }

    #[test]
    fn ring_indices_wrap_without_losing_entries() {
        let d = Deque::new(4);
        // Push/drain many times so bottom/top run far past the capacity.
        for round in 0..100usize {
            d.push((round, round + 1)).unwrap();
            if round % 2 == 0 {
                assert_eq!(d.pop(), Some((round, round + 1)));
            } else {
                assert_eq!(d.steal(), Some((round, round + 1)));
            }
        }
        assert!(d.is_empty());
    }

    #[test]
    #[cfg(not(slcs_model_check))]
    fn concurrent_thieves_take_each_entry_once() {
        use std::sync::atomic::{AtomicUsize as StdUsize, Ordering as StdOrd};
        let d = Deque::new(1024);
        const N: usize = 1000;
        for i in 0..N {
            d.push((i, 0)).unwrap();
        }
        let taken: Vec<StdUsize> = (0..N).map(|_| StdUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some((i, _)) = d.steal() {
                        taken[i].fetch_add(1, StdOrd::Relaxed);
                    }
                });
            }
            // The owner pops concurrently from the other end.
            while let Some((i, _)) = d.pop() {
                taken[i].fetch_add(1, StdOrd::Relaxed);
            }
        });
        for (i, t) in taken.iter().enumerate() {
            assert_eq!(t.load(StdOrd::Relaxed), 1, "entry {i} delivered exactly once");
        }
    }

    #[test]
    #[cfg(not(slcs_model_check))]
    fn concurrent_thieves_survive_owner_growth() {
        use std::sync::atomic::{AtomicUsize as StdUsize, Ordering as StdOrd};
        const N: usize = 1000;
        let d = Deque::new(1024); // ring starts at 8: pushing N grows it
        let taken: Vec<StdUsize> = (0..N).map(|_| StdUsize::new(0)).collect();
        let done = StdUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while done.load(StdOrd::Acquire) == 0 || !d.is_empty() {
                        if let Some((i, _)) = d.steal() {
                            taken[i].fetch_add(1, StdOrd::Relaxed);
                        }
                    }
                });
            }
            // The owner pushes everything (growing under the thieves'
            // feet), then helps drain.
            for i in 0..N {
                let mut entry = (i, 0);
                while let Err(e) = d.push(entry) {
                    entry = e; // cap reached: let the thieves catch up
                    std::hint::spin_loop();
                }
            }
            done.store(1, StdOrd::Release);
            while let Some((i, _)) = d.pop() {
                taken[i].fetch_add(1, StdOrd::Relaxed);
            }
        });
        assert!(d.generation() >= 1, "the load grew the ring at least once");
        for (i, t) in taken.iter().enumerate() {
            assert_eq!(t.load(StdOrd::Relaxed), 1, "entry {i} delivered exactly once");
        }
    }
}
