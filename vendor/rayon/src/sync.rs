//! Synchronization facade: every atomic, lock, condvar, yield and spin
//! in this crate's scheduler code goes through here.
//!
//! A normal build resolves to `std` — same types, zero overhead. Built
//! with `RUSTFLAGS="--cfg slcs_model_check"` it resolves to the
//! instrumented `shim_loom` primitives instead, which makes the *real*
//! pool and team protocols explorable by the model checker (see
//! `vendor/shim-loom` and `docs/SAFETY.md`). The two resolutions are
//! API-compatible for every call shape this crate uses.

#[cfg(not(slcs_model_check))]
pub(crate) use std::sync::{Condvar, Mutex};

#[cfg(slcs_model_check)]
pub(crate) use shim_loom::sync::{Condvar, Mutex};

pub(crate) mod atomic {
    #[cfg(not(slcs_model_check))]
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};

    #[cfg(slcs_model_check)]
    pub(crate) use shim_loom::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
}

/// Facade over `std::thread::yield_now`; a deprioritizing schedule point
/// under the model checker.
pub(crate) fn yield_now() {
    #[cfg(not(slcs_model_check))]
    std::thread::yield_now();
    #[cfg(slcs_model_check)]
    shim_loom::thread::yield_now();
}

/// Facade over `std::hint::spin_loop`; a deprioritizing schedule point
/// under the model checker.
pub(crate) fn spin_loop() {
    #[cfg(not(slcs_model_check))]
    std::hint::spin_loop();
    #[cfg(slcs_model_check)]
    shim_loom::hint::spin_loop();
}
