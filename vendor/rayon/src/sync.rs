//! Synchronization facade: every atomic, lock, condvar, yield and spin
//! in this crate's scheduler code goes through here.
//!
//! A normal build resolves to `std` — same types, zero overhead. Built
//! with `RUSTFLAGS="--cfg slcs_model_check"` it resolves to the
//! instrumented `shim_loom` primitives instead, which makes the *real*
//! pool and team protocols explorable by the model checker (see
//! `vendor/shim-loom` and `docs/SAFETY.md`). The two resolutions are
//! API-compatible for every call shape this crate uses.

#[cfg(not(slcs_model_check))]
pub(crate) use std::sync::{Condvar, Mutex};

#[cfg(slcs_model_check)]
pub(crate) use shim_loom::sync::{Condvar, Mutex};

pub(crate) mod atomic {
    #[cfg(not(slcs_model_check))]
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};

    #[cfg(slcs_model_check)]
    pub(crate) use shim_loom::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
}

/// Interior-mutability facade: non-atomic state that the concurrency
/// protocol (not the type system) keeps exclusive goes through this cell
/// so the model checker's race detector can audit every access against
/// the happens-before order (see `shim_loom::cell`). A normal build is a
/// zero-cost wrapper over `std::cell::UnsafeCell`.
pub(crate) mod cell {
    #[cfg(slcs_model_check)]
    pub(crate) use shim_loom::cell::UnsafeCell;

    #[cfg(not(slcs_model_check))]
    #[derive(Debug, Default)]
    pub(crate) struct UnsafeCell<T: ?Sized> {
        inner: std::cell::UnsafeCell<T>,
    }

    #[cfg(not(slcs_model_check))]
    impl<T> UnsafeCell<T> {
        pub(crate) const fn new(data: T) -> UnsafeCell<T> {
            UnsafeCell { inner: std::cell::UnsafeCell::new(data) }
        }
    }

    #[cfg(not(slcs_model_check))]
    // Mirrors the shim's full API; not every crate uses every accessor
    // in the std build, and trimming would desync the two cfg arms.
    #[allow(dead_code)]
    impl<T: ?Sized> UnsafeCell<T> {
        /// Shared access; the closure receives `*const T`.
        #[inline(always)]
        pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.inner.get())
        }

        /// Exclusive access; the closure receives `*mut T`. Exclusivity
        /// is the caller's protocol invariant — exactly what the model
        /// build verifies.
        #[inline(always)]
        pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.inner.get())
        }

        #[inline(always)]
        pub(crate) fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }
}

/// Facade over `std::thread::yield_now`; a deprioritizing schedule point
/// under the model checker.
pub(crate) fn yield_now() {
    #[cfg(not(slcs_model_check))]
    std::thread::yield_now();
    #[cfg(slcs_model_check)]
    shim_loom::thread::yield_now();
}

/// Facade over `std::hint::spin_loop`; a deprioritizing schedule point
/// under the model checker.
pub(crate) fn spin_loop() {
    #[cfg(not(slcs_model_check))]
    std::hint::spin_loop();
    #[cfg(slcs_model_check)]
    shim_loom::hint::spin_loop();
}
