//! The persistent worker pool behind [`crate::join`], the parallel
//! iterators and [`crate::team_run`].
//!
//! Workers are real OS threads, spawned lazily (one per budget slot the
//! process has ever asked for) and **parked** on a condvar when idle —
//! never torn down. Work arrives as [`JobRef`]s through a shared
//! injector queue; a thread that must wait for a job it published
//! (`join`'s second arm, an iterator chunk) *helps*: it pops and runs
//! other queued jobs instead of blocking, so the pool can never deadlock
//! on nested fork/join and a caller's CPU is never wasted.
//!
//! Jobs are stack-allocated ([`StackJob`]): the publishing frame owns the
//! closure and result slot, and is required to stay alive until the job's
//! state reaches `DONE` — every publisher in this crate waits for exactly
//! that before returning, which is what makes the raw pointers sound.
//! Panics inside a job are caught, carried through the result slot, and
//! re-thrown on the publishing thread; the worker that ran the job
//! survives and goes back to the queue.
//!
//! # Work stealing
//!
//! Each worker owns a Chase–Lev [`Deque`](crate::deque::Deque). A job
//! published *from a worker thread* (a nested `join`'s second arm, an
//! iterator subtree) goes onto that worker's own deque — no mutex, no
//! condvar syscall — and is popped back LIFO while the worker helps, so
//! nested fork/join stays cache-hot and local. Idle workers steal FIFO
//! from their peers before falling back to the condvar injector, which
//! remains the channel for jobs published by non-pool threads (and the
//! overflow path when a deque fills up).
//!
//! Deadlock-freedom does not depend on wakeups for deque entries: a
//! worker only parks after finding its own deque empty, and nothing but
//! that worker can push to it — so a parked worker's deque stays empty,
//! and any stealable entry belongs to a worker that is awake to drain
//! it. The parked-count notify below is purely a latency optimization.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use crate::deque::Deque;
use crate::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use crate::sync::cell::UnsafeCell;
use crate::sync::{Condvar, Mutex};

/// Hard ceiling on spawned workers, a guard against absurd `--threads`
/// values; the budget itself is enforced per call site.
const MAX_WORKERS: usize = 128;

/// Type-erased pointer to a [`StackJob`] living on some publisher's
/// stack. Sound to send across threads because the publisher keeps the
/// job alive until its state is `DONE` and every ref is executed at most
/// once (enforced by the `PENDING → RUNNING` claim).
pub struct JobRef {
    ptr: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: see the type docs — the publisher keeps the job alive until DONE
// and each ref is executed at most once.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    ///
    /// The underlying [`StackJob`] must still be alive.
    pub unsafe fn execute(self) {
        // SAFETY: forwarding the caller's liveness guarantee to the erased fn.
        unsafe { (self.exec)(self.ptr) }
    }
}

const PENDING: u8 = 0;
const RUNNING: u8 = 1;
const DONE: u8 = 2;

/// A fork/join task whose closure and result live in the publishing
/// stack frame.
pub struct StackJob<F, R> {
    state: AtomicU8,
    /// Thread budget the job should observe (the publisher's).
    budget: usize,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
}

// SAFETY: the state protocol serializes all access to the cells: `func` is taken
// only by the single claimant of the PENDING → RUNNING transition, and
// `result` is written before the DONE release store and read only after
// observing DONE.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub fn new(func: F, budget: usize) -> Self {
        StackJob {
            state: AtomicU8::new(PENDING),
            budget,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
        }
    }

    /// # Safety
    ///
    /// The caller promises to keep `self` alive (and not move it) until
    /// [`Self::is_done`] returns true.
    pub unsafe fn as_job_ref(&self) -> JobRef {
        JobRef { ptr: self as *const Self as *const (), exec: Self::execute_erased }
    }

    // SAFETY: contract inherited from `as_job_ref` — `ptr` is a live, pinned
    // `StackJob<F, R>`, and each ref reaches execute at most once.
    unsafe fn execute_erased(ptr: *const ()) {
        // SAFETY: the caller (JobRef::execute) guarantees `ptr` is live.
        let this = unsafe { &*(ptr as *const Self) };
        if this
            .state
            // ORDERING: success Acquire pairs with the publisher's handoff;
            // failure is Relaxed — a losing claimant reads no job state.
            .compare_exchange(PENDING, RUNNING, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return; // already claimed (defensive; refs are popped once)
        }
        // SAFETY: winning the PENDING → RUNNING CAS grants exclusive access to
        // both cells until the DONE release store.
        // PANIC: the winning CAS above is the only path here, and new() stored the closure.
        let func = this.func.with_mut(|p| unsafe { (*p).take() }).expect("job claimed twice");
        crate::stats::note_job_executed();
        let _job_span = slcs_trace::span!("pool.job");
        let budget = this.budget;
        let out = catch_unwind(AssertUnwindSafe(move || crate::with_budget(budget, func)));
        // SAFETY: still the exclusive claimant; see above.
        this.result.with_mut(|p| unsafe { *p = Some(out) });
        // ORDERING: Release pairs with is_done()'s Acquire load — it
        // publishes the result cell write to whichever thread observes
        // DONE and then calls take_result().
        this.state.store(DONE, Ordering::Release);
    }

    pub fn is_done(&self) -> bool {
        // ORDERING: Acquire pairs with execute_erased()'s DONE Release
        // store; observing DONE licenses the take_result() cell read.
        self.state.load(Ordering::Acquire) == DONE
    }

    /// Takes the outcome; call only after [`Self::is_done`].
    pub fn take_result(&self) -> std::thread::Result<R> {
        debug_assert!(self.is_done());
        // PANIC: is_done() implies execute() stored the result, and it is taken only here.
        // SAFETY: the DONE acquire load happens-after execute()'s release store of
        // the result, and nothing else touches the cell afterwards.
        self.result.with_mut(|p| unsafe { (*p).take() }).expect("result taken twice")
    }

    /// Re-throws the job's panic, or returns its value.
    pub fn unwrap_value(&self) -> R {
        match self.take_result() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

struct Shared {
    jobs: VecDeque<JobRef>,
    spawned: usize,
}

/// A [`JobRef`] flattened to the two plain words a [`Deque`] stores.
fn encode_job(job: JobRef) -> (usize, usize) {
    (job.ptr as usize, job.exec as usize)
}

// The transmute in `decode_job` requires fn pointers and data words to
// coincide; true on every supported target, checked at compile time.
const _: () = assert!(
    std::mem::size_of::<unsafe fn(*const ())>() == std::mem::size_of::<usize>(),
    "fn pointers must be one machine word"
);

/// Rebuilds a [`JobRef`] from its deque encoding.
///
/// # Safety
///
/// `entry` must have come from [`encode_job`] on a still-alive job, and
/// must be decoded at most once. Both hold for deque traffic: only
/// encoded jobs are pushed, the deque delivers each entry to exactly
/// one taker (per-worker ownership plus the CAS-validated steal), and
/// publishers keep their `StackJob` alive until it reaches `DONE`.
unsafe fn decode_job(entry: (usize, usize)) -> JobRef {
    // SAFETY: the word was produced by `encode_job` casting a fn pointer
    // of exactly this type, and the const assert above pins the size.
    let exec = unsafe { std::mem::transmute::<usize, unsafe fn(*const ())>(entry.1) };
    JobRef { ptr: entry.0 as *const (), exec }
}

thread_local! {
    /// Index of the pool worker running on this thread (`None` off the
    /// pool). Set once at `worker_loop` entry; selects the deque that
    /// `publish` and `help_until` treat as "ours".
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The process-global worker pool.
pub struct Pool {
    shared: Mutex<Shared>,
    work_available: Condvar,
    /// One stealing deque per potential worker, indexed by worker id.
    deques: Box<[Deque]>,
    /// Workers currently asleep on `work_available` — a hint for the
    /// local-push fast path to skip the notify syscall when nobody is
    /// listening. Maintained around the condvar wait.
    parked: AtomicUsize,
    /// Lock-free copy of `Shared::spawned`, bounding steal scans.
    spawned_hint: AtomicUsize,
}

/// Per-worker deque capacity. Overflow falls back to the injector, so
/// this only bounds how much nested work stays mutex-free; 256 covers
/// any realistic join depth at 8 bytes × 2 words per slot.
const DEQUE_CAPACITY: usize = 256;

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Pool {
    /// A fresh, empty pool. Model-check harnesses build one per explored
    /// execution; production code goes through [`Pool::global`].
    pub fn new() -> Pool {
        Pool {
            shared: Mutex::new(Shared { jobs: VecDeque::new(), spawned: 0 }),
            work_available: Condvar::new(),
            deques: (0..MAX_WORKERS).map(|_| Deque::new(DEQUE_CAPACITY)).collect(),
            parked: AtomicUsize::new(0),
            spawned_hint: AtomicUsize::new(0),
        }
    }

    pub fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(Pool::new)
    }

    /// Ensures at least `n` parked workers exist (idempotent, lazy).
    pub fn ensure_workers(&'static self, n: usize) {
        if cfg!(slcs_model_check) {
            // Under the model checker no OS workers exist: harnesses
            // drive the pool with model threads and `help_until`, so the
            // scheduler controls every participant.
            return;
        }
        let n = n.min(MAX_WORKERS);
        let mut shared = self.shared.lock().unwrap();
        while shared.spawned < n {
            shared.spawned += 1;
            let id = shared.spawned;
            // ORDERING: Relaxed — a scan-bound hint; steal loops tolerate
            // a stale (smaller) value, and the owner drains its own deque
            // regardless.
            self.spawned_hint.store(shared.spawned, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("slcs-pool-{id}"))
                .spawn(move || self.worker_loop(id - 1))
                // PANIC: failing to spawn a pool worker at startup is unrecoverable.
                .expect("cannot spawn pool worker");
        }
    }

    pub fn spawned_workers(&self) -> usize {
        self.shared.lock().unwrap().spawned
    }

    /// One round of stealing: scans every peer deque once (rotating from
    /// `self_idx + 1` to spread contention). `self_idx` is
    /// `MAX_WORKERS` for non-worker helpers, which simply scan from 0.
    fn try_steal(&self, self_idx: usize) -> Option<JobRef> {
        // ORDERING: Relaxed — scan bound only; see `spawned_hint`.
        let n = self.spawned_hint.load(Ordering::Relaxed);
        for i in 0..n {
            let victim = (self_idx + 1 + i) % n.max(1);
            if victim == self_idx {
                continue;
            }
            if let Some(entry) = self.deques[victim].steal() {
                // SAFETY: the entry was pushed by `publish` below from
                // `encode_job` on a live StackJob, and the deque's steal
                // CAS delivers it to this thread alone (decode_job's
                // at-most-once contract).
                return Some(unsafe { decode_job(entry) });
            }
        }
        None
    }

    fn worker_loop(&'static self, idx: usize) {
        WORKER_INDEX.with(|c| c.set(Some(idx)));
        loop {
            // Own deque first (LIFO, cache-hot), then steal, then the
            // shared injector — parking only when all three are dry.
            if let Some(entry) = self.deques[idx].pop() {
                // SAFETY: entries come from `publish`'s encode_job on live
                // jobs; the owner pop delivers each entry exactly once.
                let job = unsafe { decode_job(entry) };
                // SAFETY: decoded from a live, singly-delivered entry (above).
                unsafe { job.execute() };
                continue;
            }
            if let Some(job) = self.try_steal(idx) {
                // SAFETY: try_steal returns singly-delivered refs to live jobs.
                unsafe { job.execute() };
                continue;
            }
            let Some(job) = self.pop_or_park() else { continue };
            // Panics were already caught inside the job; the worker
            // always comes back for more.
            // SAFETY: refs are popped exactly once, and the publisher keeps the
            // job alive until it observes DONE.
            unsafe { job.execute() };
        }
    }

    /// Pops from the injector, parking on the condvar when it is empty.
    /// Returns `None` after a wakeup that found no injector job so the
    /// caller re-runs its deque/steal sweep before sleeping again.
    fn pop_or_park(&self) -> Option<JobRef> {
        let mut shared = self.shared.lock().unwrap();
        if let Some(job) = shared.jobs.pop_front() {
            crate::stats::note_injector_pop();
            return Some(job);
        }
        crate::stats::note_park();
        // ORDERING: Relaxed — a wakeup hint for local pushes; a stale
        // read costs at most one missed notify, and progress never
        // depends on it (see the module docs on deadlock-freedom).
        self.parked.fetch_add(1, Ordering::Relaxed);
        shared = self.work_available.wait(shared).unwrap();
        // ORDERING: Relaxed — see above.
        self.parked.fetch_sub(1, Ordering::Relaxed);
        crate::stats::note_unpark();
        let job = shared.jobs.pop_front();
        if job.is_some() {
            crate::stats::note_injector_pop();
        }
        job
    }

    /// Publishes one job and wakes one worker.
    pub fn inject(&self, job: JobRef) {
        self.shared.lock().unwrap().jobs.push_back(job);
        self.work_available.notify_one();
    }

    /// Publishes one job the cheapest way available: onto the calling
    /// worker's own deque when on a pool thread (no lock, no syscall
    /// unless a peer is parked), else through the injector. The deque's
    /// overflow falls back to the injector too, so publication never
    /// fails.
    pub fn publish(&self, job: JobRef) {
        let idx = WORKER_INDEX.with(Cell::get);
        match idx {
            Some(idx) => {
                if let Err(entry) = self.deques[idx].push(encode_job(job)) {
                    // Ring full — overflow to the shared queue.
                    // SAFETY: the entry was encoded just above and never
                    // delivered (push returned it), so decoding it here
                    // is its single use.
                    self.inject(unsafe { decode_job(entry) });
                    return;
                }
                // ORDERING: Relaxed — wakeup hint only (see pop_or_park);
                // a missed notify delays a sleeper but cannot strand the
                // job, which its owner drains.
                if self.parked.load(Ordering::Relaxed) > 0 {
                    self.work_available.notify_one();
                }
            }
            None => self.inject(job),
        }
    }

    /// Publishes a batch of jobs and wakes every worker.
    pub fn inject_many(&self, jobs: impl Iterator<Item = JobRef>) {
        self.shared.lock().unwrap().jobs.extend(jobs);
        self.work_available.notify_all();
    }

    /// Pops one queued job, if any — lets a waiting publisher help.
    pub fn try_pop(&self) -> Option<JobRef> {
        let job = self.shared.lock().unwrap().jobs.pop_front();
        if job.is_some() {
            crate::stats::note_injector_pop();
        }
        job
    }

    /// Runs other jobs (helping the pool) until `done()`; yields when no
    /// work is found so oversubscribed configurations make progress.
    /// Work order mirrors `worker_loop`: own deque (LIFO — drains the
    /// helper's own nested publishes first), then the injector, then a
    /// steal sweep.
    pub fn help_until(&self, done: impl Fn() -> bool) {
        let idx = WORKER_INDEX.with(Cell::get);
        while !done() {
            if let Some(idx) = idx {
                if let Some(entry) = self.deques[idx].pop() {
                    // SAFETY: entries come from `publish`'s encode_job on
                    // live jobs; the owner pop delivers each exactly once.
                    unsafe { decode_job(entry).execute() };
                    continue;
                }
            }
            match self.try_pop() {
                // SAFETY: every queued JobRef points at a StackJob whose
                // publishing frame stays alive until the job reaches
                // DONE, and popping removes the only ref — it executes
                // at most once.
                Some(job) => unsafe { job.execute() },
                None => match self.try_steal(idx.unwrap_or(MAX_WORKERS)) {
                    // SAFETY: try_steal returns singly-delivered refs to
                    // live jobs (see its body).
                    Some(job) => unsafe { job.execute() },
                    None => crate::sync::yield_now(),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(not(slcs_model_check))] // the model-check build spawns no OS workers
    fn workers_spawn_once_and_persist() {
        let pool = Pool::global();
        pool.ensure_workers(2);
        let before = pool.spawned_workers();
        assert!(before >= 2);
        pool.ensure_workers(2);
        assert_eq!(pool.spawned_workers(), before);
    }

    #[test]
    fn stack_job_runs_and_returns() {
        let pool = Pool::global();
        pool.ensure_workers(1);
        let job = StackJob::new(|| 6 * 7, 1);
        unsafe { pool.inject(job.as_job_ref()) };
        pool.help_until(|| job.is_done());
        assert_eq!(job.unwrap_value(), 42);
    }

    #[test]
    fn stack_job_carries_panics() {
        let pool = Pool::global();
        pool.ensure_workers(1);
        let job: StackJob<_, ()> = StackJob::new(|| panic!("boom"), 1);
        unsafe { pool.inject(job.as_job_ref()) };
        pool.help_until(|| job.is_done());
        assert!(job.take_result().is_err());
        // And the pool still works afterwards.
        let ok = StackJob::new(|| 1 + 1, 1);
        unsafe { pool.inject(ok.as_job_ref()) };
        pool.help_until(|| ok.is_done());
        assert_eq!(ok.unwrap_value(), 2);
    }
}
