//! Executor counters: lightweight, always-on observability for the
//! pool and team layers, surfaced through the engine's `METRICS`
//! exposition and the `slcs trace` tooling.
//!
//! These are **monotonic counters with no cross-field consistency**,
//! exactly like `crates/engine/src/metrics.rs`: every access is
//! `Ordering::Relaxed` (enforced by `cargo xtask lint`'s Relaxed-only
//! rule, which covers this file). They deliberately use
//! `std::sync::atomic` rather than the crate's model-check sync facade:
//! instrumentation must not add states for the model checker to
//! explore, and a torn or stale read of a counter can never affect
//! scheduling.
//!
//! `barrier_wait_micros` is special: accumulating wall-clock time costs
//! two `Instant` reads per barrier crossing, so it is only collected
//! while tracing is enabled (`slcs_trace::enabled()`); the counter
//! reads 0 in an untraced process. All other counters are always on —
//! one relaxed RMW each, far off any per-cell path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Jobs executed by the pool (a claimant won the PENDING → RUNNING CAS).
static JOBS_EXECUTED: AtomicU64 = AtomicU64::new(0);
/// Jobs popped from the shared injector queue (by workers or helpers).
static INJECTOR_POPS: AtomicU64 = AtomicU64::new(0);
/// Times a worker went to sleep on the injector condvar.
static PARKS: AtomicU64 = AtomicU64::new(0);
/// Times a worker woke from the injector condvar.
static UNPARKS: AtomicU64 = AtomicU64::new(0);
/// Entries pushed onto a work-stealing deque (owner side).
static DEQUE_PUSHES: AtomicU64 = AtomicU64::new(0);
/// Ring doublings across all deques (each retires one buffer).
static DEQUE_GROWS: AtomicU64 = AtomicU64::new(0);
/// Entries an owner popped back off its own deque — work that stayed
/// local and never paid a syscall or a CAS fight.
static LOCAL_HITS: AtomicU64 = AtomicU64::new(0);
/// Entries successfully stolen from another thread's deque.
static STEALS: AtomicU64 = AtomicU64::new(0);
/// Completed `team_run` invocations.
static TEAM_RUNS: AtomicU64 = AtomicU64::new(0);
/// Barrier crossings where the caller had to wait for peers.
static BARRIER_WAITS: AtomicU64 = AtomicU64::new(0);
/// Time spent waiting at team barriers, µs (traced runs only; see
/// module docs).
static BARRIER_WAIT_MICROS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn note_job_executed() {
    // ORDERING: Relaxed — monotonic counter, no cross-field consistency.
    JOBS_EXECUTED.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_injector_pop() {
    // ORDERING: Relaxed — monotonic counter, no cross-field consistency.
    INJECTOR_POPS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_park() {
    // ORDERING: Relaxed — monotonic counter, no cross-field consistency.
    PARKS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_unpark() {
    // ORDERING: Relaxed — monotonic counter, no cross-field consistency.
    UNPARKS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_deque_push() {
    // ORDERING: Relaxed — monotonic counter, no cross-field consistency.
    DEQUE_PUSHES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_deque_grow() {
    // ORDERING: Relaxed — monotonic counter, no cross-field consistency.
    DEQUE_GROWS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_local_hit() {
    // ORDERING: Relaxed — monotonic counter, no cross-field consistency.
    LOCAL_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_steal() {
    // ORDERING: Relaxed — monotonic counter, no cross-field consistency.
    STEALS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_team_run() {
    // ORDERING: Relaxed — monotonic counter, no cross-field consistency.
    TEAM_RUNS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_barrier_wait() {
    // ORDERING: Relaxed — monotonic counter, no cross-field consistency.
    BARRIER_WAITS.fetch_add(1, Ordering::Relaxed);
}

// Only called from the timed barrier path, which the model build elides.
#[cfg_attr(slcs_model_check, allow(dead_code))]
pub(crate) fn note_barrier_wait_micros(micros: u64) {
    // ORDERING: Relaxed — monotonic counter, no cross-field consistency.
    BARRIER_WAIT_MICROS.fetch_add(micros, Ordering::Relaxed);
}

/// A point-in-time copy of the executor counters. Fields are read
/// independently (relaxed), so the snapshot is not a consistent cut —
/// fine for monitoring, meaningless for synchronization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub jobs_executed: u64,
    pub injector_pops: u64,
    /// Work-stealing deque pushes (pool-local jobs + wavefront chunks).
    pub deque_pushes: u64,
    /// Deque ring doublings (growth events, not entries).
    pub deque_grows: u64,
    /// Deque entries the owner popped back itself (stayed local).
    pub local_hits: u64,
    /// Deque entries taken by a thief.
    pub steals: u64,
    pub parks: u64,
    pub unparks: u64,
    pub team_runs: u64,
    pub barrier_waits: u64,
    /// µs waited at team barriers while tracing was enabled (0 otherwise).
    pub barrier_wait_micros: u64,
}

/// Snapshot of the process-wide executor counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        // ORDERING: Relaxed — independent monotonic counters; the
        // snapshot needs no cross-field consistency.
        jobs_executed: JOBS_EXECUTED.load(Ordering::Relaxed),
        injector_pops: INJECTOR_POPS.load(Ordering::Relaxed),
        deque_pushes: DEQUE_PUSHES.load(Ordering::Relaxed),
        deque_grows: DEQUE_GROWS.load(Ordering::Relaxed),
        local_hits: LOCAL_HITS.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        parks: PARKS.load(Ordering::Relaxed),
        unparks: UNPARKS.load(Ordering::Relaxed),
        team_runs: TEAM_RUNS.load(Ordering::Relaxed),
        barrier_waits: BARRIER_WAITS.load(Ordering::Relaxed),
        barrier_wait_micros: BARRIER_WAIT_MICROS.load(Ordering::Relaxed),
    }
}
