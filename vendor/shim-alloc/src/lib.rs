//! slcs-alloc — a zero-dependency instrumenting global allocator.
//!
//! The paper's steady-ant memory optimization (ICPP '21 §4.2.1,
//! Listing 2) replaces per-recursion-level allocation with pre-sized
//! ping-pong blocks; that is a claim about *allocator traffic*, which
//! the tracing layer (`slcs-trace`) cannot see — it measures time, not
//! bytes. This crate closes the gap: [`InstrumentedAlloc`] wraps the
//! system allocator and counts every allocation, so benchmarks and the
//! engine's metrics endpoint can report allocation counts, live bytes,
//! peak live bytes and a power-of-two size-class histogram, and
//! [`alloc_scope!`] attributes byte deltas to the enclosing trace span
//! (kernel build vs braid multiply vs wavefront sweep).
//!
//! Design constraints, in priority order:
//!
//! 1. **The counting path must never allocate.** The allocator is
//!    re-entered by anything it calls that touches the heap; every
//!    counter here is a plain `Cell` in const-initialized TLS or a
//!    pre-sized static atomic, so recording is recursion-free.
//! 2. **Counting is contention-tolerant.** Process-wide totals live in
//!    a fixed array of cache-line-padded shards; each thread picks a
//!    shard once (round-robin) and bumps it with `Relaxed` RMWs.
//!    Per-thread *exact* counters (for scope attribution) are
//!    non-atomic TLS cells — no cross-thread traffic at all.
//! 3. **Not installed ⇒ inert.** All counters read zero unless a
//!    binary opts in with `#[global_allocator]`; [`installed`] probes
//!    which world it is running in so callers can label their output.
//!
//! # Installing
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: slcs_alloc::InstrumentedAlloc = slcs_alloc::InstrumentedAlloc;
//! ```
//!
//! # Scoped attribution
//!
//! ```
//! let scope = slcs_alloc::alloc_scope!("phase.build");
//! let v: Vec<u64> = (0..1024).collect();
//! let delta = scope.delta();
//! // With the allocator installed, `delta.allocs >= 1`; when tracing
//! // is enabled the drop below also records an instant event carrying
//! // the byte/alloc delta inside the enclosing span.
//! drop(scope);
//! drop(v);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

pub use slcs_trace as trace;

/// Number of size classes: class `k` counts allocations of
/// `(2^(k-1), 2^k]` bytes (class 0 takes 0- and 1-byte requests, the
/// last class absorbs the tail).
pub const SIZE_CLASSES: usize = 32;

/// Number of counter shards for the process-wide totals. Threads are
/// assigned round-robin, so with fewer than this many threads alive
/// there is no sharing at all.
const SHARDS: usize = 64;

// ---------------------------------------------------------------------
// Process-wide counters: padded shards + live/peak + size classes
// ---------------------------------------------------------------------

/// One shard of the process-wide totals, padded to a cache line so
/// neighbouring shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard {
    allocs: AtomicU64,
    frees: AtomicU64,
    alloc_bytes: AtomicU64,
    freed_bytes: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const SHARD_INIT: Shard = Shard {
    allocs: AtomicU64::new(0),
    frees: AtomicU64::new(0),
    alloc_bytes: AtomicU64::new(0),
    freed_bytes: AtomicU64::new(0),
};

static SHARD_TABLE: [Shard; SHARDS] = [SHARD_INIT; SHARDS];

/// Bytes currently live (allocated, not yet freed), process-wide.
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE_BYTES`], process-wide, monotone.
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

#[allow(clippy::declare_interior_mutable_const)]
const CLASS_INIT: AtomicU64 = AtomicU64::new(0);
/// Power-of-two size-class histogram of allocation request sizes.
static CLASS_TABLE: [AtomicU64; SIZE_CLASSES] = [CLASS_INIT; SIZE_CLASSES];

/// Round-robin shard assignment cursor.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index; `usize::MAX` until first use.
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Exact per-thread counters for scope attribution. Plain cells:
    /// only this thread touches them, and the allocator path must not
    /// allocate or contend.
    static T_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static T_FREES: Cell<u64> = const { Cell::new(0) };
    static T_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static T_FREED_BYTES: Cell<u64> = const { Cell::new(0) };
    /// Signed: this thread may free memory another thread allocated.
    static T_LIVE: Cell<i64> = const { Cell::new(0) };
    /// High-water mark of `T_LIVE`; scopes save/reset/restore it to
    /// measure their own peak (see [`AllocScope`]).
    static T_PEAK: Cell<i64> = const { Cell::new(0) };
}

fn shard() -> &'static Shard {
    let idx = MY_SHARD
        .try_with(|slot| {
            let cur = slot.get();
            if cur != usize::MAX {
                return cur;
            }
            // ORDERING: Relaxed — an allocation-free ticket counter;
            // only uniqueness-ish distribution matters, not ordering.
            let assigned = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            slot.set(assigned);
            assigned
        })
        // TLS is being torn down (allocations in thread-exit
        // destructors): fall back to shard 0 rather than panicking.
        .unwrap_or(0);
    &SHARD_TABLE[idx]
}

fn size_class(size: usize) -> usize {
    if size <= 1 {
        return 0;
    }
    // ceil(log2(size)) without overflow at usize::MAX.
    (usize::BITS as usize - (size - 1).leading_zeros() as usize).min(SIZE_CLASSES - 1)
}

fn record_alloc(size: usize) {
    let bytes = size as u64;
    let s = shard();
    // ORDERING: Relaxed — independent monotone statistics counters;
    // nothing is published through them.
    s.allocs.fetch_add(1, Ordering::Relaxed);
    // ORDERING: Relaxed — see above.
    s.alloc_bytes.fetch_add(bytes, Ordering::Relaxed);
    // ORDERING: Relaxed — see above.
    CLASS_TABLE[size_class(size)].fetch_add(1, Ordering::Relaxed);
    // ORDERING: Relaxed — the paired fetch_sub in `record_free` is
    // reachable only through the pointer this allocation returns, and
    // handing a pointer to another thread synchronizes; the gauge can
    // read transiently stale but never underflows.
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    // ORDERING: Relaxed — monotone high-water mark; racing maxes agree.
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
    let _ = T_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = T_ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes));
    let _ = T_LIVE.try_with(|c| {
        let live = c.get() + size as i64;
        c.set(live);
        let _ = T_PEAK.try_with(|p| {
            if live > p.get() {
                p.set(live);
            }
        });
    });
}

fn record_free(size: usize) {
    let bytes = size as u64;
    let s = shard();
    // ORDERING: Relaxed — independent monotone statistics counters.
    s.frees.fetch_add(1, Ordering::Relaxed);
    // ORDERING: Relaxed — see above.
    s.freed_bytes.fetch_add(bytes, Ordering::Relaxed);
    // ORDERING: Relaxed — see `record_alloc` for the pairing argument.
    LIVE_BYTES.fetch_sub(bytes, Ordering::Relaxed);
    let _ = T_FREES.try_with(|c| c.set(c.get() + 1));
    let _ = T_FREED_BYTES.try_with(|c| c.set(c.get() + bytes));
    let _ = T_LIVE.try_with(|c| c.set(c.get() - size as i64));
}

// ---------------------------------------------------------------------
// The allocator
// ---------------------------------------------------------------------

/// An instrumenting [`GlobalAlloc`] forwarding to [`System`]. Install
/// with `#[global_allocator]`; construction is `const` and free.
pub struct InstrumentedAlloc;

// SAFETY: every method forwards to `System` verbatim (same layout,
// same pointer), so the GlobalAlloc contract is inherited from the
// system allocator; the counting side effects touch only atomics and
// const-initialized TLS cells and never allocate, so the allocator
// does not re-enter itself.
unsafe impl GlobalAlloc for InstrumentedAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: caller upholds the GlobalAlloc contract for `layout`;
        // forwarded unchanged.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    // SAFETY: forwards to `System.alloc_zeroed` under the caller's
    // GlobalAlloc contract (see the impl-level justification).
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: caller upholds the GlobalAlloc contract for `layout`;
        // forwarded unchanged.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    // SAFETY: forwards to `System.dealloc` under the caller's
    // GlobalAlloc contract (see the impl-level justification).
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        record_free(layout.size());
        // SAFETY: caller guarantees `ptr` was allocated by this
        // allocator (hence by `System`) with this `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards to `System.realloc` under the caller's
    // GlobalAlloc contract (see the impl-level justification).
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: caller guarantees `ptr`/`layout` describe a live
        // System allocation and `new_size` is valid; forwarded as-is.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // Count as alloc(new) before free(old) so LIVE_BYTES never
            // transiently dips; PEAK may overshoot by the old size
            // during a realloc, which the gauge contract tolerates.
            record_alloc(new_size);
            record_free(layout.size());
        }
        new_ptr
    }
}

/// Is an [`InstrumentedAlloc`] installed as this binary's global
/// allocator? Probes with a real (black-boxed) heap allocation and
/// checks whether the thread-local counter moved.
pub fn installed() -> bool {
    let before = thread_stats().allocs;
    let probe = std::hint::black_box(Box::new(0xA5u8));
    drop(std::hint::black_box(probe));
    thread_stats().allocs != before
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// Process-wide allocator statistics (all zero unless installed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful allocations (allocs + zeroed allocs + the grow half
    /// of reallocs).
    pub allocs: u64,
    /// Deallocations (frees + the shrink half of reallocs).
    pub frees: u64,
    /// Total bytes ever requested from the allocator.
    pub alloc_bytes: u64,
    /// Total bytes ever returned to the allocator.
    pub freed_bytes: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start.
    pub peak_live_bytes: u64,
    /// `size_classes[k]` counts allocations of `(2^(k-1), 2^k]` bytes.
    pub size_classes: [u64; SIZE_CLASSES],
}

impl AllocStats {
    /// Inclusive upper bound (bytes) of size class `i` (`le` semantics
    /// for exposition formats), `None` for the tail class (`+Inf`).
    pub fn class_upper_bound(i: usize) -> Option<u64> {
        (i + 1 < SIZE_CLASSES).then(|| 1u64 << i)
    }
}

/// Process-wide totals. Sums the shards; a racing read is slightly
/// stale, never torn beyond per-counter staleness.
pub fn stats() -> AllocStats {
    let mut out = AllocStats::default();
    for s in &SHARD_TABLE {
        // ORDERING: Relaxed — monotone counters; staleness is fine.
        out.allocs += s.allocs.load(Ordering::Relaxed);
        // ORDERING: Relaxed — see above.
        out.frees += s.frees.load(Ordering::Relaxed);
        // ORDERING: Relaxed — see above.
        out.alloc_bytes += s.alloc_bytes.load(Ordering::Relaxed);
        // ORDERING: Relaxed — see above.
        out.freed_bytes += s.freed_bytes.load(Ordering::Relaxed);
    }
    // ORDERING: Relaxed — instantaneous gauge read.
    out.live_bytes = LIVE_BYTES.load(Ordering::Relaxed);
    // ORDERING: Relaxed — monotone high-water mark.
    out.peak_live_bytes = PEAK_LIVE_BYTES.load(Ordering::Relaxed);
    for (slot, c) in out.size_classes.iter_mut().zip(&CLASS_TABLE) {
        // ORDERING: Relaxed — monotone counters.
        *slot = c.load(Ordering::Relaxed);
    }
    out
}

/// Exact counters for the calling thread only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadAllocStats {
    pub allocs: u64,
    pub frees: u64,
    pub alloc_bytes: u64,
    pub freed_bytes: u64,
    /// Bytes this thread has allocated minus bytes it has freed.
    /// Signed: freeing memory allocated elsewhere drives it negative.
    pub live_bytes: i64,
}

/// This thread's exact counters (zero unless installed).
pub fn thread_stats() -> ThreadAllocStats {
    ThreadAllocStats {
        allocs: T_ALLOCS.try_with(Cell::get).unwrap_or(0),
        frees: T_FREES.try_with(Cell::get).unwrap_or(0),
        alloc_bytes: T_ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
        freed_bytes: T_FREED_BYTES.try_with(Cell::get).unwrap_or(0),
        live_bytes: T_LIVE.try_with(Cell::get).unwrap_or(0),
    }
}

// ---------------------------------------------------------------------
// Scoped attribution
// ---------------------------------------------------------------------

/// What happened on this thread between a scope's entry and now.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocDelta {
    pub allocs: u64,
    pub frees: u64,
    pub alloc_bytes: u64,
    pub freed_bytes: u64,
    /// Peak of (thread-live bytes − thread-live bytes at entry) within
    /// the scope: the extra memory the scope had live at its worst.
    pub peak_live_delta: u64,
}

/// RAII attribution scope over the calling thread's exact counters.
///
/// Created by [`alloc_scope!`]. On drop, if tracing is enabled, records
/// an `slcs-trace` instant event named after the scope carrying the
/// byte/alloc delta — nested inside whatever span is open, which is how
/// Chrome-trace dumps show bytes per phase. [`Self::delta`] exposes the
/// same numbers programmatically (used by `slcs bench-mem` and the
/// allocation-regression tests).
///
/// `!Send`: the counters it closes over belong to the creating thread.
pub struct AllocScope {
    entry: ThreadAllocStats,
    /// `T_PEAK` as of entry, restored on drop (scopes reset the
    /// thread-peak so each one measures its own high-water mark; the
    /// saved maximum keeps outer scopes' peaks correct).
    saved_peak: i64,
    sites: Option<(&'static trace::Site, &'static trace::Site, &'static trace::Site)>,
    _not_send: PhantomData<*const ()>,
}

impl AllocScope {
    /// Opens a scope. Prefer [`alloc_scope!`], which supplies the
    /// cached trace call sites; `sites` is `(name, "bytes", "allocs")`.
    pub fn enter(
        sites: Option<(&'static trace::Site, &'static trace::Site, &'static trace::Site)>,
    ) -> AllocScope {
        let entry = thread_stats();
        let saved_peak = T_PEAK.try_with(Cell::get).unwrap_or(0);
        // Reset the thread high-water mark to "now" so the scope
        // observes only its own peak.
        let _ = T_PEAK.try_with(|p| p.set(entry.live_bytes));
        AllocScope { entry, saved_peak, sites, _not_send: PhantomData }
    }

    /// The thread's allocation activity since entry.
    pub fn delta(&self) -> AllocDelta {
        let now = thread_stats();
        let peak = T_PEAK.try_with(Cell::get).unwrap_or(0);
        AllocDelta {
            allocs: now.allocs - self.entry.allocs,
            frees: now.frees - self.entry.frees,
            alloc_bytes: now.alloc_bytes - self.entry.alloc_bytes,
            freed_bytes: now.freed_bytes - self.entry.freed_bytes,
            peak_live_delta: (peak - self.entry.live_bytes).max(0) as u64,
        }
    }
}

impl Drop for AllocScope {
    fn drop(&mut self) {
        let delta = self.delta();
        // Restore the outer high-water mark (an inner peak is also an
        // outer peak, so take the max).
        let scope_peak = T_PEAK.try_with(Cell::get).unwrap_or(0);
        let restored = self.saved_peak.max(scope_peak);
        let _ = T_PEAK.try_with(|p| p.set(restored));
        if let Some((name, bytes_key, allocs_key)) = self.sites {
            if trace::recording() {
                trace::instant(
                    name,
                    [
                        Some((bytes_key, trace::FieldValue::U64(delta.alloc_bytes))),
                        Some((allocs_key, trace::FieldValue::U64(delta.allocs))),
                        None,
                    ],
                );
            }
        }
    }
}

/// Opens an [`AllocScope`] that attributes this thread's allocation
/// activity to `$name`: bind the result, and on drop an instant event
/// `[bytes=… allocs=…]` lands inside the enclosing trace span.
///
/// ```ignore
/// let _mem = slcs_alloc::alloc_scope!("engine.kernel_build.mem");
/// ```
#[macro_export]
macro_rules! alloc_scope {
    ($name:literal) => {{
        static SITE: $crate::trace::Site = $crate::trace::Site::new($name);
        static BYTES: $crate::trace::Site = $crate::trace::Site::new("bytes");
        static ALLOCS: $crate::trace::Site = $crate::trace::Site::new("allocs");
        $crate::AllocScope::enter(Some((&SITE, &BYTES, &ALLOCS)))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // Unit tests measure real allocator traffic, so the test binary
    // installs the instrumented allocator for itself.
    #[global_allocator]
    static TEST_ALLOC: InstrumentedAlloc = InstrumentedAlloc;

    #[test]
    fn installed_probe_sees_the_test_allocator() {
        assert!(installed());
    }

    #[test]
    fn counters_balance_over_an_alloc_free_cycle() {
        let scope = AllocScope::enter(None);
        {
            let v: Vec<u8> = std::hint::black_box(Vec::with_capacity(4096));
            drop(v);
        }
        let d = scope.delta();
        assert!(d.allocs >= 1, "vec allocation counted: {d:?}");
        assert_eq!(d.allocs, d.frees, "every alloc matched by a free: {d:?}");
        assert_eq!(d.alloc_bytes, d.freed_bytes, "bytes balance: {d:?}");
        assert!(d.alloc_bytes >= 4096, "at least the requested capacity: {d:?}");
    }

    #[test]
    fn global_stats_move_and_live_tracks_outstanding() {
        let before = stats();
        let held: Vec<u8> = std::hint::black_box(vec![7u8; 10_000]);
        let during = stats();
        assert!(during.allocs > before.allocs);
        assert!(during.alloc_bytes >= before.alloc_bytes + 10_000);
        assert!(during.peak_live_bytes > 0, "peak high-water mark moved");
        drop(std::hint::black_box(held));
        let after = stats();
        assert!(after.frees > before.frees);
    }

    #[test]
    fn scope_peak_sees_transient_high_water() {
        let scope = AllocScope::enter(None);
        {
            let big: Vec<u8> = std::hint::black_box(vec![1u8; 1 << 20]);
            drop(big);
        }
        let small: Vec<u8> = std::hint::black_box(vec![2u8; 64]);
        let d = scope.delta();
        assert!(
            d.peak_live_delta >= 1 << 20,
            "peak reflects the freed megabyte, not just the tail: {d:?}"
        );
        drop(small);
    }

    #[test]
    fn nested_scopes_restore_the_outer_peak() {
        let outer = AllocScope::enter(None);
        let early: Vec<u8> = std::hint::black_box(vec![3u8; 1 << 18]);
        drop(std::hint::black_box(early));
        {
            let inner = AllocScope::enter(None);
            let tiny: Vec<u8> = std::hint::black_box(vec![4u8; 128]);
            let di = inner.delta();
            assert!(di.peak_live_delta < 1 << 18, "inner scope measures only itself: {di:?}");
            drop(tiny);
        }
        let d = outer.delta();
        assert!(d.peak_live_delta >= 1 << 18, "outer peak survives the inner reset: {d:?}");
    }

    #[test]
    fn size_classes_bucket_by_power_of_two() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(3), 2);
        assert_eq!(size_class(4), 2);
        assert_eq!(size_class(5), 3);
        assert_eq!(size_class(1024), 10);
        assert_eq!(size_class(usize::MAX), SIZE_CLASSES - 1);
        for i in 0..SIZE_CLASSES {
            match AllocStats::class_upper_bound(i) {
                Some(b) => assert_eq!(size_class(b as usize), i, "bound of class {i}"),
                None => assert_eq!(i, SIZE_CLASSES - 1),
            }
        }
    }

    #[test]
    fn size_class_histogram_records_the_request() {
        let class = size_class(3000);
        let before = stats().size_classes[class];
        let v: Vec<u8> = std::hint::black_box(Vec::with_capacity(3000));
        let after = stats().size_classes[class];
        assert!(after > before, "3000-byte request lands in class {class}");
        drop(v);
    }

    #[test]
    fn concurrent_alloc_storm_balances() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 500;
        let before = stats();
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut local = (0u64, 0u64);
                    for i in 0..ROUNDS {
                        let scope = AllocScope::enter(None);
                        let v: Vec<u8> =
                            std::hint::black_box(Vec::with_capacity(64 + (t * 31 + i) % 1024));
                        drop(std::hint::black_box(v));
                        let d = scope.delta();
                        local.0 += d.allocs;
                        local.1 += d.alloc_bytes;
                    }
                    local
                })
            })
            .collect();
        let mut scoped = (0u64, 0u64);
        for h in handles {
            // PANIC: test-only join; a worker panic should fail the test.
            let (a, b) = h.join().expect("storm thread panicked");
            scoped.0 += a;
            scoped.1 += b;
        }
        let after = stats();
        assert!(scoped.0 >= (THREADS * ROUNDS) as u64, "each round allocates at least once");
        assert!(
            after.allocs - before.allocs >= scoped.0,
            "global counter saw every scoped allocation: global Δ {} < scoped {}",
            after.allocs - before.allocs,
            scoped.0
        );
        assert!(
            after.alloc_bytes - before.alloc_bytes >= scoped.1,
            "global bytes saw every scoped byte"
        );
        let balance = (after.allocs - before.allocs) as i64 - (after.frees - before.frees) as i64;
        assert!(balance.abs() < 10_000, "storm roughly balances allocs and frees: {balance}");
    }

    #[test]
    fn scope_drop_emits_a_trace_instant_inside_the_span() {
        let _guard = trace::test_support::hold();
        trace::enable_fresh();
        {
            let _span = trace::span!("alloc.test_phase");
            let _mem = alloc_scope!("alloc.test_phase.mem");
            let v: Vec<u8> = std::hint::black_box(vec![0u8; 2048]);
            drop(v);
        }
        trace::set_enabled(false);
        let t = trace::drain();
        let ev = t
            .events
            .iter()
            .find(|e| e.name == "alloc.test_phase.mem")
            .expect("scope instant recorded");
        assert_eq!(ev.kind, trace::Kind::Instant);
        let bytes =
            ev.fields.iter().find_map(|(k, v)| (*k == "bytes").then_some(*v)).expect("bytes field");
        assert!(matches!(bytes, trace::FieldOut::U64(b) if b >= 2048), "{bytes:?}");
    }
}
