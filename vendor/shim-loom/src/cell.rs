//! Tracked interior-mutability cells — the race detector's probes.
//!
//! [`UnsafeCell`] mirrors `loom::cell::UnsafeCell`: same `with` /
//! `with_mut` closure API, same semantics outside a model (a zero-cost
//! wrapper over `std::cell::UnsafeCell`). Inside a model execution,
//! every access is recorded with the accessing thread's vector clock
//! (see [`crate::clock`]), and two accesses to the same cell — at least
//! one of them a write — that no happens-before edge orders are
//! reported as a **data race** with a replayable schedule, exactly like
//! a deadlock or a failed assertion.
//!
//! Edges come only from the synchronization the memory model actually
//! grants: Acquire/Release/SeqCst atomics, `Mutex`, `Condvar`
//! notifications, and thread spawn/join. `Ordering::Relaxed`
//! deliberately creates **no** edge, so publishing a plain write behind
//! a Relaxed flag is reported even though the model executes
//! sequentially consistently — this is what makes ordering bugs the
//! token scheduler masks visible.
//!
//! Cell accesses are deliberately *not* schedule points: whether two
//! accesses race is a property of the happens-before order, not of the
//! schedule that interleaved them, so exploring extra interleavings
//! around plain memory accesses would grow the state space without
//! finding anything new. (Limitations: cells are identified by address,
//! so a cell dropped and another allocated at the same address within
//! one execution would share history — keep tracked cells alive for the
//! whole checked closure, which every harness in this workspace does.)

use std::panic::Location;

use crate::sched;

/// A tracked `std::cell::UnsafeCell`. Access goes through [`Self::with`]
/// (shared read) and [`Self::with_mut`] (exclusive write) so the model
/// can see — and order-check — every touch.
///
/// Like std's cell it is `!Sync`; types that share it across threads
/// assert `Sync` themselves and the model checker now audits that
/// assertion's happens-before story.
#[derive(Debug, Default)]
pub struct UnsafeCell<T: ?Sized> {
    inner: std::cell::UnsafeCell<T>,
}

impl<T> UnsafeCell<T> {
    pub const fn new(data: T) -> UnsafeCell<T> {
        UnsafeCell { inner: std::cell::UnsafeCell::new(data) }
    }

    /// Unwraps the value; `self` by value, so no tracking is needed.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    fn addr(&self) -> usize {
        self as *const UnsafeCell<T> as *const () as usize
    }

    /// A *read* access: records the access, then hands the closure a
    /// `*const T`. The closure must not write through the pointer (use
    /// [`Self::with_mut`]) and must not let it escape.
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some((sched, me)) = sched::current() {
            sched.cell_access(me, self.addr(), false, Location::caller());
        }
        f(self.inner.get())
    }

    /// A *write* access: records the access, then hands the closure a
    /// `*mut T`. The pointer must not escape the closure.
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some((sched, me)) = sched::current() {
            sched.cell_access(me, self.addr(), true, Location::caller());
        }
        f(self.inner.get())
    }

    /// Exclusive borrow — statically data-race-free, so untracked.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

/// A tracked `std::cell::Cell`-style helper for `Copy` values: `get` is
/// a tracked read, `set` a tracked write. Convenience over
/// [`UnsafeCell`] for plain flags/counters whose *protocol* (not the
/// cell) is supposed to prevent concurrent access.
#[derive(Debug, Default)]
pub struct Cell<T> {
    inner: UnsafeCell<T>,
}

impl<T: Copy> Cell<T> {
    pub const fn new(value: T) -> Cell<T> {
        Cell { inner: UnsafeCell::new(value) }
    }

    #[track_caller]
    pub fn get(&self) -> T {
        // SAFETY: the pointer is valid for the closure's duration and the
        // value is Copy; concurrent-access ordering is the model's job
        // (that is exactly what the tracking checks).
        self.inner.with(|p| unsafe { *p })
    }

    #[track_caller]
    pub fn set(&self, value: T) {
        // SAFETY: as in `get`; exclusivity of the write is the tracked
        // protocol property under audit, not a local invariant.
        self.inner.with_mut(|p| unsafe { *p = value })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}
