//! Vendored minimal loom-style concurrency model checker.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of [loom]'s idea the workspace needs: **instrumented
//! synchronization primitives** plus a **controllable scheduler** that
//! explores thread interleavings deterministically.
//!
//! [loom]: https://github.com/tokio-rs/loom
//!
//! # How it works
//!
//! [`model::check`] runs a closure repeatedly. Within each run its
//! threads are *serialized*: exactly one runs at a time, and every
//! operation on a [`sync`] primitive is a schedule point where the
//! token may move to another thread. The sequence of choices fully
//! determines an execution, so the driver can
//!
//! * enumerate all schedules by DFS, bounded by a *preemption budget*
//!   (involuntary switches per schedule — 2 catches most real races at
//!   a tiny fraction of the unbounded cost);
//! * sample schedules with a seeded PRNG ([`model::Strategy::Random`]) —
//!   reproducible and effective on models too big to exhaust, and cheap
//!   enough to run under plain `cargo test`;
//! * [`model::replay`] one exact schedule from a violation report, which
//!   is how found interleavings get pinned as regression tests.
//!
//! Violations — deadlocks (every thread blocked: the shape a *lost
//! wakeup* takes in a model), livelocks (step-limit), and panics such as
//! failed assertions or double-execution guards — abort the run with a
//! replayable schedule.
//!
//! # The two faces of the primitives
//!
//! Outside a model execution every type here behaves exactly like its
//! `std` counterpart — the instrumentation finds no scheduler and
//! forwards. That is what lets production code route its
//! synchronization through a facade unconditionally resolved at compile
//! time (see `vendor/rayon/src/sync.rs` and
//! `crates/engine/src/sync.rs`): built with `--cfg slcs_model_check`
//! the real pool/queue code becomes checkable, while a normal build is
//! byte-for-byte std.
//!
//! # Model, not reality
//!
//! The model *executes* sequentially consistently: `Ordering` arguments
//! never change which value an operation observes. They do, however,
//! drive the **data-race detector**: every [`cell::UnsafeCell`] access
//! is stamped with the accessing thread's vector clock ([`clock`]), and
//! happens-before edges come only from the synchronization the memory
//! model actually grants — Acquire/Release/SeqCst atomics, `Mutex`,
//! `Condvar`, spawn/join — while `Relaxed` creates *no* edge. A pair of
//! unordered conflicting accesses to a tracked cell fails the execution
//! with a replayable race report even though the SC execution computed
//! the "right" answer. Weak-memory bugs on *untracked* data remain out
//! of scope; those sites are covered by the `// ORDERING:` audit that
//! `cargo xtask lint` enforces (see `docs/SAFETY.md`).

#![deny(unsafe_op_in_unsafe_fn)]

mod sched;

pub mod cell;
pub mod clock;
pub mod model;
pub mod sync;
pub mod thread;

/// Instrumented `std::hint` subset.
pub mod hint {
    /// In a model execution, a schedule point that deprioritizes the
    /// spinning caller (so spin loops cannot starve the thread they
    /// wait on); otherwise `std::hint::spin_loop`.
    pub fn spin_loop() {
        if let Some((sched, me)) = crate::sched::current() {
            sched.schedule_point(me, crate::sched::Reason::Yield);
            return;
        }
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::{model, thread};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn primitives_work_without_a_scheduler() {
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        let m = Mutex::new(5);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 6);
        let h = thread::spawn(|| 7);
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn dfs_explores_both_orders_of_two_writers() {
        // Two threads racing one store each: DFS must see both final
        // values across schedules.
        let seen: Arc<std::sync::Mutex<std::collections::HashSet<usize>>> =
            Arc::new(std::sync::Mutex::new(std::collections::HashSet::new()));
        let seen2 = Arc::clone(&seen);
        let report = model::check(move || {
            let slot = Arc::new(AtomicUsize::new(0));
            let s1 = Arc::clone(&slot);
            let t = thread::spawn(move || s1.store(1, Ordering::SeqCst));
            slot.store(2, Ordering::SeqCst);
            t.join().unwrap();
            seen2.lock().unwrap().insert(slot.load(Ordering::SeqCst));
        });
        assert!(report.complete, "tiny model must be exhausted");
        assert!(report.schedules >= 2);
        let seen = seen.lock().unwrap();
        assert!(seen.contains(&1) && seen.contains(&2), "both orders explored: {seen:?}");
    }

    #[test]
    fn dfs_finds_a_seeded_atomicity_race() {
        // Classic lost-update: load, then store load+1 — not atomic.
        // DFS with one preemption must find the interleaving where both
        // threads read 0.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            model::check(|| {
                let c = Arc::new(AtomicUsize::new(0));
                let c1 = Arc::clone(&c);
                let t = thread::spawn(move || {
                    let v = c1.load(Ordering::SeqCst);
                    c1.store(v + 1, Ordering::SeqCst);
                });
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
                t.join().unwrap();
                assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
            });
        }));
        let msg = match outcome {
            Ok(_) => panic!("checker missed the seeded race"),
            Err(p) => *p.downcast::<String>().expect("violation message"),
        };
        assert!(msg.contains("lost update"), "violation names the assertion: {msg}");
        assert!(msg.contains("replay choices"), "violation is replayable: {msg}");
    }

    #[test]
    fn detects_a_lost_wakeup_as_deadlock() {
        // Flag set *before* wait re-checks under the lock ⇒ fine; this
        // buggy variant sets the flag without the lock and notifies
        // before the waiter parks ⇒ some schedule deadlocks.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            model::check(|| {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let flag = Arc::new(AtomicBool::new(false));
                let (pair2, flag2) = (Arc::clone(&pair), Arc::clone(&flag));
                let t = thread::spawn(move || {
                    flag2.store(true, Ordering::SeqCst); // BUG: not under the lock
                    pair2.1.notify_one();
                });
                // BUG: checks the flag outside the lock, then parks.
                if !flag.load(Ordering::SeqCst) {
                    let guard = pair.0.lock().unwrap();
                    let _guard = pair.1.wait(guard).unwrap();
                }
                t.join().unwrap();
            });
        }));
        let msg = match outcome {
            Ok(_) => panic!("checker missed the lost wakeup"),
            Err(p) => *p.downcast::<String>().expect("violation message"),
        };
        assert!(msg.contains("deadlock"), "lost wakeup surfaces as deadlock: {msg}");
    }

    #[test]
    fn mutex_makes_the_update_atomic() {
        let report = model::check(|| {
            let c = Arc::new(Mutex::new(0usize));
            let c1 = Arc::clone(&c);
            let t = thread::spawn(move || *c1.lock().unwrap() += 1);
            *c.lock().unwrap() += 1;
            t.join().unwrap();
            assert_eq!(*c.lock().unwrap(), 2);
        });
        assert!(report.complete);
    }

    #[test]
    fn condvar_handshake_is_clean_across_all_schedules() {
        let report = model::check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                *pair2.0.lock().unwrap() = true;
                pair2.1.notify_one();
            });
            let mut guard = pair.0.lock().unwrap();
            while !*guard {
                guard = pair.1.wait(guard).unwrap();
            }
            drop(guard);
            t.join().unwrap();
        });
        assert!(report.complete);
        assert!(report.schedules >= 2);
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let hits = Arc::new(std::sync::Mutex::new(Vec::new()));
            let hits2 = Arc::clone(&hits);
            model::Builder {
                strategy: model::Strategy::Random { seed, iterations: 20 },
                ..model::Builder::default()
            }
            .check(move || {
                let slot = Arc::new(AtomicUsize::new(0));
                let s1 = Arc::clone(&slot);
                let t = thread::spawn(move || s1.store(1, Ordering::SeqCst));
                slot.store(2, Ordering::SeqCst);
                t.join().unwrap();
                hits2.lock().unwrap().push(slot.load(Ordering::SeqCst));
            });
            Arc::try_unwrap(hits).unwrap().into_inner().unwrap()
        };
        assert_eq!(run(42), run(42), "same seed, same schedules");
        assert_eq!(run(42).len(), 20);
    }

    #[test]
    fn replay_pins_one_exact_schedule() {
        // Whatever the first DFS schedule does, replaying `[0,0,...]`
        // must do the same thing.
        let observed = Arc::new(std::sync::Mutex::new(Vec::new()));
        let obs2 = Arc::clone(&observed);
        model::replay(&[0; 16], move || {
            let slot = Arc::new(AtomicUsize::new(0));
            let s1 = Arc::clone(&slot);
            let t = thread::spawn(move || s1.store(1, Ordering::SeqCst));
            slot.store(2, Ordering::SeqCst);
            t.join().unwrap();
            obs2.lock().unwrap().push(slot.load(Ordering::SeqCst));
        });
        assert_eq!(observed.lock().unwrap().len(), 1);
    }

    #[test]
    fn timed_wait_cannot_deadlock() {
        // A waiter whose wakeup is genuinely missing still exits via the
        // timeout path — the model's version of the safety-net timeout.
        let report = model::check(|| {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let guard = pair.0.lock().unwrap();
            let (_guard, timeout) =
                pair.1.wait_timeout(guard, std::time::Duration::from_millis(1)).unwrap();
            assert!(timeout.timed_out(), "nobody notifies: only the timeout can fire");
        });
        assert!(report.complete);
    }
}
