//! Vector clocks — the partial order underneath the race detector.
//!
//! Each model thread carries a [`VClock`]; component `t` counts the
//! synchronization epochs of thread `t` that the owner has observed.
//! Happens-before is the pointwise order: an access stamped `(t, ts)`
//! happens-before the current thread iff the current thread's clock has
//! `get(t) >= ts` — i.e. some release/acquire (or lock, spawn, join,
//! notify) chain carried thread `t`'s epoch `ts` over. Two accesses
//! neither of which happens-before the other are *concurrent*, and a
//! concurrent non-atomic read/write pair is a data race (see
//! `crate::cell`).
//!
//! The type is public so the happens-before engine itself is unit
//! testable (`vendor/shim-loom/tests/hb.rs`), not just observable
//! through race reports.

/// A vector clock: one monotonic counter per model thread, sparse at the
/// tail (missing components read 0).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    slots: Vec<u64>,
}

impl VClock {
    pub fn new() -> VClock {
        VClock::default()
    }

    /// Thread `tid`'s component (0 if never observed).
    pub fn get(&self, tid: usize) -> u64 {
        self.slots.get(tid).copied().unwrap_or(0)
    }

    /// Sets thread `tid`'s component.
    pub fn set(&mut self, tid: usize, value: u64) {
        if self.slots.len() <= tid {
            self.slots.resize(tid + 1, 0);
        }
        self.slots[tid] = value;
    }

    /// Advances thread `tid`'s component by one — done by the *owner*
    /// after every operation that publishes its clock, so later local
    /// accesses are not mistaken for published ones.
    pub fn bump(&mut self, tid: usize) {
        let v = self.get(tid);
        self.set(tid, v + 1);
    }

    /// Pointwise maximum: after `a.join(&b)`, everything ordered before
    /// `b` is also ordered before `a`.
    pub fn join(&mut self, other: &VClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Pointwise `self ≤ other`: every event `self` has observed,
    /// `other` has observed too (happens-before-or-equal).
    pub fn le(&self, other: &VClock) -> bool {
        (0..self.slots.len().max(other.slots.len())).all(|t| self.get(t) <= other.get(t))
    }

    /// Neither clock observed the other: the two owners are concurrent.
    pub fn concurrent_with(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}
