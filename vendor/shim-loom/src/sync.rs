//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Outside a model execution every type behaves exactly like its std
//! counterpart (the instrumentation checks a thread-local and finds no
//! scheduler). Inside `model::check`, every operation is a schedule
//! point, so the checker can explore interleavings around it.

use crate::sched::{self, Reason};

pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use std::sync::Arc;

    use crate::sched::{self, Reason, Scheduler};

    /// Scheduler context of the calling model thread, after taking one
    /// schedule point; `None` outside a model execution.
    type Ctx = Option<(Arc<Scheduler>, usize)>;

    /// One schedule point, if the calling thread is under a scheduler.
    fn point() -> Ctx {
        if let Some((sched, me)) = sched::current() {
            sched.schedule_point(me, Reason::Op);
            return Some((sched, me));
        }
        None
    }

    fn is_acquire(order: Ordering) -> bool {
        // ORDERING: classification, not an access — these are the
        // orderings whose load side joins a release-sequence clock.
        matches!(order, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn is_release(order: Ordering) -> bool {
        // ORDERING: classification, not an access — these are the
        // orderings whose store side publishes the writer's clock.
        matches!(order, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// Happens-before effect of a plain load: an acquire-flavored one
    /// joins the atomic's release-sequence clock; Relaxed learns nothing.
    fn after_load(ctx: &Ctx, addr: usize, order: Ordering) {
        if let Some((sched, me)) = ctx {
            if is_acquire(order) {
                sched.sync_acquire(*me, addr);
            }
        }
    }

    /// Happens-before effect of a plain store: a release-flavored one
    /// starts a new release sequence carrying the writer's clock; a
    /// Relaxed store *breaks* any existing sequence (C++20), so later
    /// acquire loads find no edge — the rule that makes Relaxed-only
    /// publication a reportable race.
    fn after_store(ctx: &Ctx, addr: usize, order: Ordering) {
        if let Some((sched, me)) = ctx {
            if is_release(order) {
                sched.sync_release(*me, addr, false);
            } else {
                sched.sync_break(*me, addr);
            }
        }
    }

    /// Happens-before effect of a read-modify-write: the acquire side
    /// joins from the sequence, the release side joins *into* it (an RMW
    /// continues a release sequence rather than restarting it), and a
    /// fully Relaxed RMW leaves the sequence intact but contributes and
    /// learns nothing.
    fn after_rmw(ctx: &Ctx, addr: usize, order: Ordering) {
        if let Some((sched, me)) = ctx {
            if is_acquire(order) {
                sched.sync_acquire(*me, addr);
            }
            if is_release(order) {
                sched.sync_release(*me, addr, true);
            }
        }
    }

    macro_rules! atomic_int {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Instrumented atomic integer; orderings are accepted for
            /// API compatibility but the model executes sequentially
            /// consistently (see crate docs).
            #[derive(Default, Debug)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    Self { inner: <$std>::new(v) }
                }

                fn addr(&self) -> usize {
                    self as *const $name as *const () as usize
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    let ctx = point();
                    let v = self.inner.load(order);
                    after_load(&ctx, self.addr(), order);
                    v
                }

                pub fn store(&self, val: $prim, order: Ordering) {
                    let ctx = point();
                    self.inner.store(val, order);
                    after_store(&ctx, self.addr(), order);
                }

                pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                    let ctx = point();
                    let v = self.inner.swap(val, order);
                    after_rmw(&ctx, self.addr(), order);
                    v
                }

                pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    let ctx = point();
                    let v = self.inner.fetch_add(val, order);
                    after_rmw(&ctx, self.addr(), order);
                    v
                }

                pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                    let ctx = point();
                    let v = self.inner.fetch_sub(val, order);
                    after_rmw(&ctx, self.addr(), order);
                    v
                }

                pub fn fetch_or(&self, val: $prim, order: Ordering) -> $prim {
                    let ctx = point();
                    let v = self.inner.fetch_or(val, order);
                    after_rmw(&ctx, self.addr(), order);
                    v
                }

                pub fn fetch_and(&self, val: $prim, order: Ordering) -> $prim {
                    let ctx = point();
                    let v = self.inner.fetch_and(val, order);
                    after_rmw(&ctx, self.addr(), order);
                    v
                }

                pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                    let ctx = point();
                    let v = self.inner.fetch_max(val, order);
                    after_rmw(&ctx, self.addr(), order);
                    v
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    let ctx = point();
                    let r = self.inner.compare_exchange(current, new, success, failure);
                    // A successful CAS is an RMW at the success ordering;
                    // a failed one is just a load at the failure ordering.
                    match r {
                        Ok(_) => after_rmw(&ctx, self.addr(), success),
                        Err(_) => after_load(&ctx, self.addr(), failure),
                    }
                    r
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    // The model never fails spuriously: weak-CAS retry
                    // loops converge faster without losing interleavings
                    // (a genuine contention failure is still explored).
                    self.compare_exchange(current, new, success, failure)
                }

                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$prim, $prim>
                where
                    F: FnMut($prim) -> Option<$prim>,
                {
                    let ctx = point();
                    let r = self.inner.fetch_update(set_order, fetch_order, f);
                    match r {
                        Ok(_) => after_rmw(&ctx, self.addr(), set_order),
                        Err(_) => after_load(&ctx, self.addr(), fetch_order),
                    }
                    r
                }
            }
        };
    }

    atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    atomic_int!(AtomicU8, std::sync::atomic::AtomicU8, u8);

    /// Instrumented atomic boolean.
    #[derive(Default, Debug)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self { inner: std::sync::atomic::AtomicBool::new(v) }
        }

        fn addr(&self) -> usize {
            self as *const AtomicBool as *const () as usize
        }

        pub fn load(&self, order: Ordering) -> bool {
            let ctx = point();
            let v = self.inner.load(order);
            after_load(&ctx, self.addr(), order);
            v
        }

        pub fn store(&self, val: bool, order: Ordering) {
            let ctx = point();
            self.inner.store(val, order);
            after_store(&ctx, self.addr(), order);
        }

        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            let ctx = point();
            let v = self.inner.swap(val, order);
            after_rmw(&ctx, self.addr(), order);
            v
        }
    }
}

/// Instrumented mutex. The inner `std::sync::Mutex` provides storage and
/// real exclusion for the non-model path; under a scheduler, exclusion
/// is enforced at the model level (threads are serialized, and a model
/// acquire blocks through the scheduler), so the inner lock is always
/// uncontended when actually taken.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    mx: &'a Mutex<T>,
    /// `Some` for the guard's whole life; `Option` so `Condvar::wait`
    /// can release the std guard while keeping the model bookkeeping.
    std_guard: Option<std::sync::MutexGuard<'a, T>>,
}

pub type LockResult<G> = std::sync::LockResult<G>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const Mutex<T> as *const () as usize
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some((sched, me)) = sched::current() {
            sched.schedule_point(me, Reason::Op);
            sched.acquire(me, self.addr());
            // Serialized execution: never contended, never poisoned by a
            // model thread mid-section (panics unwind through Drop which
            // releases the model lock first).
            let std_guard = match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            return Ok(MutexGuard { mx: self, std_guard: Some(std_guard) });
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard { mx: self, std_guard: Some(g) }),
            Err(poisoned) => Err(std::sync::PoisonError::new(MutexGuard {
                mx: self,
                std_guard: Some(poisoned.into_inner()),
            })),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // PANIC: a live guard always holds the std guard; wait() takes it but also forgets the guard.
        self.std_guard.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // PANIC: a live guard always holds the std guard; wait() takes it but also forgets the guard.
        self.std_guard.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the std guard before the model release so no thread that
        // is granted the model lock can find the std lock held.
        self.std_guard = None;
        if let Some((sched, me)) = sched::current() {
            sched.release(me, self.mx.addr());
        }
    }
}

/// Result of [`Condvar::wait_timeout`]; mirrors std's shape (which has
/// no public constructor, hence this local type).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Instrumented condition variable. In the model, a plain `wait` parks
/// until a notify (lost wakeups become deadlocks the checker reports),
/// and `wait_timeout` additionally lets the scheduler fire the timeout
/// at any point — which doubles as the model of spurious wakeups.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    fn addr(&self) -> usize {
        self as *const Condvar as usize
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if let Some((sched, me)) = sched::current() {
            let mx = guard.mx;
            guard.std_guard = None; // release the std lock while parked
            let _notified = sched.cv_wait(me, self.addr(), mx.addr(), false);
            std::mem::forget(guard); // model lock already re-held by cv_wait
            let std_guard = match mx.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            return Ok(MutexGuard { mx, std_guard: Some(std_guard) });
        }
        let mx = guard.mx;
        // PANIC: a live guard always holds the std guard; this take is paired with mem::forget.
        let std_guard = guard.std_guard.take().expect("guard accessed after release");
        std::mem::forget(guard);
        match self.inner.wait(std_guard) {
            Ok(g) => Ok(MutexGuard { mx, std_guard: Some(g) }),
            Err(poisoned) => Err(std::sync::PoisonError::new(MutexGuard {
                mx,
                std_guard: Some(poisoned.into_inner()),
            })),
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if let Some((sched, me)) = sched::current() {
            let mx = guard.mx;
            guard.std_guard = None;
            let notified = sched.cv_wait(me, self.addr(), mx.addr(), true);
            std::mem::forget(guard);
            let std_guard = match mx.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            return Ok((
                MutexGuard { mx, std_guard: Some(std_guard) },
                WaitTimeoutResult { timed_out: !notified },
            ));
        }
        let mx = guard.mx;
        // PANIC: a live guard always holds the std guard; this take is paired with mem::forget.
        let std_guard = guard.std_guard.take().expect("guard accessed after release");
        std::mem::forget(guard);
        match self.inner.wait_timeout(std_guard, dur) {
            Ok((g, t)) => Ok((
                MutexGuard { mx, std_guard: Some(g) },
                WaitTimeoutResult { timed_out: t.timed_out() },
            )),
            Err(poisoned) => {
                let (g, t) = poisoned.into_inner();
                Err(std::sync::PoisonError::new((
                    MutexGuard { mx, std_guard: Some(g) },
                    WaitTimeoutResult { timed_out: t.timed_out() },
                )))
            }
        }
    }

    pub fn notify_one(&self) {
        if let Some((sched, me)) = sched::current() {
            sched.schedule_point(me, Reason::Op);
            sched.notify(me, self.addr(), false);
            return;
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some((sched, me)) = sched::current() {
            sched.schedule_point(me, Reason::Op);
            sched.notify(me, self.addr(), true);
            return;
        }
        self.inner.notify_all();
    }
}
