//! The execution scheduler behind the instrumented primitives.
//!
//! A model *execution* runs the checked closure on real OS threads, but
//! serializes them: exactly one model thread holds the token at a time,
//! and every instrumented operation is a *schedule point* where the
//! token may move. Which thread runs next is the only source of
//! nondeterminism, so an execution is fully described by its sequence of
//! choices — which is what makes exhaustive DFS, seeded random
//! exploration and exact replay possible.
//!
//! The memory model is sequential consistency: operations are atomic and
//! totally ordered by the schedule. Weak-ordering bugs are out of scope
//! (the `cargo xtask lint` ordering audit covers those sites); lost
//! wakeups, deadlocks, double-execution and protocol races are all
//! visible under SC interleavings.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::VClock;

/// Unwind payload used to tear model threads down once an execution has
/// failed; recognized (and swallowed) by the thread wrappers.
pub(crate) struct ModelAbort;

/// Why a thread cannot run right now.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    /// Ready to run (or currently running).
    Runnable,
    /// Waiting to acquire the mutex at this address.
    Lock {
        mutex: usize,
    },
    /// Parked on a condvar; `timed` waits may time out, so they stay
    /// schedulable (scheduling one = its timeout fires).
    CvWait {
        cv: usize,
        mutex: usize,
        timed: bool,
    },
    /// Waiting for another model thread to finish.
    Join {
        target: usize,
    },
    Finished,
}

/// Why the current thread reached a schedule point.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Reason {
    /// About to perform an atomic / lock / notify operation.
    Op,
    /// `thread::yield_now` / `hint::spin_loop`: "I cannot make progress
    /// alone" — the yielder is deprioritized so spin loops terminate
    /// under DFS instead of exploring unbounded self-schedules.
    Yield,
}

struct ThreadInfo {
    state: State,
    /// Set when a condvar wait was ended by a notify (vs a timeout).
    notified: bool,
    /// The thread's vector clock: what it has observed of every peer's
    /// synchronization history. Drives the data-race detector.
    clock: VClock,
}

/// One recorded tracked-cell access: who, at which of their epochs, and
/// where in the source.
#[derive(Clone, Copy)]
struct Access {
    tid: usize,
    ts: u64,
    loc: &'static Location<'static>,
}

/// Per-cell access history: the last write, plus every read since it
/// (one per thread — a newer read by the same thread supersedes).
#[derive(Default)]
struct CellState {
    write: Option<Access>,
    reads: Vec<Access>,
}

/// One recorded decision: `options[chosen]` ran next.
#[derive(Clone)]
pub(crate) struct Branch {
    /// Schedulable threads in DFS preference order, already truncated to
    /// the preemption budget.
    pub(crate) options: Vec<usize>,
    pub(crate) chosen: usize,
}

struct Inner {
    threads: Vec<ThreadInfo>,
    active: usize,
    /// Mutex address → holder (model-level lock state).
    locks: HashMap<usize, usize>,
    trace: Vec<Branch>,
    /// Choice indices forced for the trace prefix (DFS backtracking and
    /// `model::replay`).
    replay: Vec<usize>,
    preemptions: usize,
    steps: usize,
    /// Seeded xorshift state for random exploration; `None` = DFS-first.
    rng: Option<u64>,
    /// Atomic address → the clock its current release sequence carries.
    /// Absent = no release store since creation (or a Relaxed store
    /// broke the sequence), so an acquire load finds no edge.
    sync_clocks: HashMap<usize, VClock>,
    /// Mutex/lock address → the clock of its last releaser.
    lock_clocks: HashMap<usize, VClock>,
    /// Tracked-cell address → access history (see `CellState`).
    cells: HashMap<usize, CellState>,
    failure: Option<Failure>,
    handles: Vec<std::thread::JoinHandle<()>>,
    done: bool,
}

pub(crate) struct Failure {
    pub(crate) message: String,
}

pub(crate) struct ExecOutcome {
    pub(crate) trace: Vec<Branch>,
    pub(crate) failure: Option<Failure>,
}

pub(crate) struct Scheduler {
    inner: Mutex<Inner>,
    turn: Condvar,
    max_preemptions: usize,
    max_steps: usize,
    /// Clamp out-of-range forced choices instead of failing. True only
    /// for `model::replay`, whose vectors are often hand-written; DFS
    /// backtracking stays strict so a nondeterministic closure (whose
    /// recorded indices stop matching) is reported, not masked.
    lenient_replay: bool,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler and model-thread id of the calling thread, if it is
/// part of an active execution. `None` means "behave exactly like std".
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn install(sched: Option<(Arc<Scheduler>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = sched);
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Formats a panic payload for violation reports.
fn payload_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Scheduler {
    fn new(
        max_preemptions: usize,
        max_steps: usize,
        replay: Vec<usize>,
        rng_seed: Option<u64>,
        lenient_replay: bool,
    ) -> Scheduler {
        Scheduler {
            inner: Mutex::new(Inner {
                threads: Vec::new(),
                active: 0,
                locks: HashMap::new(),
                trace: Vec::new(),
                replay,
                preemptions: 0,
                steps: 0,
                rng: rng_seed,
                sync_clocks: HashMap::new(),
                lock_clocks: HashMap::new(),
                cells: HashMap::new(),
                failure: None,
                handles: Vec::new(),
                done: false,
            }),
            turn: Condvar::new(),
            max_preemptions,
            max_steps,
            lenient_replay,
        }
    }

    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            // A model thread can panic (that is how violations surface);
            // the scheduler state itself is only mutated under short
            // non-panicking sections, so the data is intact.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn schedulable(inner: &Inner, tid: usize) -> bool {
        match inner.threads[tid].state {
            State::Runnable => true,
            State::Lock { mutex } => !inner.locks.contains_key(&mutex),
            State::CvWait { timed, .. } => timed,
            State::Join { target } => inner.threads[target].state == State::Finished,
            State::Finished => false,
        }
    }

    fn fail(&self, inner: &mut Inner, message: String) {
        if inner.failure.is_none() {
            inner.failure = Some(Failure { message });
        }
        self.turn.notify_all();
    }

    /// Chooses the next thread and hands it the token. The caller's
    /// `state` must already say whether it can continue. Does not block.
    fn pick_next(&self, inner: &mut Inner, me: usize, reason: Reason) {
        if inner.failure.is_some() {
            return;
        }
        inner.steps += 1;
        if inner.steps > self.max_steps {
            self.fail(
                inner,
                format!("step limit ({}) exceeded — livelock or unbounded spin", self.max_steps),
            );
            return;
        }

        let me_runnable = inner.threads[me].state == State::Runnable;
        let me_continues = me_runnable && reason == Reason::Op;
        let me_yields = me_runnable && reason == Reason::Yield;

        // Preference order: continue `me` (free), runnable peers, the
        // yielder itself, then timed condvar waiters (scheduling one
        // fires its timeout — a rare event, charged like a preemption).
        let mut options: Vec<usize> = Vec::new();
        if me_continues {
            options.push(me);
        }
        let mut timed: Vec<usize> = Vec::new();
        for tid in 0..inner.threads.len() {
            if tid == me || !Self::schedulable(inner, tid) {
                continue;
            }
            if matches!(inner.threads[tid].state, State::CvWait { timed: true, .. }) {
                timed.push(tid);
            } else {
                options.push(tid);
            }
        }
        let peers = options.len() - usize::from(me_continues);
        if me_yields {
            options.push(me);
        }
        if !me_runnable && matches!(inner.threads[me].state, State::CvWait { timed: true, .. }) {
            timed.push(me);
        }
        // Options at index >= free_limit cost a preemption: switching
        // away from a runnable `me`, firing a timeout while plain
        // progress was possible — or re-running a *yielder* while a peer
        // is runnable. The last one is what bounds spin loops: a
        // `yield_now`/`spin_loop` caller declared it cannot progress
        // alone, so every consecutive self-continue it is granted anyway
        // is a stutter step charged to the budget, and once the budget
        // is spent the spinner is forced to let its peers run.
        let free_limit = if me_continues {
            1
        } else if me_yields && peers > 0 {
            options.len() - 1
        } else {
            options.len()
        };
        options.extend(timed);

        if options.is_empty() {
            let waiting: Vec<String> = inner
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.state != State::Finished)
                .map(|(i, t)| format!("t{i}={:?}", t.state))
                .collect();
            self.fail(inner, format!("deadlock: no schedulable thread [{}]", waiting.join(", ")));
            return;
        }

        let over_budget = inner.preemptions >= self.max_preemptions;
        if over_budget {
            options.truncate(free_limit.max(1));
        }

        let cursor = inner.trace.len();
        let chosen = if cursor < inner.replay.len() {
            let idx = inner.replay[cursor];
            if idx >= options.len() {
                if !self.lenient_replay {
                    self.fail(
                        inner,
                        format!(
                            "nondeterministic model: replay step {cursor} wants option {idx} of \
                             {} — the checked closure must behave identically for identical \
                             schedules",
                            options.len()
                        ),
                    );
                    return;
                }
                options.len() - 1
            } else {
                idx
            }
        } else if let Some(rng) = inner.rng.as_mut() {
            (xorshift(rng) % options.len() as u64) as usize
        } else {
            0
        };

        if chosen >= free_limit {
            inner.preemptions += 1;
        }
        let next = options[chosen];
        inner.trace.push(Branch { options, chosen });
        // Scheduling a timed waiter = its timeout fired: it proceeds to
        // reacquire the mutex, not to run user code directly.
        if let State::CvWait { mutex, timed: true, .. } = inner.threads[next].state {
            inner.threads[next].state = State::Lock { mutex };
        }
        inner.active = next;
        self.turn.notify_all();
    }

    /// Blocks the calling thread until it holds the token; unwinds with
    /// [`ModelAbort`] if the execution failed meanwhile.
    fn wait_for_token<'a>(
        &self,
        mut inner: MutexGuard<'a, Inner>,
        me: usize,
    ) -> MutexGuard<'a, Inner> {
        loop {
            if inner.failure.is_some() {
                drop(inner);
                std::panic::panic_any(ModelAbort);
            }
            if inner.active == me {
                return inner;
            }
            inner = match self.turn.wait(inner) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    // ---- operations called by the instrumented primitives ------------

    /// One schedule point: possibly hand the token elsewhere, then wait
    /// for it to come back.
    pub(crate) fn schedule_point(&self, me: usize, reason: Reason) {
        let mut inner = self.lock_inner();
        if inner.failure.is_some() {
            drop(inner);
            std::panic::panic_any(ModelAbort);
        }
        self.pick_next(&mut inner, me, reason);
        let _inner = self.wait_for_token(inner, me);
    }

    /// Acquires the model-level mutex at `addr`, blocking through the
    /// scheduler if held. The caller must have passed a schedule point.
    pub(crate) fn acquire(&self, me: usize, addr: usize) {
        let mut inner = self.lock_inner();
        loop {
            if inner.failure.is_some() {
                drop(inner);
                std::panic::panic_any(ModelAbort);
            }
            if let std::collections::hash_map::Entry::Vacant(e) = inner.locks.entry(addr) {
                e.insert(me);
                inner.threads[me].state = State::Runnable;
                // Lock edge: everything the previous holder did before
                // unlocking happened-before this critical section.
                if let Some(released) = inner.lock_clocks.get(&addr) {
                    let released = released.clone();
                    inner.threads[me].clock.join(&released);
                }
                return;
            }
            inner.threads[me].state = State::Lock { mutex: addr };
            self.pick_next(&mut inner, me, Reason::Op);
            inner = self.wait_for_token(inner, me);
        }
    }

    /// Releases the model-level mutex. Deliberately *not* a schedule
    /// point and never panics: it runs from guard `Drop`, possibly
    /// during an abort unwind.
    pub(crate) fn release(&self, me: usize, addr: usize) {
        let mut inner = self.lock_inner();
        inner.locks.remove(&addr);
        // Publish the holder's clock for the next acquirer, then bump so
        // post-release work is not mistaken for published work.
        let clock = inner.threads[me].clock.clone();
        inner.lock_clocks.insert(addr, clock);
        inner.threads[me].clock.bump(me);
    }

    /// Parks on the condvar at `cv`, releasing `mutex`; returns `true`
    /// if the wait ended by a notify (vs a timeout). Reacquires `mutex`
    /// before returning.
    pub(crate) fn cv_wait(&self, me: usize, cv: usize, mutex: usize, timed: bool) -> bool {
        let mut inner = self.lock_inner();
        if inner.failure.is_some() {
            drop(inner);
            std::panic::panic_any(ModelAbort);
        }
        inner.locks.remove(&mutex);
        inner.threads[me].notified = false;
        inner.threads[me].state = State::CvWait { cv, mutex, timed };
        self.pick_next(&mut inner, me, Reason::Op);
        inner = self.wait_for_token(inner, me);
        let notified = inner.threads[me].notified;
        drop(inner);
        // Woken (notified, or timeout fired): reacquire the mutex.
        self.acquire(me, mutex);
        notified
    }

    /// Wakes waiter(s) of the condvar at `cv`; they move on to
    /// reacquiring their mutex. FIFO order is approximated by thread id.
    pub(crate) fn notify(&self, me: usize, cv: usize, all: bool) {
        let mut inner = self.lock_inner();
        let notifier_clock = inner.threads[me].clock.clone();
        let mut woke_any = false;
        for tid in 0..inner.threads.len() {
            if let State::CvWait { cv: c, mutex, .. } = inner.threads[tid].state {
                if c == cv {
                    inner.threads[tid].state = State::Lock { mutex };
                    inner.threads[tid].notified = true;
                    // Notify edge: the notifier's history happens-before
                    // the woken waiter's continuation. (The waiter also
                    // re-acquires the mutex, but the direct edge keeps
                    // the model faithful even for lock-free payloads.)
                    inner.threads[tid].clock.join(&notifier_clock);
                    woke_any = true;
                    if !all {
                        break;
                    }
                }
            }
        }
        if woke_any {
            inner.threads[me].clock.bump(me);
        }
    }

    /// Registers a new model thread (Runnable); returns its id. `parent`
    /// is the spawning model thread (None for the root): spawn is a
    /// happens-before edge, so the child inherits the parent's clock.
    pub(crate) fn register_thread(&self, parent: Option<usize>) -> usize {
        let mut inner = self.lock_inner();
        let tid = inner.threads.len();
        let mut clock = match parent {
            Some(p) => {
                let c = inner.threads[p].clock.clone();
                // The spawn itself is a publication by the parent.
                inner.threads[p].clock.bump(p);
                c
            }
            None => VClock::new(),
        };
        clock.bump(tid);
        inner.threads.push(ThreadInfo { state: State::Runnable, notified: false, clock });
        tid
    }

    pub(crate) fn add_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock_inner().handles.push(h);
    }

    /// Blocks until `target` finishes.
    pub(crate) fn join(&self, me: usize, target: usize) {
        let mut inner = self.lock_inner();
        loop {
            if inner.failure.is_some() {
                drop(inner);
                std::panic::panic_any(ModelAbort);
            }
            if inner.threads[target].state == State::Finished {
                // Join edge: everything the joined thread ever did
                // happens-before the joiner's continuation.
                let target_clock = inner.threads[target].clock.clone();
                inner.threads[me].clock.join(&target_clock);
                return;
            }
            inner.threads[me].state = State::Join { target };
            self.pick_next(&mut inner, me, Reason::Op);
            inner = self.wait_for_token(inner, me);
            inner.threads[me].state = State::Runnable;
        }
    }

    // ---- happens-before bookkeeping (race detector) -------------------

    /// An acquire-flavored load (or RMW/CAS acquire side) of the atomic
    /// at `addr`: joins whatever clock its release sequence carries.
    pub(crate) fn sync_acquire(&self, me: usize, addr: usize) {
        let mut inner = self.lock_inner();
        if let Some(sync) = inner.sync_clocks.get(&addr) {
            let sync = sync.clone();
            inner.threads[me].clock.join(&sync);
        }
    }

    /// A release-flavored store (or the release side of an RMW) to the
    /// atomic at `addr`. A plain store *replaces* the sync clock (it
    /// starts a new release sequence); an RMW *joins* into it (C++20: an
    /// RMW continues the sequence regardless of where it reads from).
    pub(crate) fn sync_release(&self, me: usize, addr: usize, rmw: bool) {
        let mut inner = self.lock_inner();
        let clock = inner.threads[me].clock.clone();
        match inner.sync_clocks.entry(addr) {
            std::collections::hash_map::Entry::Occupied(mut e) if rmw => e.get_mut().join(&clock),
            std::collections::hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() = clock;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(clock);
            }
        }
        inner.threads[me].clock.bump(me);
    }

    /// A `Relaxed` plain store to `addr`: publishes nothing, and — per
    /// C++20 release sequences — *ends* any release sequence headed
    /// there, so a later acquire load finds no edge at all. This is the
    /// rule that turns "Relaxed-published" protocols into reported races.
    pub(crate) fn sync_break(&self, _me: usize, addr: usize) {
        let mut inner = self.lock_inner();
        inner.sync_clocks.remove(&addr);
    }

    /// Records a tracked-cell access and checks it for data races against
    /// the cell's history. A race — two accesses, at least one a write,
    /// with no happens-before edge between them — fails the execution
    /// like a deadlock would, with both source locations in the report.
    pub(crate) fn cell_access(
        &self,
        me: usize,
        addr: usize,
        is_write: bool,
        loc: &'static Location<'static>,
    ) {
        let mut inner = self.lock_inner();
        if inner.failure.is_some() {
            drop(inner);
            std::panic::panic_any(ModelAbort);
        }
        let my_clock = inner.threads[me].clock.clone();
        let kind = if is_write { "write" } else { "read" };
        // An earlier access by `prior.tid` at their epoch `prior.ts` is
        // ordered before this access iff some synchronization chain
        // carried that epoch into `me`'s clock.
        let races_with = |prior: &Access| prior.tid != me && my_clock.get(prior.tid) < prior.ts;
        let conflict = {
            let cell = inner.cells.entry(addr).or_default();
            let mut found: Option<(Access, &'static str)> = None;
            if let Some(w) = cell.write {
                if races_with(&w) {
                    found = Some((w, "write"));
                }
            }
            if found.is_none() && is_write {
                if let Some(r) = cell.reads.iter().find(|r| races_with(r)) {
                    found = Some((*r, "read"));
                }
            }
            if found.is_none() {
                let ts = my_clock.get(me);
                let access = Access { tid: me, ts, loc };
                if is_write {
                    cell.write = Some(access);
                    cell.reads.clear();
                } else {
                    cell.reads.retain(|r| r.tid != me);
                    cell.reads.push(access);
                }
            }
            found
        };
        if let Some((prior, prior_kind)) = conflict {
            self.fail(
                &mut inner,
                format!(
                    "data race on tracked cell: {kind} by thread {me} at {loc} is concurrent \
                     with {prior_kind} by thread {} at {} — no happens-before edge orders them \
                     (only Acquire/Release/SeqCst atomics, Mutex, Condvar and spawn/join create \
                     edges; Relaxed does not)",
                    prior.tid, prior.loc
                ),
            );
            drop(inner);
            std::panic::panic_any(ModelAbort);
        }
    }

    /// Marks `me` finished and passes the token on (or completes the
    /// execution). `panic_message` carries a non-abort user panic.
    pub(crate) fn finish(&self, me: usize, panic_message: Option<String>) {
        let mut inner = self.lock_inner();
        inner.threads[me].state = State::Finished;
        if let Some(msg) = panic_message {
            self.fail(&mut inner, format!("model thread {me} panicked: {msg}"));
        }
        if inner.threads.iter().all(|t| t.state == State::Finished) {
            inner.done = true;
            self.turn.notify_all();
            return;
        }
        if inner.failure.is_some() {
            self.turn.notify_all();
            return;
        }
        self.pick_next(&mut inner, me, Reason::Op);
    }
}

/// Shared slot the spawned model thread deposits its outcome into.
pub(crate) type ResultSlot<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

/// Spawns a model thread running `f`, registered with the scheduler of
/// the calling model thread. Used by `thread::spawn` and the driver.
pub(crate) fn spawn_model_thread<T, F>(
    sched: &Arc<Scheduler>,
    parent: Option<usize>,
    f: F,
) -> (usize, ResultSlot<T>, std::thread::JoinHandle<()>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = sched.register_thread(parent);
    let slot: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let sched2 = Arc::clone(sched);
    let handle = std::thread::Builder::new()
        .name(format!("shim-loom-{tid}"))
        .spawn(move || {
            install(Some((Arc::clone(&sched2), tid)));
            // Wait for the first token grant before touching user code.
            {
                let inner = sched2.lock_inner();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    drop(sched2.wait_for_token(inner, tid));
                }));
                if outcome.is_err() {
                    // Aborted before ever running.
                    sched2.finish(tid, None);
                    install(None);
                    return;
                }
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let panic_message = match &outcome {
                Ok(_) => None,
                Err(p) if p.is::<ModelAbort>() => None,
                Err(p) => Some(payload_text(p.as_ref())),
            };
            *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
            sched2.finish(tid, panic_message);
            install(None);
        })
        // PANIC: failing to spawn a model thread aborts the checker run; nothing to recover.
        .expect("cannot spawn model thread");
    (tid, slot, handle)
}

/// Runs one execution of `f` under a fresh scheduler and returns the
/// explored trace plus any violation.
pub(crate) fn run_execution(
    max_preemptions: usize,
    max_steps: usize,
    replay: Vec<usize>,
    rng_seed: Option<u64>,
    lenient_replay: bool,
    f: Arc<dyn Fn() + Send + Sync>,
) -> ExecOutcome {
    let sched =
        Arc::new(Scheduler::new(max_preemptions, max_steps, replay, rng_seed, lenient_replay));
    let (_tid, _slot, root) = spawn_model_thread(&sched, None, move || f());
    // Wait for every model thread (root + anything it spawned) to
    // finish; on failure the wait loops unwind the stragglers.
    let handles = {
        let mut inner = sched.lock_inner();
        while !inner.done {
            inner = match sched.turn.wait(inner) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        std::mem::take(&mut inner.handles)
    };
    let _ = root.join();
    for h in handles {
        let _ = h.join();
    }
    let mut inner = sched.lock_inner();
    ExecOutcome { trace: std::mem::take(&mut inner.trace), failure: inner.failure.take() }
}
