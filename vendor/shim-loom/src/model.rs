//! The exploration drivers: exhaustive DFS, seeded random, and replay.

use std::sync::Arc;

use crate::sched::{run_execution, Branch};

/// How to explore the schedule space.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Exhaustive depth-first search over all schedules within the
    /// preemption bound. Complete (up to the bound) on small models.
    Dfs,
    /// `iterations` executions with uniformly random choices from a
    /// seeded PRNG — reproducible, and effective on models too large to
    /// exhaust.
    Random { seed: u64, iterations: usize },
}

/// Exploration configuration. `Default` is DFS with preemption bound 2 —
/// the bound the CI step uses.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Voluntary-switch points are always explored; this bounds how many
    /// *involuntary* switches (preempting a runnable thread, or firing a
    /// wait timeout early) one schedule may contain.
    pub max_preemptions: usize,
    /// Abort exploration after this many executions even if DFS has not
    /// exhausted the space (CI time cap).
    pub max_schedules: usize,
    /// Per-execution schedule-point budget; exceeding it is reported as
    /// a livelock.
    pub max_steps: usize,
    pub strategy: Strategy,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_preemptions: 2,
            max_schedules: 200_000,
            max_steps: 20_000,
            strategy: Strategy::Dfs,
        }
    }
}

/// Outcome of a completed (violation-free) exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions actually run.
    pub schedules: usize,
    /// DFS exhausted every schedule within the bounds (always `false`
    /// for random exploration).
    pub complete: bool,
}

fn fail(schedules: usize, message: &str, trace: &[Branch]) -> ! {
    let choices: Vec<usize> = trace.iter().map(|b| b.chosen).collect();
    let threads: Vec<usize> = trace.iter().map(|b| b.options[b.chosen]).collect();
    panic!(
        "model checker violation (execution #{schedules}): {message}\n\
         replay choices: {choices:?}\n\
         thread schedule: {threads:?}\n\
         reproduce with shim_loom::model::replay(&{choices:?}, …)"
    );
}

impl Builder {
    /// Explores `f` under this configuration. Panics with a replayable
    /// schedule on the first violation (deadlock, livelock, or a panic
    /// inside `f`, e.g. a failed assertion); returns a [`Report`]
    /// otherwise.
    ///
    /// `f` runs once per schedule and must be deterministic apart from
    /// the interleaving: create all shared state inside the closure.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        match self.strategy {
            Strategy::Random { seed, iterations } => {
                let iterations = iterations.min(self.max_schedules);
                for i in 0..iterations {
                    // Distinct, deterministic stream per execution.
                    let mixed = (seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
                    let out = run_execution(
                        self.max_preemptions,
                        self.max_steps,
                        Vec::new(),
                        Some(mixed),
                        false,
                        Arc::clone(&f),
                    );
                    if let Some(failure) = out.failure {
                        fail(i + 1, &failure.message, &out.trace);
                    }
                }
                Report { schedules: iterations, complete: false }
            }
            Strategy::Dfs => {
                let mut replay: Vec<usize> = Vec::new();
                let mut schedules = 0usize;
                loop {
                    let out = run_execution(
                        self.max_preemptions,
                        self.max_steps,
                        replay.clone(),
                        None,
                        false,
                        Arc::clone(&f),
                    );
                    schedules += 1;
                    if let Some(failure) = out.failure {
                        fail(schedules, &failure.message, &out.trace);
                    }
                    if schedules >= self.max_schedules {
                        return Report { schedules, complete: false };
                    }
                    // Backtrack to the deepest branch with an untried
                    // option; exploration is complete when none remains.
                    let mut trace = out.trace;
                    let next = loop {
                        match trace.pop() {
                            None => break None,
                            Some(b) if b.chosen + 1 < b.options.len() => break Some(b.chosen + 1),
                            Some(_) => {}
                        }
                    };
                    match next {
                        None => return Report { schedules, complete: true },
                        Some(bump) => {
                            replay = trace.iter().map(|b| b.chosen).collect();
                            replay.push(bump);
                        }
                    }
                }
            }
        }
    }
}

/// Exhaustive DFS with the default bounds ([`Builder::default`]).
pub fn check<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}

/// Runs exactly one execution, forcing the choice indices a violation
/// report printed; choices beyond the slice fall back to "first option",
/// and choices wider than a point's actual option list clamp to its last
/// option (so hand-written vectors are usable, not just recorded ones).
/// Panics if the forced schedule still violates — which is the point:
/// a fixed bug's pinned schedule must pass forever after.
pub fn replay<F>(choices: &[usize], f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let builder = Builder::default();
    let out = run_execution(
        // Replay must not re-truncate options below what the recorded
        // trace saw, so give it slack over the default bound.
        usize::MAX,
        builder.max_steps,
        choices.to_vec(),
        None,
        true,
        Arc::new(f),
    );
    if let Some(failure) = out.failure {
        fail(1, &failure.message, &out.trace);
    }
}
