//! Instrumented `std::thread` subset: `spawn`, `Builder`, `yield_now`.

use std::sync::{Arc, Mutex};

use crate::sched::{self, Reason};

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    imp: HandleImp<T>,
}

enum HandleImp<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        sched: Arc<crate::sched::Scheduler>,
        me: usize,
        tid: usize,
        slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result (`Err` is
    /// the thread's panic payload, as with std).
    pub fn join(self) -> std::thread::Result<T> {
        match self.imp {
            HandleImp::Std(h) => h.join(),
            HandleImp::Model { sched, me, tid, slot } => {
                sched.join(me, tid);
                let taken = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
                // PANIC: finish() runs after the outcome is stored, and join() waits for finish().
                taken.expect("model thread finished without storing a result")
            }
        }
    }
}

/// Mirrors `std::thread::Builder` (the name is kept for diagnostics in
/// the std path and ignored in the model path).
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Builder {
        Builder::default()
    }

    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if let Some((sched, me)) = sched::current() {
            let (tid, slot, handle) = sched::spawn_model_thread(&sched, Some(me), f);
            sched.add_handle(handle);
            // The new thread is schedulable from here on; branch so the
            // checker can run it immediately or keep going here.
            sched.schedule_point(me, Reason::Op);
            return Ok(JoinHandle { imp: HandleImp::Model { sched, me, tid, slot } });
        }
        let mut b = std::thread::Builder::new();
        if let Some(name) = self.name {
            b = b.name(name);
        }
        b.spawn(f).map(|h| JoinHandle { imp: HandleImp::Std(h) })
    }
}

/// Spawns a thread; in a model execution it becomes a model thread under
/// the same scheduler.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    // PANIC: mirrors std::thread::spawn, which also aborts on OS thread exhaustion.
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Schedule point that deprioritizes the caller ("I cannot progress
/// alone"); plain `std::thread::yield_now` outside a model.
pub fn yield_now() {
    if let Some((sched, me)) = sched::current() {
        sched.schedule_point(me, Reason::Yield);
        return;
    }
    std::thread::yield_now();
}
