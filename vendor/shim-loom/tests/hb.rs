//! Unit tests for the happens-before engine itself: vector-clock
//! algebra, the (store ordering × load ordering) edge matrix, and
//! release-sequence continuation/breaking — so detector regressions show
//! up here, not as mysterious harness flakes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use shim_loom::cell::UnsafeCell;
use shim_loom::clock::VClock;
use shim_loom::sync::atomic::{AtomicUsize, Ordering};
use shim_loom::sync::Mutex;
use shim_loom::{model, thread};

/// Test-side stand-in for a structure that shares a tracked cell across
/// threads: like `std::cell::UnsafeCell`, the shim cell is `!Sync`, and
/// the sharing type asserts `Sync` itself.
struct Shared<T>(UnsafeCell<T>);

// SAFETY: the whole point of these tests — cross-thread access ordering
// is checked by the model's race detector, not by the type system.
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    fn new(v: T) -> Shared<T> {
        Shared(UnsafeCell::new(v))
    }
}

impl<T> std::ops::Deref for Shared<T> {
    type Target = UnsafeCell<T>;

    fn deref(&self) -> &UnsafeCell<T> {
        &self.0
    }
}

// ---- vector-clock algebra ---------------------------------------------

#[test]
fn clock_components_default_to_zero_and_set_sparsely() {
    let mut c = VClock::new();
    assert_eq!(c.get(0), 0);
    assert_eq!(c.get(17), 0);
    c.set(3, 9);
    assert_eq!(c.get(3), 9);
    assert_eq!(c.get(2), 0, "setting one component must not invent others");
}

#[test]
fn clock_bump_is_per_component_monotonic() {
    let mut c = VClock::new();
    c.bump(1);
    c.bump(1);
    c.bump(4);
    assert_eq!(c.get(1), 2);
    assert_eq!(c.get(4), 1);
    assert_eq!(c.get(0), 0);
}

#[test]
fn clock_join_is_pointwise_max() {
    let mut a = VClock::new();
    a.set(0, 3);
    a.set(1, 1);
    let mut b = VClock::new();
    b.set(1, 5);
    b.set(2, 2);
    a.join(&b);
    assert_eq!((a.get(0), a.get(1), a.get(2)), (3, 5, 2));
    // Join is idempotent.
    let snapshot = a.clone();
    a.join(&b);
    assert_eq!(a, snapshot);
}

#[test]
fn clock_le_and_concurrency() {
    let mut a = VClock::new();
    a.set(0, 1);
    let mut b = VClock::new();
    b.set(0, 2);
    b.set(1, 1);
    assert!(a.le(&b), "a's every component is <= b's");
    assert!(!b.le(&a));
    assert!(!a.concurrent_with(&b), "ordered clocks are not concurrent");

    let mut c = VClock::new();
    c.set(1, 7);
    assert!(a.concurrent_with(&c), "disjoint histories are concurrent");
    assert!(c.concurrent_with(&a));

    let empty = VClock::new();
    assert!(empty.le(&a), "the empty clock precedes everything");
    assert!(empty.le(&empty));
}

// ---- the (store, load) edge matrix ------------------------------------

/// Runs the canonical message-passing shape — writer: plain write, then
/// `flag.store(1, store_order)`; reader: `if flag.load(load_order) == 1`
/// then plain read — and says whether the detector reported a race.
fn message_passing_races(store_order: Ordering, load_order: Ordering) -> bool {
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        model::check(move || {
            let cell = Arc::new(Shared::new(0u32));
            let flag = Arc::new(AtomicUsize::new(0));
            let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
            let t = thread::spawn(move || {
                c2.with_mut(|p| unsafe { *p = 42 });
                f2.store(1, store_order);
            });
            if flag.load(load_order) == 1 {
                let v = cell.with(|p| unsafe { *p });
                assert_eq!(v, 42, "SC execution always sees the value");
            }
            t.join().unwrap();
        });
    }));
    match outcome {
        Ok(_) => false,
        Err(p) => {
            let msg = *p.downcast::<String>().expect("violation message");
            assert!(msg.contains("data race"), "only race reports expected here: {msg}");
            true
        }
    }
}

#[test]
fn edge_matrix_release_acquire_pairs_are_clean() {
    // Edge iff the store is release-flavored AND the load acquire-flavored.
    for store in [Ordering::Release, Ordering::SeqCst] {
        for load in [Ordering::Acquire, Ordering::SeqCst] {
            assert!(
                !message_passing_races(store, load),
                "{store:?} store → {load:?} load must create an edge"
            );
        }
    }
}

#[test]
fn edge_matrix_relaxed_on_either_side_races() {
    let racy_pairs = [
        (Ordering::Relaxed, Ordering::Relaxed),
        (Ordering::Relaxed, Ordering::Acquire),
        (Ordering::Relaxed, Ordering::SeqCst),
        (Ordering::Release, Ordering::Relaxed),
        (Ordering::SeqCst, Ordering::Relaxed),
    ];
    for (store, load) in racy_pairs {
        assert!(
            message_passing_races(store, load),
            "{store:?} store → {load:?} load must NOT create an edge"
        );
    }
}

// ---- release sequences -------------------------------------------------

#[test]
fn relaxed_rmw_continues_the_release_sequence() {
    // Writer: write cell, Release-store 1, then Relaxed fetch_add — per
    // C++20 an RMW continues the sequence, so an acquire load reading 2
    // still synchronizes with the release store.
    let report = model::check(|| {
        let cell = Arc::new(Shared::new(0u32));
        let flag = Arc::new(AtomicUsize::new(0));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p = 7 });
            f2.store(1, Ordering::Release);
            f2.fetch_add(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 2 {
            assert_eq!(cell.with(|p| unsafe { *p }), 7);
        }
        t.join().unwrap();
    });
    assert!(report.complete, "race-free model must be exhausted");
}

#[test]
fn relaxed_plain_store_breaks_the_release_sequence() {
    // Same shape, but the second write is a plain Relaxed *store*: C++20
    // ended same-thread continuation, so the acquire load that reads 2
    // gets no edge and the cell read races.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        model::check(|| {
            let cell = Arc::new(Shared::new(0u32));
            let flag = Arc::new(AtomicUsize::new(0));
            let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
            let t = thread::spawn(move || {
                c2.with_mut(|p| unsafe { *p = 7 });
                f2.store(1, Ordering::Release);
                f2.store(2, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) == 2 {
                let _ = cell.with(|p| unsafe { *p });
            }
            t.join().unwrap();
        });
    }));
    let msg = match outcome {
        Ok(_) => panic!("broken release sequence must race"),
        Err(p) => *p.downcast::<String>().expect("violation message"),
    };
    assert!(msg.contains("data race"), "expected a race report: {msg}");
}

#[test]
fn release_rmw_joins_into_the_sequence() {
    // Two writers each publish their own cell with a release-flavored
    // RMW on the same atomic; a reader that acquires after both sees
    // edges from both (the sequence *accumulates* RMW clocks).
    let report = model::check(|| {
        let a = Arc::new(Shared::new(0u32));
        let b = Arc::new(Shared::new(0u32));
        let flag = Arc::new(AtomicUsize::new(0));
        let (a2, f2) = (Arc::clone(&a), Arc::clone(&flag));
        let (b3, f3) = (Arc::clone(&b), Arc::clone(&flag));
        let t1 = thread::spawn(move || {
            a2.with_mut(|p| unsafe { *p = 1 });
            f2.fetch_add(1, Ordering::AcqRel);
        });
        let t2 = thread::spawn(move || {
            b3.with_mut(|p| unsafe { *p = 2 });
            f3.fetch_add(1, Ordering::AcqRel);
        });
        if flag.load(Ordering::Acquire) == 2 {
            assert_eq!(a.with(|p| unsafe { *p }), 1);
            assert_eq!(b.with(|p| unsafe { *p }), 2);
        }
        t1.join().unwrap();
        t2.join().unwrap();
    });
    assert!(report.complete);
}

// ---- edges from the non-atomic primitives ------------------------------

#[test]
fn mutex_critical_sections_order_cell_accesses() {
    let report = model::check(|| {
        let cell = Arc::new(Shared::new(0u32));
        let lock = Arc::new(Mutex::new(()));
        let (c2, l2) = (Arc::clone(&cell), Arc::clone(&lock));
        let t = thread::spawn(move || {
            let _g = l2.lock().unwrap();
            c2.with_mut(|p| unsafe { *p += 1 });
        });
        {
            let _g = lock.lock().unwrap();
            cell.with_mut(|p| unsafe { *p += 1 });
        }
        t.join().unwrap();
        assert_eq!(cell.with(|p| unsafe { *p }), 2);
    });
    assert!(report.complete);
}

#[test]
fn spawn_and_join_are_edges() {
    // Parent writes before spawn (child reads: ordered) and reads after
    // join (child wrote: ordered) — no atomics involved at all.
    let report = model::check(|| {
        let cell = Arc::new(Shared::new(0u32));
        cell.with_mut(|p| unsafe { *p = 1 });
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p += 10 });
        });
        t.join().unwrap();
        assert_eq!(cell.with(|p| unsafe { *p }), 11);
    });
    assert!(report.complete);
}

#[test]
fn unjoined_sibling_access_races() {
    // Control for the test above: the parent reads while the child may
    // still be writing — spawn alone orders only the prefix.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        model::check(|| {
            let cell = Arc::new(Shared::new(0u32));
            let c2 = Arc::clone(&cell);
            let t = thread::spawn(move || {
                c2.with_mut(|p| unsafe { *p = 5 });
            });
            let _ = cell.with(|p| unsafe { *p });
            t.join().unwrap();
        });
    }));
    let msg = match outcome {
        Ok(_) => panic!("read concurrent with child's write must race"),
        Err(p) => *p.downcast::<String>().expect("violation message"),
    };
    assert!(msg.contains("data race"), "expected a race report: {msg}");
}
