//! The planted-race canary: the detector's own regression test.
//!
//! A deliberately racy counter — a non-atomic increment "published" with
//! a Relaxed-only flag — must be reported *deterministically* (same
//! report text on every run, because DFS order is deterministic), and
//! the choice vector in the report must reproduce the race under
//! `model::replay`. If any of this stops holding, the race detector —
//! not the code under test — has regressed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use shim_loom::cell::Cell;
use shim_loom::sync::atomic::{AtomicUsize, Ordering};
use shim_loom::{model, thread};

/// The canary: increments a tracked non-atomic counter and raises a
/// Relaxed flag. Readers who trust the flag read the counter with no
/// happens-before edge — the textbook bug the detector exists for.
struct RacyCounter {
    count: Cell<u64>,
    published: AtomicUsize,
}

// SAFETY: deliberately unsound sharing — the "protocol" (the Relaxed
// flag) does not actually order the cell accesses, and proving the model
// checker reports exactly that is this file's purpose.
unsafe impl Sync for RacyCounter {}

impl RacyCounter {
    fn new() -> RacyCounter {
        RacyCounter { count: Cell::new(0), published: AtomicUsize::new(0) }
    }

    fn publish_increment(&self) {
        self.count.set(self.count.get() + 1);
        // BUG (intentional): Relaxed creates no happens-before edge, so
        // the non-atomic write above is not actually published.
        self.published.store(1, Ordering::Relaxed);
    }

    fn read_if_published(&self) -> Option<u64> {
        if self.published.load(Ordering::Acquire) == 1 {
            return Some(self.count.get());
        }
        None
    }
}

fn run_canary() -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| {
        model::check(|| {
            let c = Arc::new(RacyCounter::new());
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || c2.publish_increment());
            let _ = c.read_if_published();
            t.join().unwrap();
        });
    }))
    .map(|_| ())
    .map_err(|p| *p.downcast::<String>().expect("violation message"))
}

/// Pulls the `replay choices: [..]` vector out of a violation report.
fn extract_choices(report: &str) -> Vec<usize> {
    let start = report.find("replay choices: [").expect("report carries a choice vector")
        + "replay choices: [".len();
    let end = start + report[start..].find(']').expect("choice vector is closed");
    report[start..end]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("choice indices are integers"))
        .collect()
}

#[test]
fn canary_race_is_detected() {
    let msg = run_canary().expect_err("the planted race must be found");
    assert!(msg.contains("data race"), "report names the violation class: {msg}");
    assert!(msg.contains("no happens-before edge"), "report explains the cause: {msg}");
    assert!(msg.contains("races.rs"), "report points into this file: {msg}");
    assert!(msg.contains("replay choices"), "report is replayable: {msg}");
}

#[test]
fn canary_detection_is_deterministic() {
    // DFS explores schedules in a fixed order, so the *first* racy
    // schedule — and with it the whole report — is identical run to run.
    let first = run_canary().expect_err("the planted race must be found");
    let second = run_canary().expect_err("the planted race must be found");
    assert_eq!(first, second, "identical report on every run");
}

#[test]
fn canary_replay_reproduces_the_race() {
    let msg = run_canary().expect_err("the planted race must be found");
    let choices = extract_choices(&msg);
    let replayed = catch_unwind(AssertUnwindSafe(move || {
        model::replay(&choices, || {
            let c = Arc::new(RacyCounter::new());
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || c2.publish_increment());
            let _ = c.read_if_published();
            t.join().unwrap();
        });
    }));
    let replay_msg = match replayed {
        Ok(_) => panic!("replaying the recorded schedule must reproduce the race"),
        Err(p) => *p.downcast::<String>().expect("violation message"),
    };
    assert!(replay_msg.contains("data race"), "replay reproduces the same class: {replay_msg}");
}

#[test]
fn fixed_canary_is_race_free() {
    // The one-word fix — Release publication — must silence the
    // detector across every schedule, proving it reports the *ordering*,
    // not the mere existence of a non-atomic cell.
    struct FixedCounter {
        count: Cell<u64>,
        published: AtomicUsize,
    }
    // SAFETY: count is written before the Release store and read only
    // after an Acquire load observes it — the edge the racy canary lacks.
    unsafe impl Sync for FixedCounter {}

    let report = model::check(|| {
        let c = Arc::new(FixedCounter { count: Cell::new(0), published: AtomicUsize::new(0) });
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.count.set(c2.count.get() + 1);
            c2.published.store(1, Ordering::Release);
        });
        if c.published.load(Ordering::Acquire) == 1 {
            assert_eq!(c.count.get(), 1);
        }
        t.join().unwrap();
    });
    assert!(report.complete, "fixed canary must be exhaustively clean");
}
