//! Property-based tests (proptest) over the whole suite: the algebraic
//! laws of braid multiplication, the semantics of semi-local kernels, and
//! the equivalence of every LCS implementation on arbitrary inputs.

use proptest::prelude::*;

use semilocal_suite::apps::ApproxMatcher;
use semilocal_suite::baselines::{cipr_lcs, hyyro_lcs, prefix_rowmajor};
use semilocal_suite::bitpar::{bit_lcs_alphabet, bit_lcs_new2};
use semilocal_suite::braid::{
    parallel_steady_ant, steady_ant, steady_ant_combined, steady_ant_precalc,
    steady_ant_precalc_capped,
};
use semilocal_suite::perm::monge::distance_product_reference;
use semilocal_suite::perm::{DominanceTable, MergeSortTree, Permutation};
use semilocal_suite::semilocal::reference::BruteHMatrix;
use semilocal_suite::semilocal::simd::antidiag_combing_simd;
use semilocal_suite::semilocal::{
    antidiag_combing_branchless, hybrid_combing, iterative_combing, load_balanced_combing,
    recursive_combing, EditDistances,
};

fn perm_of(n: usize) -> impl Strategy<Value = Permutation> {
    Just(n).prop_perturb(move |n, mut rng| {
        let mut forward: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            forward.swap(i, j);
        }
        Permutation::from_forward(forward).unwrap()
    })
}

fn arb_perm(max: usize) -> impl Strategy<Value = Permutation> {
    (1..=max).prop_flat_map(perm_of)
}

fn two_perms(max: usize) -> impl Strategy<Value = (Permutation, Permutation)> {
    (1..=max).prop_flat_map(|n| (perm_of(n), perm_of(n)))
}

fn three_perms(max: usize) -> impl Strategy<Value = (Permutation, Permutation, Permutation)> {
    (1..=max).prop_flat_map(|n| (perm_of(n), perm_of(n), perm_of(n)))
}

fn arb_string(max_len: usize, sigma: u8) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0..sigma, 0..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- braid multiplication laws ---------------------------------

    #[test]
    fn steady_ant_equals_definition((p, q) in two_perms(48)) {
        let want = distance_product_reference(&p, &q);
        prop_assert_eq!(steady_ant(&p, &q), want);
    }

    #[test]
    fn all_multiplier_variants_agree((p, q) in two_perms(64)) {
        let r = steady_ant(&p, &q);
        prop_assert_eq!(steady_ant_precalc(&p, &q), r.clone());
        prop_assert_eq!(steady_ant_combined(&p, &q), r.clone());
        prop_assert_eq!(parallel_steady_ant(&p, &q, 3), r);
    }

    #[test]
    fn precalc_cutoff_never_changes_the_product(
        (p, q) in two_perms(48), cutoff in 1usize..=5
    ) {
        prop_assert_eq!(
            steady_ant_precalc_capped(&p, &q, cutoff),
            steady_ant(&p, &q)
        );
    }

    #[test]
    fn demazure_product_is_associative((p, q, r) in three_perms(32)) {
        let left = steady_ant(&steady_ant(&p, &q), &r);
        let right = steady_ant(&p, &steady_ant(&q, &r));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn identity_is_a_unit(p in arb_perm(64)) {
        let id = Permutation::identity(p.len());
        prop_assert_eq!(steady_ant(&p, &id), p.clone());
        prop_assert_eq!(steady_ant(&id, &p), p);
    }

    #[test]
    fn demazure_product_is_idempotent_on_reversal(n in 1usize..64) {
        // the reversal is the absorbing "everything crossed" element
        let w0 = Permutation::reversal(n);
        prop_assert_eq!(steady_ant(&w0, &w0), w0.clone());
        // and absorbs any factor on either side
        let mut rng = semilocal_suite::datagen::seeded_rng(n as u64);
        let p = Permutation::random(n, &mut rng);
        prop_assert_eq!(steady_ant(&p, &w0), w0.clone());
        prop_assert_eq!(steady_ant(&w0, &p), w0);
    }

    // --- permutation substrate --------------------------------------

    #[test]
    fn merge_sort_tree_equals_scans(p in arb_perm(48)) {
        let t = MergeSortTree::new(&p);
        let n = p.len();
        for i in (0..=n).step_by(1 + n / 7) {
            for j in (0..=n).step_by(1 + n / 5) {
                prop_assert_eq!(t.dominance_sum(i, j), p.dominance_sum_scan(i, j));
            }
        }
    }

    #[test]
    fn dominance_table_roundtrips(p in arb_perm(48)) {
        prop_assert_eq!(DominanceTable::new(&p).recover(), p);
    }

    // --- semi-local kernels ------------------------------------------

    #[test]
    fn kernel_h_matrix_equals_brute_force(
        a in arb_string(10, 3), b in arb_string(10, 3)
    ) {
        let brute = BruteHMatrix::new(&a, &b);
        let scores = iterative_combing(&a, &b).index();
        let size = a.len() + b.len();
        for i in 0..=size {
            for j in 0..=size {
                prop_assert_eq!(scores.h(i, j), brute.get(i, j), "H[{}, {}]", i, j);
            }
        }
    }

    #[test]
    fn all_combers_agree(a in arb_string(40, 4), b in arb_string(40, 4)) {
        let reference = iterative_combing(&a, &b);
        prop_assert_eq!(&recursive_combing(&a, &b), &reference);
        prop_assert_eq!(&antidiag_combing_branchless(&a, &b), &reference);
        prop_assert_eq!(&load_balanced_combing(&a, &b), &reference);
        prop_assert_eq!(&hybrid_combing(&a, &b, 16), &reference);
    }

    #[test]
    fn string_substring_queries_equal_window_dp(
        a in arb_string(16, 3), b in arb_string(16, 3)
    ) {
        let scores = iterative_combing(&a, &b).index();
        for i in 0..=b.len() {
            for j in i..=b.len() {
                prop_assert_eq!(
                    scores.string_substring(i, j),
                    prefix_rowmajor(&a, &b[i..j])
                );
            }
        }
    }

    #[test]
    fn flip_theorem(a in arb_string(24, 3), b in arb_string(24, 3)) {
        prop_assert_eq!(
            iterative_combing(&a, &b).flip(),
            iterative_combing(&b, &a)
        );
    }

    #[test]
    fn kernel_lcs_bounds(a in arb_string(32, 2), b in arb_string(32, 2)) {
        let scores = iterative_combing(&a, &b).index();
        let lcs = scores.lcs();
        prop_assert!(lcs <= a.len().min(b.len()));
        // monotone in window inclusion
        if !b.is_empty() {
            prop_assert!(scores.string_substring(0, b.len() - 1) <= lcs + 1);
            prop_assert!(scores.string_substring(1, b.len()) <= lcs + 1);
        }
    }

    #[test]
    fn windows_linear_equals_pointwise(
        a in arb_string(24, 3), b in arb_string(24, 3), wsel in 0.0f64..1.0
    ) {
        prop_assume!(!b.is_empty());
        let w = 1 + ((b.len() - 1) as f64 * wsel) as usize;
        let scores = iterative_combing(&a, &b).index();
        prop_assert_eq!(scores.windows_linear(w), scores.windows(w));
    }

    #[test]
    fn h_row_equals_pointwise(a in arb_string(16, 3), b in arb_string(16, 3)) {
        let scores = iterative_combing(&a, &b).index();
        let size = a.len() + b.len();
        for i in (0..=size).step_by(1 + size / 5) {
            let row = scores.h_row(i);
            for (j, &v) in row.iter().enumerate() {
                prop_assert_eq!(v, scores.h(i, j));
            }
        }
    }

    #[test]
    fn simd_combing_equals_scalar(
        a in proptest::collection::vec(0u32..4, 1..128),
        b in proptest::collection::vec(0u32..4, 1..128),
    ) {
        prop_assert_eq!(antidiag_combing_simd(&a, &b), iterative_combing(&a, &b));
    }

    #[test]
    fn edit_distance_triangle_inequality_on_windows(
        a in arb_string(12, 3), b in arb_string(20, 3)
    ) {
        prop_assume!(!b.is_empty());
        let d = EditDistances::new(&a, &b);
        // windows differ by one extension ⇒ distances differ by ≤ 1
        for j in 1..=b.len() {
            for i in 0..j {
                let here = d.distance(i, j) as i64;
                if j > i + 1 {
                    prop_assert!((here - d.distance(i, j - 1) as i64).abs() <= 1);
                    prop_assert!((here - d.distance(i + 1, j) as i64).abs() <= 1);
                }
            }
        }
    }

    #[test]
    fn minimal_windows_contain_the_pattern(
        a in arb_string(6, 2), b in arb_string(24, 2)
    ) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let m = ApproxMatcher::new(&a, &b);
        for occ in m.minimal_containing_windows() {
            prop_assert_eq!(occ.score, a.len());
            prop_assert_eq!(prefix_rowmajor(&a, &b[occ.start..occ.end]), a.len());
            // minimality in both directions
            if occ.end - occ.start > 1 {
                prop_assert!(
                    prefix_rowmajor(&a, &b[occ.start + 1..occ.end]) < a.len()
                );
                prop_assert!(
                    prefix_rowmajor(&a, &b[occ.start..occ.end - 1]) < a.len()
                );
            }
        }
    }

    // --- LCS implementation equivalence -------------------------------

    #[test]
    fn bit_parallel_equals_dp(a in arb_string(200, 2), b in arb_string(200, 2)) {
        let want = prefix_rowmajor(&a, &b);
        prop_assert_eq!(bit_lcs_new2(&a, &b), want);
        prop_assert_eq!(cipr_lcs(&a, &b), want);
        prop_assert_eq!(hyyro_lcs(&a, &b), want);
    }

    #[test]
    fn alphabet_extension_equals_dp(
        a in arb_string(120, 26), b in arb_string(120, 26)
    ) {
        prop_assert_eq!(bit_lcs_alphabet(&a, &b), prefix_rowmajor(&a, &b));
    }

    #[test]
    fn lcs_is_padding_invariant(
        a in arb_string(60, 2), b in arb_string(60, 2), pad in 1usize..70
    ) {
        // appending mutually non-matching symbols never changes the LCS
        // (the guarantee the bit-parallel padding relies on)
        let mut ax = a.clone();
        ax.extend(std::iter::repeat_n(7u8, pad));
        let mut bx = b.clone();
        bx.extend(std::iter::repeat_n(9u8, pad));
        prop_assert_eq!(
            prefix_rowmajor(&ax, &bx),
            prefix_rowmajor(&a, &b)
        );
        prop_assert_eq!(bit_lcs_alphabet(&ax, &bx), prefix_rowmajor(&a, &b));
    }
}
