//! Concurrency soak test for the comparison engine: many submitter
//! threads, mixed workloads over a shared pool of string pairs, every
//! answer checked bit-for-bit against ground truth computed once up
//! front with `iterative_combing` / `EditDistances`. Also exercises the
//! engine's two load-control behaviours on purpose: cache hits (more
//! requests than distinct pairs) and queue backpressure (a deliberately
//! tiny queue behind a slow request).

use std::sync::Arc;

use semilocal_suite::datagen::{seeded_rng, uniform_string};
use semilocal_suite::engine::{CompareRequest, Engine, EngineConfig, Operation, Payload, Submit};
use semilocal_suite::semilocal::{iterative_combing, EditDistances};

const PAIRS: usize = 6;
const LEN: usize = 120;
const WINDOW: usize = 48;
const SUBMITTERS: usize = 8;
const REQUESTS_EACH: usize = 24;

struct GroundTruth {
    lcs: usize,
    windows: Vec<usize>,
    edit_global: usize,
    edit_best: (usize, usize, usize),
}

fn expected_payload(truth: &GroundTruth, op: &Operation) -> Payload {
    match *op {
        Operation::Lcs => Payload::Score(truth.lcs),
        Operation::Windows { .. } => {
            let best = truth
                .windows
                .iter()
                .enumerate()
                .max_by(|(i, a), (j, b)| a.cmp(b).then(j.cmp(i)))
                .map(|(i, &s)| (i, s))
                .unwrap();
            Payload::Windows { scores: truth.windows.clone(), best }
        }
        Operation::Edit { w } => {
            Payload::Edit { global: truth.edit_global, best: w.map(|_| truth.edit_best) }
        }
        Operation::EditBounded { k } => Payload::EditBounded {
            distance: (truth.edit_global <= k).then_some(truth.edit_global),
            k,
        },
    }
}

#[test]
fn soak_concurrent_submitters_get_bit_identical_answers() {
    type Pair = (Arc<[u8]>, Arc<[u8]>);
    let mut rng = seeded_rng(7);
    let pool: Vec<Pair> = (0..PAIRS)
        .map(|_| (uniform_string(&mut rng, LEN, 4).into(), uniform_string(&mut rng, LEN, 4).into()))
        .collect();
    let truths: Vec<GroundTruth> = pool
        .iter()
        .map(|(a, b)| {
            let scores = iterative_combing(&a[..], &b[..]).index();
            let edit = EditDistances::new(&a[..], &b[..]);
            GroundTruth {
                lcs: scores.lcs(),
                windows: scores.windows_linear(WINDOW),
                edit_global: edit.global(),
                edit_best: edit.best_window(WINDOW),
            }
        })
        .collect();

    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 4,
        queue_capacity: 16,
        cache_capacity: 32,
        batch_limit: 8,
        threads_per_request: 1,
        ..EngineConfig::default()
    }));

    std::thread::scope(|scope| {
        for t in 0..SUBMITTERS {
            let engine = engine.clone();
            let pool = &pool;
            let truths = &truths;
            scope.spawn(move || {
                // Cheap deterministic per-thread schedule.
                let mut state = 0x9E37_79B9u64.wrapping_mul(t as u64 + 1);
                for _ in 0..REQUESTS_EACH {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let pair = (state >> 33) as usize % PAIRS;
                    let op = match (state >> 16) % 3 {
                        0 => Operation::Lcs,
                        1 => Operation::Windows { w: WINDOW },
                        _ => Operation::Edit { w: Some(WINDOW) },
                    };
                    let (a, b) = &pool[pair];
                    let req = CompareRequest::new(a.clone(), b.clone(), op.clone());
                    let ticket = loop {
                        match engine.submit(req.clone()) {
                            Submit::Accepted(ticket) => break ticket,
                            Submit::QueueFull => std::thread::yield_now(),
                            Submit::Invalid(why) => panic!("invalid request: {why}"),
                        }
                    };
                    let outcome = ticket.wait().expect("request served");
                    assert_eq!(
                        outcome.payload,
                        expected_payload(&truths[pair], &op),
                        "thread {t}: wrong answer for pair {pair} op {op:?}"
                    );
                }
            });
        }
    });

    let stats = engine.stats();
    let total = (SUBMITTERS * REQUESTS_EACH) as u64;
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total);
    // Far more requests than distinct (pair, index-kind) combinations,
    // and the cache is big enough to hold them all: hits dominate.
    assert!(
        stats.cache_hits > 0,
        "expected cache hits over {PAIRS} pairs x {total} requests: {stats}"
    );
    // One miss per (pair, index family) plus at most workers-1 extra
    // per key from concurrent first-touch races.
    assert!(stats.cache_misses as usize <= 4 * 2 * PAIRS, "{stats}");
    // The queue was actually exercised (depth gauge moved off zero).
    assert!(stats.max_queue_depth >= 1, "{stats}");
    assert_eq!(stats.queue_depth, 0, "drained at the end: {stats}");
    assert!(stats.wait_micros.count() == total && stats.service_micros.count() == total);
}

#[test]
fn backpressure_is_observable_under_a_tiny_queue() {
    // One worker pinned down by a slow request + a capacity-1 queue:
    // the next submissions must bounce with QueueFull, visibly.
    let engine = Engine::new(EngineConfig {
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 4,
        batch_limit: 1,
        threads_per_request: 1,
        ..EngineConfig::default()
    });
    let mut rng = seeded_rng(11);
    let big: Arc<[u8]> = uniform_string(&mut rng, 2500, 4).into();
    let slow = CompareRequest::new(big.clone(), big.clone(), Operation::Windows { w: 500 });

    let mut tickets = Vec::new();
    let mut rejections = 0u64;
    // Keep offering work; with the worker busy combing a 2500x2500 grid
    // the 1-slot queue must overflow at least once.
    for _ in 0..200 {
        match engine.submit(slow.clone()) {
            Submit::Accepted(t) => tickets.push(t),
            Submit::QueueFull => rejections += 1,
            Submit::Invalid(why) => panic!("invalid request: {why}"),
        }
        if rejections >= 3 && tickets.len() >= 2 {
            break;
        }
    }
    assert!(rejections > 0, "queue of capacity 1 never reported QueueFull");
    for t in tickets {
        t.wait().expect("accepted requests still complete");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.rejected_queue_full, rejections);
    assert!(stats.max_queue_depth >= 1);
    assert!(stats.cache_hits >= 1, "identical slow requests share one kernel: {stats}");
}

#[test]
fn tickets_can_be_polled_with_timeout() {
    let engine = Engine::with_defaults();
    let req = CompareRequest::new(&b"polling"[..], &b"pattern"[..], Operation::Lcs);
    let Submit::Accepted(ticket) = engine.submit(req) else { panic!("accepted") };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if let Some(result) = ticket.wait_timeout(std::time::Duration::from_millis(5)) {
            let outcome = result.expect("served");
            assert!(matches!(outcome.payload, Payload::Score(_)));
            break;
        }
        assert!(std::time::Instant::now() < deadline, "request never completed");
    }
}
