//! Seeded-schedule regression tests for the concurrency protocols the
//! scheduler is built on, runnable under plain `cargo test`.
//!
//! The full harnesses in `vendor/rayon/tests/model.rs` and
//! `crates/engine/src/queue.rs` explore the *real* pool/team/queue code,
//! but need the `--cfg slcs_model_check` build (`cargo xtask
//! model-check`). This file keeps a model-checking safety net in the
//! default test run: it models the same three protocols — `join`'s
//! publish/help job slot, the team's sense-reversing barrier, and the
//! queue's bounded full/drain handshake — directly on the shim-loom
//! primitives, sweeps each with a seeded random scheduler (deterministic
//! per seed), and pins a handful of exact schedules with
//! `model::replay` so the interesting interleavings are rechecked on
//! every run, forever.

use std::collections::VecDeque;
use std::sync::Arc;

use shim_loom::model::{self, Builder, Strategy};
use shim_loom::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use shim_loom::sync::{Condvar, Mutex};
use shim_loom::thread;

fn random(seed: u64, iterations: usize) -> Builder {
    Builder { strategy: Strategy::Random { seed, iterations }, ..Builder::default() }
}

// ---------------------------------------------------------------------
// Pool join: the PENDING → RUNNING → DONE job slot, publisher helping
// ---------------------------------------------------------------------

const PENDING: u8 = 0;
const RUNNING: u8 = 1;
const DONE: u8 = 2;

/// The job-slot state machine from `vendor/rayon/src/pool.rs`, modeled
/// with a `Mutex<Option<…>>` payload instead of the raw cells: a
/// publisher and a worker race to claim the slot; the claim CAS must
/// admit exactly one executor, and the publisher's help loop must always
/// observe DONE.
fn pool_join_protocol() {
    let state = Arc::new(AtomicU8::new(PENDING));
    let result: Arc<Mutex<Option<i32>>> = Arc::new(Mutex::new(None));
    let runs = Arc::new(AtomicUsize::new(0));

    let claim = |state: &AtomicU8, result: &Mutex<Option<i32>>, runs: &AtomicUsize| {
        if state.compare_exchange(PENDING, RUNNING, Ordering::Acquire, Ordering::Relaxed).is_ok() {
            runs.fetch_add(1, Ordering::Relaxed);
            *result.lock().unwrap() = Some(42);
            state.store(DONE, Ordering::Release);
        }
    };

    let (s2, r2, n2) = (Arc::clone(&state), Arc::clone(&result), Arc::clone(&runs));
    let worker = thread::spawn(move || claim(&s2, &r2, &n2));
    // The publisher "helps": tries to claim the job itself, then spins
    // (yielding) until whoever won has driven the slot to DONE.
    claim(&state, &result, &runs);
    while state.load(Ordering::Acquire) != DONE {
        thread::yield_now();
    }
    assert_eq!(runs.load(Ordering::Relaxed), 1, "exactly one claimant may run the job");
    assert_eq!(result.lock().unwrap().take(), Some(42), "DONE implies the result is visible");
    worker.join().unwrap();
}

#[test]
fn pool_join_protocol_random_sweep() {
    random(0xA11CE, 400).check(pool_join_protocol);
}

#[test]
fn pool_join_protocol_pinned_schedules() {
    // Schedule 0: first option at every point — the publisher claims and
    // completes the job before the worker ever runs.
    model::replay(&[0; 24], pool_join_protocol);
    // Forcing the second option early hands the slot to the worker at
    // the first opportunity: the publisher's CAS must lose cleanly and
    // its help loop must still see DONE. This is the minimal "stolen
    // job" interleaving.
    model::replay(&[1, 1, 1, 1], pool_join_protocol);
    model::replay(&[0, 1, 0, 1, 0, 1], pool_join_protocol);
}

// ---------------------------------------------------------------------
// Team barrier: sense reversal via a generation counter
// ---------------------------------------------------------------------

/// The sense-reversing core of `vendor/rayon/src/team.rs::barrier`:
/// `arrived` counts the generation's arrivals, the last arriver resets
/// it and bumps `generation`, everyone else spins on the generation
/// changing. Nobody may pass before all arrive, and the counter reset
/// must not eat arrivals for the *next* generation.
fn team_barrier_protocol() {
    const MEMBERS: usize = 2;
    let arrived = Arc::new(AtomicUsize::new(0));
    let generation = Arc::new(AtomicUsize::new(0));
    let work = Arc::new(AtomicUsize::new(0));

    let cross = |arrived: &AtomicUsize, generation: &AtomicUsize| {
        let gen_before = generation.load(Ordering::Acquire);
        if arrived.fetch_add(1, Ordering::AcqRel) + 1 == MEMBERS {
            arrived.store(0, Ordering::Relaxed);
            generation.fetch_add(1, Ordering::Release);
        } else {
            while generation.load(Ordering::Acquire) == gen_before {
                thread::yield_now();
            }
        }
    };

    let (a2, g2, w2) = (Arc::clone(&arrived), Arc::clone(&generation), Arc::clone(&work));
    let peer = thread::spawn(move || {
        for _ in 0..2 {
            w2.fetch_add(1, Ordering::SeqCst);
            cross(&a2, &g2);
        }
    });
    for step in 1..=2 {
        work.fetch_add(1, Ordering::SeqCst);
        cross(&arrived, &generation);
        let seen = work.load(Ordering::SeqCst);
        assert!(
            seen >= step * MEMBERS,
            "crossed generation {step} after only {seen} contributions"
        );
    }
    peer.join().unwrap();
    assert_eq!(generation.load(Ordering::SeqCst), 2, "two generations completed");
    assert_eq!(work.load(Ordering::SeqCst), 2 * MEMBERS);
}

#[test]
fn team_barrier_protocol_random_sweep() {
    random(0xBA221E2, 400).check(team_barrier_protocol);
}

#[test]
fn team_barrier_protocol_pinned_schedules() {
    // Leader arrives last on both generations.
    model::replay(&[0; 32], team_barrier_protocol);
    // Peer scheduled first wherever possible: the peer arrives first and
    // spins; the leader is the releasing last arriver — the minimal
    // interleaving the sense reversal exists for.
    model::replay(&[1, 1, 1, 1, 1, 1], team_barrier_protocol);
    // A mid-protocol preemption straddling the generation bump.
    model::replay(&[0, 0, 1, 0, 0, 1], team_barrier_protocol);
}

// ---------------------------------------------------------------------
// Engine queue: bounded full/drain with a close() handshake
// ---------------------------------------------------------------------

/// The bounded-queue protocol from `crates/engine/src/queue.rs`: pushes
/// refuse (not block) beyond capacity, a blocked consumer is woken by
/// push and by close, and close + drain terminates the consumer loop.
fn queue_full_drain_protocol() {
    struct Q {
        state: Mutex<(VecDeque<u32>, bool)>,
        not_empty: Condvar,
    }
    let q = Arc::new(Q { state: Mutex::new((VecDeque::new(), false)), not_empty: Condvar::new() });
    const CAPACITY: usize = 1;

    let q2 = Arc::clone(&q);
    let producer = thread::spawn(move || {
        let mut accepted = 0u32;
        for item in [10u32, 20, 30] {
            let mut state = q2.state.lock().unwrap();
            if state.0.len() < CAPACITY {
                state.0.push_back(item);
                accepted += 1;
                drop(state);
                q2.not_empty.notify_one();
            }
        }
        q2.state.lock().unwrap().1 = true;
        q2.not_empty.notify_all();
        accepted
    });

    let mut drained = 0u32;
    'consume: loop {
        let mut state = q.state.lock().unwrap();
        loop {
            if state.0.pop_front().is_some() {
                drained += 1;
                continue 'consume;
            }
            if state.1 {
                break 'consume; // closed + drained
            }
            state = q.not_empty.wait(state).unwrap();
        }
    }
    let accepted = producer.join().unwrap();
    assert_eq!(drained, accepted, "accepted items drain exactly once");
}

#[test]
fn queue_full_drain_random_sweep() {
    random(0xD2A17, 400).check(queue_full_drain_protocol);
}

#[test]
fn queue_full_drain_pinned_schedules() {
    // Producer runs to completion first; the consumer drains cold.
    model::replay(&[0; 32], queue_full_drain_protocol);
    // Consumer scheduled eagerly: it parks on the empty queue and every
    // wakeup (push, then close) must land — the lost-wakeup shape.
    model::replay(&[1, 1, 1, 1, 1, 1, 1, 1], queue_full_drain_protocol);
    model::replay(&[0, 1, 1, 0, 1, 0, 1, 0], queue_full_drain_protocol);
}

// ---------------------------------------------------------------------
// The checker itself stays honest: it still catches a planted race
// ---------------------------------------------------------------------

#[test]
fn checker_still_catches_a_planted_lost_update() {
    // Guards the safety net: if shim-loom ever regressed into exploring
    // only one schedule, this canary — a classic non-atomic
    // read-modify-write — would stop failing.
    let outcome = std::panic::catch_unwind(|| {
        model::check(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&counter);
            let racer = thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            racer.join().unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        });
    });
    assert!(outcome.is_err(), "the planted race must be found");
}

// ---------------------------------------------------------------------
// The race detector stays honest in the default test run too
// ---------------------------------------------------------------------

/// Message-passing through a tracked cell: writer fills the cell, then
/// publishes on a flag; reader checks the flag, then reads the cell.
/// With a Release/Acquire pair the accesses are ordered; with Relaxed
/// on either side the detector must report a data race (Relaxed
/// deliberately creates no happens-before edge).
fn message_passing(store: Ordering, load: Ordering) -> Result<(), String> {
    use shim_loom::cell::UnsafeCell;

    struct Shared {
        data: UnsafeCell<u64>,
        ready: AtomicUsize,
    }
    // SAFETY: sharing is the point — the detector (not the type system)
    // decides whether the schedule ordered the accesses.
    unsafe impl Sync for Shared {}

    std::panic::catch_unwind(|| {
        model::check(move || {
            let s = Arc::new(Shared { data: UnsafeCell::new(0), ready: AtomicUsize::new(0) });
            let s2 = Arc::clone(&s);
            let writer = thread::spawn(move || {
                s2.data.with_mut(|p| {
                    // SAFETY: the flag protocol under test is the only
                    // other access path.
                    unsafe { *p = 42 };
                });
                s2.ready.store(1, store);
            });
            if s.ready.load(load) == 1 {
                // SAFETY: as above; racy iff the orderings are weak.
                let v = s.data.with(|p| unsafe { *p });
                assert_eq!(v, 42);
            }
            writer.join().unwrap();
        });
    })
    .map(|_| ())
    .map_err(|e| e.downcast_ref::<String>().cloned().unwrap_or_else(|| "non-string panic".into()))
}

#[test]
fn race_detector_accepts_release_acquire_message_passing() {
    message_passing(Ordering::Release, Ordering::Acquire).expect("release/acquire is race-free");
}

#[test]
fn race_detector_catches_relaxed_publication() {
    let report = message_passing(Ordering::Relaxed, Ordering::Acquire)
        .expect_err("relaxed publication must race");
    assert!(report.contains("data race"), "unexpected failure: {report}");
    assert!(report.contains("replay choices"), "race reports carry a replay vector: {report}");
}
