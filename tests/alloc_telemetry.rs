//! End-to-end allocation telemetry: this test binary installs the
//! instrumenting allocator and checks the whole chain — raw counters,
//! scope attribution, the engine's stats snapshot — plus the paper's
//! §4.2.1 claim itself: the memory-optimized steady ant performs O(1)
//! heap allocations per multiplication after warmup, while the basic
//! recursion allocates proportionally to its recursion tree.

use rand::SeedableRng;
use slcs_braid::{steady_ant, BraidMulWorkspace};
use slcs_perm::Permutation;

#[global_allocator]
static ALLOC: slcs_alloc::InstrumentedAlloc = slcs_alloc::InstrumentedAlloc;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0xA110C)
}

#[test]
fn allocator_is_installed_and_balanced() {
    assert!(slcs_alloc::installed(), "instrumented allocator not active in this binary");
    let before = slcs_alloc::thread_stats();
    {
        let v: Vec<u64> = vec![7; 1000];
        std::hint::black_box(&v);
    }
    let after = slcs_alloc::thread_stats();
    assert!(after.allocs > before.allocs);
    assert!(after.frees > before.frees);
    assert_eq!(
        after.alloc_bytes - before.alloc_bytes,
        after.freed_bytes - before.freed_bytes,
        "everything allocated in the block was freed"
    );
}

#[test]
fn scope_attributes_allocations_and_peak() {
    let scope = slcs_alloc::AllocScope::enter(None);
    let v: Vec<u8> = vec![0; 1 << 16];
    drop(v);
    let d = scope.delta();
    assert!(d.allocs >= 1, "scope saw the allocation");
    assert!(d.alloc_bytes >= 1 << 16);
    assert!(
        d.peak_live_delta >= 1 << 16,
        "peak covers the transient buffer: {}",
        d.peak_live_delta
    );
}

/// The paper's memory optimization, as a regression test: a reused
/// workspace multiplies with a *constant* number of allocations per
/// multiply (the copy-out of the result), independent of the order,
/// while the basic recursion's allocation count grows with the order.
#[test]
fn memopt_steady_ant_does_constant_allocations_per_multiply() {
    let mut rng = rng();
    let mut per_multiply = |n: usize| -> u64 {
        let mut ws = BraidMulWorkspace::new(n);
        let pairs: Vec<(Permutation, Permutation)> = (0..4)
            .map(|_| (Permutation::random(n, &mut rng), Permutation::random(n, &mut rng)))
            .collect();
        std::hint::black_box(ws.multiply(&pairs[0].0, &pairs[0].1, None)); // warmup
        let scope = slcs_alloc::AllocScope::enter(None);
        for (p, q) in &pairs {
            std::hint::black_box(ws.multiply(p, q, None));
        }
        scope.delta().allocs / pairs.len() as u64
    };
    let small = per_multiply(128);
    let large = per_multiply(2048);
    assert!(small <= 4, "memopt allocates O(1) per multiply, got {small}");
    assert_eq!(small, large, "allocation count must not grow with the order");
}

#[test]
fn naive_steady_ant_allocations_grow_with_order() {
    let mut rng = rng();
    let mut count = |n: usize| -> u64 {
        let p = Permutation::random(n, &mut rng);
        let q = Permutation::random(n, &mut rng);
        std::hint::black_box(steady_ant(&p, &q)); // warmup (precalc tables etc.)
        let scope = slcs_alloc::AllocScope::enter(None);
        std::hint::black_box(steady_ant(&p, &q));
        scope.delta().allocs
    };
    let small = count(256);
    let large = count(1024);
    assert!(large >= 3 * small, "naive recursion allocates per level: {small} -> {large}");
    // And the headline comparison of BENCH_mem: naive vs workspace.
    let mut ws = BraidMulWorkspace::new(1024);
    let p = Permutation::random(1024, &mut rng);
    let q = Permutation::random(1024, &mut rng);
    std::hint::black_box(ws.multiply(&p, &q, None));
    let scope = slcs_alloc::AllocScope::enter(None);
    std::hint::black_box(ws.multiply(&p, &q, None));
    let memopt = scope.delta().allocs;
    assert!(memopt * 100 < large, "memopt ({memopt}) must be far below naive ({large})");
}

/// The engine snapshot carries the process-wide allocator counters and
/// reports the allocator as installed in this binary.
#[test]
fn engine_stats_snapshot_carries_allocation_counters() {
    let engine = slcs_engine::Engine::with_defaults();
    let req = slcs_engine::CompareRequest::new(
        b"ACGTACGT".as_slice(),
        b"ACGTTGCA".as_slice(),
        slcs_engine::Operation::Lcs,
    );
    engine.submit_wait(req).expect("compare");
    let snap = engine.stats();
    assert!(snap.alloc_installed, "snapshot must see the installed allocator");
    assert!(snap.alloc.allocs > 0, "process-wide allocation counter moved");
    assert!(snap.alloc.live_bytes > 0, "engine keeps live allocations");
    assert!(snap.alloc.peak_live_bytes >= snap.alloc.live_bytes);
    // The shard counters and the class table are separate atomics, so a
    // snapshot taken while other test threads allocate can tear by a few
    // in-flight allocations — equality only holds within that slack.
    let total: u64 = snap.alloc.size_classes.iter().sum();
    let drift = total.abs_diff(snap.alloc.allocs);
    assert!(drift < 256, "size-class histogram tracks the allocation counter (drift {drift})");
}
