//! Cross-crate integration tests: every algorithm in the suite must agree
//! with every other on shared questions, across workload classes.

use semilocal_suite::baselines::{
    cipr_lcs, hyyro_lcs, par_prefix_antidiag, prefix_antidiag, prefix_rowmajor,
};
use semilocal_suite::bitpar::{
    bit_lcs_alphabet, bit_lcs_new1, bit_lcs_new2, bit_lcs_old, par_bit_lcs_new2,
};
use semilocal_suite::datagen::{binary_string, genome_pair, normal_string, seeded_rng};
use semilocal_suite::semilocal::{
    antidiag_combing, antidiag_combing_branchless, antidiag_combing_u16, grid_hybrid_combing,
    hybrid_combing, iterative_combing, load_balanced_combing, recursive_combing, SemiLocalKernel,
};

fn all_combers<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> Vec<(&'static str, SemiLocalKernel)> {
    vec![
        ("iterative", iterative_combing(a, b)),
        ("recursive", recursive_combing(a, b)),
        ("antidiag", antidiag_combing(a, b)),
        ("antidiag_branchless", antidiag_combing_branchless(a, b)),
        ("antidiag_u16", antidiag_combing_u16(a, b)),
        ("load_balanced", load_balanced_combing(a, b)),
        ("hybrid_64", hybrid_combing(a, b, 64)),
        ("grid_hybrid_4", grid_hybrid_combing(a, b, 4)),
    ]
}

#[test]
fn every_comber_produces_the_same_kernel_on_sigma_strings() {
    let mut rng = seeded_rng(0xA11);
    for sigma in [0.5f64, 1.0, 10.0] {
        let a = normal_string(&mut rng, 257, sigma);
        let b = normal_string(&mut rng, 301, sigma);
        let kernels = all_combers(&a, &b);
        let (ref_name, reference) = &kernels[0];
        for (name, k) in &kernels[1..] {
            assert_eq!(k, reference, "{name} differs from {ref_name} at σ={sigma}");
        }
    }
}

#[test]
fn every_comber_agrees_on_genomes() {
    let mut rng = seeded_rng(0xA12);
    let (x, y) = genome_pair(&mut rng, 400, 0.08);
    let kernels = all_combers(&x, &y);
    for w in kernels.windows(2) {
        assert_eq!(w[0].1, w[1].1, "{} vs {}", w[0].0, w[1].0);
    }
    // and the kernel's global LCS equals classical DP
    assert_eq!(kernels[0].1.lcs(), prefix_rowmajor(&x, &y));
}

#[test]
fn eleven_lcs_implementations_agree_on_binary_strings() {
    let mut rng = seeded_rng(0xA13);
    for len in [0usize, 1, 63, 64, 65, 130, 500] {
        let a = binary_string(&mut rng, len);
        let b = binary_string(&mut rng, len.saturating_sub(7));
        let want = prefix_rowmajor(&a, &b);
        let got: Vec<(&str, usize)> = vec![
            ("prefix_antidiag", prefix_antidiag(&a, &b)),
            ("par_prefix_antidiag", par_prefix_antidiag(&a, &b)),
            ("cipr", cipr_lcs(&a, &b)),
            ("hyyro", hyyro_lcs(&a, &b)),
            ("bit_old", bit_lcs_old(&a, &b)),
            ("bit_new1", bit_lcs_new1(&a, &b)),
            ("bit_new2", bit_lcs_new2(&a, &b)),
            ("par_bit_new2", par_bit_lcs_new2(&a, &b)),
            ("bit_alphabet", bit_lcs_alphabet(&a, &b)),
            ("iterative_kernel", iterative_combing(&a, &b).lcs()),
            ("hybrid_kernel", hybrid_combing(&a, &b, 128).lcs()),
        ];
        for (name, v) in got {
            assert_eq!(v, want, "{name} at len={len}");
        }
    }
}

#[test]
fn semi_local_windows_match_per_window_dp_on_genomes() {
    let mut rng = seeded_rng(0xA14);
    let (gene, genome) = genome_pair(&mut rng, 120, 0.05);
    let kernel = antidiag_combing_branchless(&gene, &genome);
    let scores = kernel.index();
    let w = 60.min(genome.len());
    for (i, score) in scores.windows(w).into_iter().enumerate() {
        assert_eq!(score, prefix_rowmajor(&gene, &genome[i..i + w]), "window {i}");
    }
}

#[test]
fn kernel_queries_survive_flip() {
    // flip(P_{a,b}) = P_{b,a}: querying the flipped kernel with the roles
    // of a and b exchanged must give the same scores.
    let mut rng = seeded_rng(0xA15);
    let a = normal_string(&mut rng, 40, 1.0);
    let b = normal_string(&mut rng, 55, 1.0);
    let k_ab = iterative_combing(&a, &b);
    let k_ba = iterative_combing(&b, &a);
    assert_eq!(k_ab.flip(), k_ba, "flip theorem (Theorem 3.5)");
    let s_ab = k_ab.index();
    let s_ba = k_ba.index();
    for i in 0..=a.len() {
        for j in i..=a.len() {
            assert_eq!(s_ab.substring_string(i, j), s_ba.string_substring(i, j));
        }
    }
}

#[test]
fn medium_scale_smoke_all_paths() {
    // A single larger run through the parallel paths to catch anything
    // the small exhaustive tests miss.
    let mut rng = seeded_rng(0xA16);
    let (x, y) = genome_pair(&mut rng, 3000, 0.1);
    let reference = iterative_combing(&x, &y);
    assert_eq!(grid_hybrid_combing(&x, &y, 8), reference);
    assert_eq!(
        semilocal_suite::semilocal::hybrid::par_hybrid_combing_depth(&x, &y, 3, 2),
        reference
    );
    assert_eq!(
        semilocal_suite::semilocal::antidiag::par_antidiag_combing_branchless(&x, &y),
        reference
    );
    assert_eq!(reference.lcs(), bit_lcs_alphabet(&x, &y));
}
