//! Kernel-equivalence tests for the parallel anti-diagonal drivers: every
//! scheduling mode and element width must produce a kernel bit-identical
//! to the sequential row-major combing, for arbitrary inputs, for any
//! team size the pool happens to form, and at the `m + n = 2^16` capacity
//! boundary of the 16-bit variant.
//!
//! This binary pins `SLCS_PAR_GRAIN` (before any kernel runs, so the
//! once-resolved grain is deterministic) to a value small enough that the
//! team path actually activates on test-sized inputs — which also
//! exercises the env-override plumbing itself.

use proptest::prelude::*;

use semilocal_suite::semilocal::load_balanced::par_load_balanced_combing;
use semilocal_suite::semilocal::{
    iterative_combing, par_antidiag_combing, par_antidiag_combing_branchless,
    par_antidiag_combing_branchless_sched, par_antidiag_combing_u16, par_grain, Scheduling,
};

/// Sets the grain override exactly once, before the first `par_grain()`
/// call in this process. Every test calls this first.
fn small_grain() -> usize {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| std::env::set_var("SLCS_PAR_GRAIN", "48"));
    par_grain()
}

fn arb_string(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec((0u8..4).prop_map(|s| b"acgt"[s as usize]), 0..max)
}

#[test]
fn par_grain_env_override_is_observed() {
    assert_eq!(small_grain(), 48);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All default-grain parallel variants match the sequential kernel.
    #[test]
    fn parallel_variants_match_iterative((a, b) in (arb_string(220), arb_string(220))) {
        small_grain();
        let expected = iterative_combing(&a, &b);
        prop_assert_eq!(&par_antidiag_combing(&a, &b), &expected);
        prop_assert_eq!(&par_antidiag_combing_branchless(&a, &b), &expected);
        prop_assert_eq!(&par_antidiag_combing_u16(&a, &b), &expected);
        prop_assert_eq!(&par_load_balanced_combing(&a, &b), &expected);
    }

    /// Every scheduling mode agrees, across explicit grains that force
    /// multi-member teams and multi-chunk diagonals.
    #[test]
    fn scheduling_modes_match_iterative(
        (a, b) in (arb_string(180), arb_string(180)),
        grain in 1usize..64,
    ) {
        small_grain();
        let expected = iterative_combing(&a, &b);
        // Every fixed mode plus Auto (which resolves through the tuning
        // profile — builtin work stealing here, since tests run without
        // a perf/tuning.json in their working directory).
        for sched in Scheduling::FIXED.into_iter().chain([Scheduling::Auto]) {
            let got = par_antidiag_combing_branchless_sched(&a, &b, sched, grain);
            prop_assert_eq!(&got, &expected, "sched={:?} grain={}", sched, grain);
        }
    }
}

/// The u16 variant packs strand indices into 16 bits, so `m + n` may be
/// at most 65536. Exercise exactly that boundary (with a skewed shape so
/// the test stays fast) and one cell short of it.
#[test]
fn u16_boundary_at_exactly_two_pow_16() {
    small_grain();
    let mut rng = semilocal_suite::datagen::seeded_rng(7);
    for n in [200usize, 199] {
        let m = (1usize << 16) - n;
        let a = semilocal_suite::datagen::uniform_string(&mut rng, m, 4);
        let b = semilocal_suite::datagen::uniform_string(&mut rng, n, 4);
        let expected = iterative_combing(&a, &b);
        assert_eq!(par_antidiag_combing_u16(&a, &b), expected, "m={m} n={n}");
        // The boundary must also hold under the coordinated sweeps with
        // a grain small enough to split the short diagonals: the barrier
        // team and the barrier-free work-stealing sweep.
        for sched in [Scheduling::Team, Scheduling::WorkSteal] {
            let got = par_antidiag_combing_branchless_sched(&a, &b, sched, 16);
            assert_eq!(got, expected, "{:?} m={m} n={n}", sched);
        }
    }
}

/// Team results are independent of the thread budget (and hence of the
/// team size actually formed).
#[test]
fn team_results_independent_of_thread_budget() {
    small_grain();
    let mut rng = semilocal_suite::datagen::seeded_rng(11);
    let a = semilocal_suite::datagen::uniform_string(&mut rng, 500, 4);
    let b = semilocal_suite::datagen::uniform_string(&mut rng, 350, 4);
    let expected = iterative_combing(&a, &b);
    for threads in [1usize, 2, 3, 8] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let got = pool.install(|| par_antidiag_combing_branchless(&a, &b));
        assert_eq!(got, expected, "threads={threads}");
        let lb = pool.install(|| par_load_balanced_combing(&a, &b));
        assert_eq!(lb, expected, "load-balanced threads={threads}");
    }
}
