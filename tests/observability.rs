//! End-to-end observability tests: the `METRICS` exposition, the
//! `TRACE`, `HEALTH` and `AUDIT` commands, and the rolling latency
//! windows, driven over a real TCP connection exactly as a scraper or
//! an operator would drive them.
//!
//! Tracing state is process-global, so every test that toggles or
//! drains it holds `slcs_trace::test_support::hold()`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use slcs_engine::{serve, Engine, EngineConfig, ServerConfig, SloTable};

/// Installed so the `slcs_alloc_*` metrics expose real counts, exactly
/// as in the production binary.
#[global_allocator]
static ALLOC: slcs_alloc::InstrumentedAlloc = slcs_alloc::InstrumentedAlloc;

fn engine_with(config: EngineConfig) -> Arc<Engine> {
    Arc::new(Engine::new(config))
}

fn small_engine() -> Arc<Engine> {
    engine_with(EngineConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        batch_limit: 4,
        threads_per_request: 1,
        ..EngineConfig::default()
    })
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        // Request-response over small packets: without this, Nagle +
        // delayed ACK add ~40ms to every round trip (the server sets it
        // on its side too).
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().expect("clone stream");
        Client { writer, reader: BufReader::new(stream) }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        // The server's read timeout is 100ms; ours is the test timeout.
        while self.reader.read_line(&mut line).expect("read") == 0 {}
        line.trim_end().to_string()
    }

    /// One request → one response line.
    fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.read_line()
    }

    /// A multi-line command (`METRICS`, `AUDIT`) → every line up to and
    /// including the `# EOF` terminator.
    fn multi_line(&mut self, cmd: &str) -> Vec<String> {
        self.send(cmd);
        let mut lines = Vec::new();
        loop {
            let line = self.read_line();
            let done = line == "# EOF";
            lines.push(line);
            if done {
                return lines;
            }
        }
    }

    /// `METRICS` → every line up to and including the `# EOF` terminator.
    fn metrics(&mut self) -> Vec<String> {
        self.multi_line("METRICS")
    }
}

#[test]
fn metrics_over_tcp_exposes_every_counter_and_histogram() {
    let engine = small_engine();
    let handle = serve("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr());

    // Generate some traffic first so the counters are non-trivial: a
    // kernel-building WINDOWS, an LCS that hits its cached kernel, and
    // an invalid request.
    assert!(client.round_trip("WINDOWS 6 abcabba cbabac").starts_with("OK "));
    assert_eq!(client.round_trip("LCS abcabba cbabac"), "OK 4 cached hit");
    assert!(client.round_trip("WINDOWS 99 ab xy").starts_with("ERR"));

    let lines = client.metrics();
    assert_eq!(lines.last().map(String::as_str), Some("# EOF"));

    // Line-by-line: every non-comment line is `name[{labels}] value`
    // with a numeric value, and every comment line is a well-formed
    // `# TYPE`/`# HELP` header.
    for line in &lines[..lines.len() - 1] {
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            let kind = words.next().expect("comment kind");
            assert!(kind == "TYPE" || kind == "HELP", "unexpected comment line: {line}");
            assert!(words.next().is_some(), "comment without a metric name: {line}");
        } else {
            let (name, value) = line.rsplit_once(' ').expect("sample line must have a value");
            assert!(!name.is_empty(), "empty sample name: {line}");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value in: {line}");
        }
    }

    let sample = |name: &str| {
        lines
            .iter()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .unwrap_or_else(|| panic!("no sample named {name}"))
            .rsplit_once(' ')
            .unwrap()
            .1
            .parse::<f64>()
            .unwrap()
    };

    // Every Metrics counter, by its exposition name.
    assert_eq!(sample("slcs_requests_submitted_total"), 3.0);
    assert_eq!(sample("slcs_requests_accepted_total"), 2.0);
    assert_eq!(sample("slcs_requests_completed_total"), 2.0);
    assert_eq!(sample("slcs_requests_rejected_invalid_total"), 1.0);
    assert_eq!(sample("slcs_requests_rejected_queue_full_total"), 0.0);
    assert_eq!(sample("slcs_cache_hits_total"), 1.0);
    assert_eq!(sample("slcs_cache_misses_total"), 1.0);
    assert_eq!(sample("slcs_cache_evictions_total"), 0.0);
    assert!(sample("slcs_batches_popped_total") >= 1.0);
    assert_eq!(sample("slcs_requests_coalesced_total"), 0.0);
    assert_eq!(sample("slcs_queue_depth"), 0.0);
    assert!(sample("slcs_par_grain") >= 1.0);

    // Both histograms, with explicit bucket bounds, cumulative buckets,
    // and a final +Inf bucket equal to the count.
    for hist in ["slcs_wait_micros", "slcs_service_micros"] {
        assert!(
            lines.iter().any(|l| l == &format!("# TYPE {hist} histogram")),
            "missing histogram TYPE line for {hist}"
        );
        let buckets: Vec<&String> =
            lines.iter().filter(|l| l.starts_with(&format!("{hist}_bucket{{le="))).collect();
        assert!(buckets.len() > 2, "{hist} should expose explicit buckets");
        assert!(
            buckets.iter().any(|l| l.contains("le=\"2\"")),
            "{hist} missing the first power-of-two bound"
        );
        let inf = buckets.iter().filter(|l| l.contains("le=\"+Inf\"")).count();
        assert_eq!(inf, 1, "{hist} must have exactly one +Inf bucket");
        let mut prev = -1.0;
        for b in &buckets {
            let v = b.rsplit_once(' ').unwrap().1.parse::<f64>().unwrap();
            assert!(v >= prev, "{hist} buckets must be cumulative: {b}");
            prev = v;
        }
        assert_eq!(sample(&format!("{hist}_count")), 2.0, "{hist}_count");
        assert!(sample(&format!("{hist}_sum")) >= 0.0, "{hist}_sum must ride along");
    }

    // The executor-pool and tracing sections ride along.
    for name in ["slcs_pool_jobs_executed_total", "slcs_trace_enabled"] {
        let _ = sample(name);
    }

    // Error-by-kind counters: the invalid WINDOWS above counted as
    // malformed; the untouched kinds expose stable zeroes.
    for (kind, value) in
        [("malformed", 1.0), ("oversize", 0.0), ("queue_full", 0.0), ("internal", 0.0)]
    {
        let prefix = format!("slcs_engine_errors_total{{kind=\"{kind}\"}}");
        let v = lines
            .iter()
            .find(|l| l.starts_with(&prefix))
            .unwrap_or_else(|| panic!("no series {prefix}"))
            .rsplit_once(' ')
            .unwrap()
            .1
            .parse::<f64>()
            .unwrap();
        assert_eq!(v, value, "kind {kind}");
    }
    // The rolling-window gauge exposes its full stable label set:
    // 4 classes × 3 windows × 4 quantiles.
    assert_eq!(lines.iter().filter(|l| l.starts_with("slcs_latency_window{")).count(), 48);

    // Build metadata: the info-pattern gauge with the version label,
    // and the uptime gauge.
    assert!(
        lines.iter().any(|l| l.starts_with("slcs_build_info{version=\"") && l.ends_with("\"} 1")),
        "missing slcs_build_info info gauge"
    );
    assert!(sample("slcs_uptime_seconds") >= 0.0);

    // The allocator section: this test binary installs the instrumented
    // allocator, so the counters are live.
    assert_eq!(sample("slcs_alloc_installed"), 1.0);
    assert!(sample("slcs_alloc_allocations_total") > 0.0);
    assert!(sample("slcs_alloc_live_bytes") > 0.0);
    assert!(sample("slcs_alloc_peak_live_bytes") >= sample("slcs_alloc_live_bytes"));
    let inf_bucket = lines
        .iter()
        .find(|l| l.starts_with("slcs_alloc_size_bytes_bucket{le=\"+Inf\"}"))
        .expect("size-class histogram has a +Inf bucket")
        .rsplit_once(' ')
        .unwrap()
        .1
        .parse::<f64>()
        .unwrap();
    assert_eq!(inf_bucket, sample("slcs_alloc_size_bytes_count"));

    assert_eq!(client.round_trip("QUIT"), "OK bye");
    handle.stop();
}

#[test]
fn dispatch_reasons_reach_the_metrics_exposition_over_tcp() {
    let engine = small_engine();
    let handle = serve("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr());

    // A near-identical ≥ 64-byte pair: the similarity probe must route
    // this EDIT to the output-sensitive subsystem end to end.
    let a = "a".repeat(128);
    let b = format!("{}b", "a".repeat(127));
    assert_eq!(client.round_trip(&format!("EDIT {a} {b}")), "OK 1");
    // A bounded EDIT and a small-alphabet LCS land in two more buckets.
    assert_eq!(client.round_trip(&format!("EDIT {a} {b} k=0")), "OK gt 0");
    assert_eq!(client.round_trip("LCS abcabba cbabac"), "OK 4 bitpar bypass");

    let lines = client.metrics();
    assert!(
        lines.iter().any(|l| l == "# TYPE slcs_dispatch_total counter"),
        "missing dispatch TYPE header"
    );
    let series = |labels: &str| {
        lines
            .iter()
            .find(|l| l.starts_with(&format!("slcs_dispatch_total{{{labels}}}")))
            .unwrap_or_else(|| panic!("no slcs_dispatch_total series with {labels}"))
            .rsplit_once(' ')
            .expect("sample line must have a value")
            .1
            .parse::<f64>()
            .expect("numeric value")
    };
    assert_eq!(series("algo=\"osed\",reason=\"edit_similar\""), 1.0);
    assert_eq!(series("algo=\"osed\",reason=\"edit_bounded\""), 1.0);
    assert_eq!(series("algo=\"bitpar\",reason=\"small_alphabet\""), 1.0);
    // Untaken branches still expose a zero-valued series each.
    assert_eq!(series("algo=\"edit\",reason=\"edit_dissimilar\""), 0.0);
    assert_eq!(series("algo=\"cached\",reason=\"cache_hit\""), 0.0);
    assert_eq!(lines.iter().filter(|l| l.starts_with("slcs_dispatch_total{")).count(), 9);

    // The STATS line carries the same counters in its compact form.
    let stats = client.round_trip("STATS");
    assert!(stats.contains(" dispatch="), "{stats}");
    assert!(stats.contains("edit_similar:1"), "{stats}");
    assert!(stats.contains("edit_bounded:1"), "{stats}");

    assert_eq!(client.round_trip("QUIT"), "OK bye");
    handle.stop();
}

#[test]
fn trace_on_dump_round_trip_over_tcp() {
    let _guard = slcs_trace::test_support::hold();
    let engine = small_engine();
    let handle = serve("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr());

    assert_eq!(client.round_trip("TRACE on"), "OK tracing on");
    assert_eq!(client.round_trip("LCS abcabba cbabac"), "OK 4 bitpar bypass");
    assert_eq!(client.round_trip("TRACE off"), "OK tracing off");

    let dump = client.round_trip("TRACE dump");
    let json = dump.strip_prefix("OK ").expect("dump starts with OK ");
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.ends_with('}'), "dump must be a single JSON line: {json}");
    for span in ["engine.submit", "engine.request", "engine.dispatch"] {
        assert!(json.contains(&format!("\"name\":\"{span}\"")), "missing {span} in {json}");
    }
    // Chrome-trace metadata: the process name and per-thread dropped
    // counter events are part of every export.
    assert!(json.contains("\"name\":\"process_name\""), "{json}");
    assert!(json.contains("\"name\":\"slcsDroppedEvents\""), "{json}");
    assert!(client.round_trip("TRACE sideways").starts_with("ERR usage"));

    assert_eq!(client.round_trip("QUIT"), "OK bye");
    handle.stop();
}

#[test]
fn health_degrades_and_recovers_within_one_window_rotation() {
    // Short slices so the recovery half of the test runs in tens of
    // milliseconds instead of the default 10s rotation.
    let engine = engine_with(EngineConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        batch_limit: 4,
        threads_per_request: 1,
        window_slice_millis: 50,
        ..EngineConfig::default()
    });
    // Zero-target SLO table: any observed sample breaches its class.
    let config = ServerConfig {
        slo: SloTable { p99_micros: [0; 4], ..SloTable::default() },
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", engine, config).expect("bind");
    let mut client = Client::connect(handle.addr());

    // Idle engine: no windowed samples, nothing to breach.
    assert_eq!(client.round_trip("HEALTH"), "OK");

    // Round trips are sub-ms, so the request and the verdict land in
    // the same 50ms slice; retry across a slice boundary just in case.
    let mut verdict = String::new();
    for _ in 0..20 {
        assert_eq!(client.round_trip("LCS abcabba cbabac"), "OK 4 bitpar bypass");
        verdict = client.round_trip("HEALTH");
        if verdict.starts_with("DEGRADED") {
            break;
        }
    }
    assert!(verdict.starts_with("DEGRADED"), "{verdict}");
    assert!(verdict.contains("class lcs"), "verdict names the class: {verdict}");
    assert!(verdict.contains("p99"), "{verdict}");

    // One rotation of the shortest (1-slice) window later, the sample
    // ages out and the verdict flips back without any reset call.
    std::thread::sleep(std::time::Duration::from_millis(120));
    assert_eq!(client.round_trip("HEALTH"), "OK");

    assert_eq!(client.round_trip("QUIT"), "OK bye");
    handle.stop();
}

#[test]
fn latency_windows_populate_monotone_quantiles_then_drain() {
    let engine = engine_with(EngineConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        batch_limit: 4,
        threads_per_request: 1,
        window_slice_millis: 20,
        ..EngineConfig::default()
    });
    let handle = serve("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr());

    for _ in 0..5 {
        assert_eq!(client.round_trip("LCS abcabba cbabac"), "OK 4 bitpar bypass");
    }

    let window_sample = |lines: &[String], window: &str, quantile: &str| -> f64 {
        let prefix = format!(
            "slcs_latency_window{{class=\"lcs\",window=\"{window}\",quantile=\"{quantile}\"}}"
        );
        lines
            .iter()
            .find(|l| l.starts_with(&prefix))
            .unwrap_or_else(|| panic!("no series {prefix}"))
            .rsplit_once(' ')
            .unwrap()
            .1
            .parse()
            .unwrap()
    };

    let lines = client.metrics();
    // The widest window saw every sample regardless of slice boundaries;
    // its quantiles are positive and monotone.
    let qs: Vec<f64> =
        ["p50", "p90", "p99", "p999"].iter().map(|q| window_sample(&lines, "5m", q)).collect();
    assert!(qs[0] > 0.0, "p50 populated: {qs:?}");
    for pair in qs.windows(2) {
        assert!(pair[0] <= pair[1], "windowed quantiles must be monotone: {qs:?}");
    }
    // The STATS line carries the same windows in its compact form.
    let stats = client.round_trip("STATS");
    assert!(stats.contains(" latency_windows=lcs:10s:"), "{stats}");
    assert!(stats.contains("edit_bounded:5m:"), "{stats}");

    // Idle past the largest window (30 slices × 20ms): every window
    // drains to zero with no rotation thread and no reset.
    std::thread::sleep(std::time::Duration::from_millis(700));
    let lines = client.metrics();
    for window in ["10s", "1m", "5m"] {
        assert_eq!(
            window_sample(&lines, window, "p99"),
            0.0,
            "window {window} must drain when idle"
        );
    }

    assert_eq!(client.round_trip("QUIT"), "OK bye");
    handle.stop();
}

#[test]
fn audit_ring_wraps_and_slowest_ordering_hold_over_tcp() {
    let engine = engine_with(EngineConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        batch_limit: 4,
        threads_per_request: 1,
        recorder_capacity: 4,
        ..EngineConfig::default()
    });
    let handle = serve("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr());

    // Six distinct pairs → six audit records into a 4-slot ring.
    for (a, b) in
        [("aa", "ab"), ("bb", "bc"), ("cc", "cd"), ("dd", "de"), ("ee", "ef"), ("ff", "fg")]
    {
        assert!(client.round_trip(&format!("LCS {a} {b}")).starts_with("OK "));
    }

    let dump = client.multi_line("AUDIT");
    assert_eq!(dump.first().map(String::as_str), Some("OK 4"), "{dump:?}");
    assert_eq!(dump.last().map(String::as_str), Some("# EOF"));
    let id_of = |line: &String| -> u64 {
        line.split_whitespace()
            .find_map(|kv| kv.strip_prefix("id="))
            .expect("record line has id=")
            .parse()
            .unwrap()
    };
    let ids: Vec<u64> = dump[1..dump.len() - 1].iter().map(id_of).collect();
    assert_eq!(ids.len(), 4, "ring capacity bounds the dump");
    // Sequential round-trips make ids strictly increasing; the dump is
    // newest-first and the wrap kept the four most recent.
    for pair in ids.windows(2) {
        assert!(pair[0] > pair[1], "newest-first: {ids:?}");
    }
    assert_eq!(ids[0] - ids[3], 3, "four consecutive newest ids: {ids:?}");

    let slowest = client.multi_line("AUDIT slowest 3");
    assert_eq!(slowest.first().map(String::as_str), Some("OK 3"));
    let times: Vec<u64> = slowest[1..slowest.len() - 1]
        .iter()
        .map(|l| {
            l.split_whitespace()
                .find_map(|kv| kv.strip_prefix("service_ns="))
                .unwrap()
                .parse()
                .unwrap()
        })
        .collect();
    for pair in times.windows(2) {
        assert!(pair[0] >= pair[1], "slowest-first ordering: {times:?}");
    }

    assert_eq!(client.round_trip("QUIT"), "OK bye");
    handle.stop();
}

#[test]
fn slow_requests_leave_span_tree_exemplars() {
    // Zero-target *engine* SLO: every request breaches and captures.
    let engine = engine_with(EngineConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        batch_limit: 4,
        threads_per_request: 1,
        slo: SloTable { p99_micros: [0; 4], ..SloTable::default() },
        ..EngineConfig::default()
    });
    let handle = serve("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr());

    assert_eq!(client.round_trip("LCS abcabba cbabac"), "OK 4 bitpar bypass");
    let captures = client.multi_line("AUDIT captures");
    assert_eq!(captures.first().map(String::as_str), Some("OK 1"), "{captures:?}");
    let header = &captures[1];
    assert!(header.starts_with("capture id="), "{header}");
    assert!(header.contains("class=lcs"), "{header}");
    assert!(header.contains("slo_us=0"), "{header}");
    // The exemplar is the worker-thread span tree, captured although
    // global tracing was never enabled.
    assert!(
        captures.iter().any(|l| l.contains("engine.request")),
        "capture retains the request span: {captures:?}"
    );

    assert_eq!(client.round_trip("QUIT"), "OK bye");
    handle.stop();
}

#[test]
fn trace_command_can_be_disabled_by_config() {
    let engine = small_engine();
    let config = ServerConfig { allow_trace: false, ..ServerConfig::default() };
    let handle = serve("127.0.0.1:0", engine, config).expect("bind");
    let mut client = Client::connect(handle.addr());

    for cmd in ["TRACE on", "TRACE off", "TRACE dump"] {
        assert_eq!(client.round_trip(cmd), "ERR tracing disabled");
    }
    // Metrics and stats stay available on a trace-gated server.
    assert_eq!(client.metrics().last().map(String::as_str), Some("# EOF"));
    assert!(client.round_trip("STATS").starts_with("OK submitted="));

    assert_eq!(client.round_trip("QUIT"), "OK bye");
    handle.stop();
}
