//! End-to-end observability tests: the `METRICS` exposition and the
//! `TRACE` command driven over a real TCP connection, exactly as a
//! scraper or an operator would drive them.
//!
//! Tracing state is process-global, so every test that toggles or
//! drains it holds `slcs_trace::test_support::hold()`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use slcs_engine::{serve, Engine, EngineConfig, ServerConfig};

/// Installed so the `slcs_alloc_*` metrics expose real counts, exactly
/// as in the production binary.
#[global_allocator]
static ALLOC: slcs_alloc::InstrumentedAlloc = slcs_alloc::InstrumentedAlloc;

fn small_engine() -> Arc<Engine> {
    Arc::new(Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        batch_limit: 4,
        threads_per_request: 1,
    }))
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let writer = stream.try_clone().expect("clone stream");
        Client { writer, reader: BufReader::new(stream) }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        // The server's read timeout is 100ms; ours is the test timeout.
        while self.reader.read_line(&mut line).expect("read") == 0 {}
        line.trim_end().to_string()
    }

    /// One request → one response line.
    fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.read_line()
    }

    /// `METRICS` → every line up to and including the `# EOF` terminator.
    fn metrics(&mut self) -> Vec<String> {
        self.send("METRICS");
        let mut lines = Vec::new();
        loop {
            let line = self.read_line();
            let done = line == "# EOF";
            lines.push(line);
            if done {
                return lines;
            }
        }
    }
}

#[test]
fn metrics_over_tcp_exposes_every_counter_and_histogram() {
    let engine = small_engine();
    let handle = serve("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr());

    // Generate some traffic first so the counters are non-trivial: a
    // kernel-building WINDOWS, an LCS that hits its cached kernel, and
    // an invalid request.
    assert!(client.round_trip("WINDOWS 6 abcabba cbabac").starts_with("OK "));
    assert_eq!(client.round_trip("LCS abcabba cbabac"), "OK 4 cached hit");
    assert!(client.round_trip("WINDOWS 99 ab xy").starts_with("ERR"));

    let lines = client.metrics();
    assert_eq!(lines.last().map(String::as_str), Some("# EOF"));

    // Line-by-line: every non-comment line is `name[{labels}] value`
    // with a numeric value, and every comment line is a well-formed
    // `# TYPE`/`# HELP` header.
    for line in &lines[..lines.len() - 1] {
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            let kind = words.next().expect("comment kind");
            assert!(kind == "TYPE" || kind == "HELP", "unexpected comment line: {line}");
            assert!(words.next().is_some(), "comment without a metric name: {line}");
        } else {
            let (name, value) = line.rsplit_once(' ').expect("sample line must have a value");
            assert!(!name.is_empty(), "empty sample name: {line}");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value in: {line}");
        }
    }

    let sample = |name: &str| {
        lines
            .iter()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .unwrap_or_else(|| panic!("no sample named {name}"))
            .rsplit_once(' ')
            .unwrap()
            .1
            .parse::<f64>()
            .unwrap()
    };

    // Every Metrics counter, by its exposition name.
    assert_eq!(sample("slcs_requests_submitted_total"), 3.0);
    assert_eq!(sample("slcs_requests_accepted_total"), 2.0);
    assert_eq!(sample("slcs_requests_completed_total"), 2.0);
    assert_eq!(sample("slcs_requests_rejected_invalid_total"), 1.0);
    assert_eq!(sample("slcs_requests_rejected_queue_full_total"), 0.0);
    assert_eq!(sample("slcs_cache_hits_total"), 1.0);
    assert_eq!(sample("slcs_cache_misses_total"), 1.0);
    assert_eq!(sample("slcs_cache_evictions_total"), 0.0);
    assert!(sample("slcs_batches_popped_total") >= 1.0);
    assert_eq!(sample("slcs_requests_coalesced_total"), 0.0);
    assert_eq!(sample("slcs_queue_depth"), 0.0);
    assert!(sample("slcs_par_grain") >= 1.0);

    // Both histograms, with explicit bucket bounds, cumulative buckets,
    // and a final +Inf bucket equal to the count.
    for hist in ["slcs_wait_micros", "slcs_service_micros"] {
        assert!(
            lines.iter().any(|l| l == &format!("# TYPE {hist} histogram")),
            "missing histogram TYPE line for {hist}"
        );
        let buckets: Vec<&String> =
            lines.iter().filter(|l| l.starts_with(&format!("{hist}_bucket{{le="))).collect();
        assert!(buckets.len() > 2, "{hist} should expose explicit buckets");
        assert!(
            buckets.iter().any(|l| l.contains("le=\"2\"")),
            "{hist} missing the first power-of-two bound"
        );
        let inf = buckets.iter().filter(|l| l.contains("le=\"+Inf\"")).count();
        assert_eq!(inf, 1, "{hist} must have exactly one +Inf bucket");
        let mut prev = -1.0;
        for b in &buckets {
            let v = b.rsplit_once(' ').unwrap().1.parse::<f64>().unwrap();
            assert!(v >= prev, "{hist} buckets must be cumulative: {b}");
            prev = v;
        }
        assert_eq!(sample(&format!("{hist}_count")), 2.0, "{hist}_count");
        assert!(sample(&format!("{hist}_sum")) >= 0.0, "{hist}_sum must ride along");
    }

    // The executor-pool and tracing sections ride along.
    for name in ["slcs_pool_jobs_executed_total", "slcs_trace_enabled"] {
        let _ = sample(name);
    }

    // Build metadata: the info-pattern gauge with the version label,
    // and the uptime gauge.
    assert!(
        lines.iter().any(|l| l.starts_with("slcs_build_info{version=\"") && l.ends_with("\"} 1")),
        "missing slcs_build_info info gauge"
    );
    assert!(sample("slcs_uptime_seconds") >= 0.0);

    // The allocator section: this test binary installs the instrumented
    // allocator, so the counters are live.
    assert_eq!(sample("slcs_alloc_installed"), 1.0);
    assert!(sample("slcs_alloc_allocations_total") > 0.0);
    assert!(sample("slcs_alloc_live_bytes") > 0.0);
    assert!(sample("slcs_alloc_peak_live_bytes") >= sample("slcs_alloc_live_bytes"));
    let inf_bucket = lines
        .iter()
        .find(|l| l.starts_with("slcs_alloc_size_bytes_bucket{le=\"+Inf\"}"))
        .expect("size-class histogram has a +Inf bucket")
        .rsplit_once(' ')
        .unwrap()
        .1
        .parse::<f64>()
        .unwrap();
    assert_eq!(inf_bucket, sample("slcs_alloc_size_bytes_count"));

    assert_eq!(client.round_trip("QUIT"), "OK bye");
    handle.stop();
}

#[test]
fn dispatch_reasons_reach_the_metrics_exposition_over_tcp() {
    let engine = small_engine();
    let handle = serve("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr());

    // A near-identical ≥ 64-byte pair: the similarity probe must route
    // this EDIT to the output-sensitive subsystem end to end.
    let a = "a".repeat(128);
    let b = format!("{}b", "a".repeat(127));
    assert_eq!(client.round_trip(&format!("EDIT {a} {b}")), "OK 1");
    // A bounded EDIT and a small-alphabet LCS land in two more buckets.
    assert_eq!(client.round_trip(&format!("EDIT {a} {b} k=0")), "OK gt 0");
    assert_eq!(client.round_trip("LCS abcabba cbabac"), "OK 4 bitpar bypass");

    let lines = client.metrics();
    assert!(
        lines.iter().any(|l| l == "# TYPE slcs_dispatch_total counter"),
        "missing dispatch TYPE header"
    );
    let series = |labels: &str| {
        lines
            .iter()
            .find(|l| l.starts_with(&format!("slcs_dispatch_total{{{labels}}}")))
            .unwrap_or_else(|| panic!("no slcs_dispatch_total series with {labels}"))
            .rsplit_once(' ')
            .expect("sample line must have a value")
            .1
            .parse::<f64>()
            .expect("numeric value")
    };
    assert_eq!(series("algo=\"osed\",reason=\"edit_similar\""), 1.0);
    assert_eq!(series("algo=\"osed\",reason=\"edit_bounded\""), 1.0);
    assert_eq!(series("algo=\"bitpar\",reason=\"small_alphabet\""), 1.0);
    // Untaken branches still expose a zero-valued series each.
    assert_eq!(series("algo=\"edit\",reason=\"edit_dissimilar\""), 0.0);
    assert_eq!(series("algo=\"cached\",reason=\"cache_hit\""), 0.0);
    assert_eq!(lines.iter().filter(|l| l.starts_with("slcs_dispatch_total{")).count(), 9);

    // The STATS line carries the same counters in its compact form.
    let stats = client.round_trip("STATS");
    assert!(stats.contains(" dispatch="), "{stats}");
    assert!(stats.contains("edit_similar:1"), "{stats}");
    assert!(stats.contains("edit_bounded:1"), "{stats}");

    assert_eq!(client.round_trip("QUIT"), "OK bye");
    handle.stop();
}

#[test]
fn trace_on_dump_round_trip_over_tcp() {
    let _guard = slcs_trace::test_support::hold();
    let engine = small_engine();
    let handle = serve("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr());

    assert_eq!(client.round_trip("TRACE on"), "OK tracing on");
    assert_eq!(client.round_trip("LCS abcabba cbabac"), "OK 4 bitpar bypass");
    assert_eq!(client.round_trip("TRACE off"), "OK tracing off");

    let dump = client.round_trip("TRACE dump");
    let json = dump.strip_prefix("OK ").expect("dump starts with OK ");
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.ends_with('}'), "dump must be a single JSON line: {json}");
    for span in ["engine.submit", "engine.request", "engine.dispatch"] {
        assert!(json.contains(&format!("\"name\":\"{span}\"")), "missing {span} in {json}");
    }
    // Chrome-trace metadata: the process name and per-thread dropped
    // counter events are part of every export.
    assert!(json.contains("\"name\":\"process_name\""), "{json}");
    assert!(json.contains("\"name\":\"slcsDroppedEvents\""), "{json}");
    assert!(client.round_trip("TRACE sideways").starts_with("ERR usage"));

    assert_eq!(client.round_trip("QUIT"), "OK bye");
    handle.stop();
}

#[test]
fn trace_command_can_be_disabled_by_config() {
    let engine = small_engine();
    let config = ServerConfig { allow_trace: false, ..ServerConfig::default() };
    let handle = serve("127.0.0.1:0", engine, config).expect("bind");
    let mut client = Client::connect(handle.addr());

    for cmd in ["TRACE on", "TRACE off", "TRACE dump"] {
        assert_eq!(client.round_trip(cmd), "ERR tracing disabled");
    }
    // Metrics and stats stay available on a trace-gated server.
    assert_eq!(client.metrics().last().map(String::as_str), Some("# EOF"));
    assert!(client.round_trip("STATS").starts_with("OK submitted="));

    assert_eq!(client.round_trip("QUIT"), "OK bye");
    handle.stop();
}
