//! Stress tests for the vendored rayon executor: the persistent worker
//! pool, nested `join` under tight budgets, concurrent `install` scopes,
//! panic propagation, and the team/barrier extension.
//!
//! These deliberately run unconstrained (`RUST_TEST_THREADS` is *not*
//! pinned for this binary in CI) so the scenarios genuinely overlap.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Reference sum used by the recursive join workloads.
fn expected_sum(n: u64) -> u64 {
    (0..n).sum()
}

fn join_sum(lo: u64, hi: u64, fanout_below: u64) -> u64 {
    if hi - lo <= fanout_below {
        (lo..hi).sum()
    } else {
        let mid = lo + (hi - lo) / 2;
        let (a, b) =
            rayon::join(|| join_sum(lo, mid, fanout_below), || join_sum(mid, hi, fanout_below));
        a + b
    }
}

#[test]
fn nested_joins_under_two_thread_budget() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    // Deep recursion: forks far outnumber the budget, so most joins run
    // sequentially and the rest drain through the shared pool — the test
    // is that this neither deadlocks nor loses work.
    let total = pool.install(|| join_sum(0, 200_000, 64));
    assert_eq!(total, expected_sum(200_000));
}

#[test]
fn concurrent_installs_from_eight_threads() {
    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let done = &done;
            scope.spawn(move || {
                let pool = rayon::ThreadPoolBuilder::new().num_threads(1 + t % 4).build().unwrap();
                let total = pool.install(|| join_sum(0, 50_000, 128));
                assert_eq!(total, expected_sum(50_000));
                assert_eq!(pool.install(rayon::current_num_threads), 1 + t % 4);
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(done.load(Ordering::Relaxed), 8);
}

#[test]
fn panic_in_forked_arm_propagates_and_pool_survives() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let before = rayon::pool_spawned_workers();
    for round in 0..16 {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                rayon::join(
                    || 1 + 1,
                    || {
                        if round % 2 == 0 {
                            panic!("forked arm panic {round}");
                        }
                        0
                    },
                )
            })
        }));
        if round % 2 == 0 {
            assert!(caught.is_err(), "round {round} should panic");
        } else {
            assert_eq!(caught.unwrap(), (2, 0));
        }
    }
    // Workers are persistent: a panicking task must not kill or leak
    // them. The pool can only have grown toward the budget, never past
    // the process-wide high-water mark plus this pool's budget.
    let after = rayon::pool_spawned_workers();
    assert!(after >= before);
    assert!(after <= before + 4, "worker leak: {before} -> {after}");
    // ... and the pool still computes correct results afterwards.
    assert_eq!(pool.install(|| join_sum(0, 10_000, 32)), expected_sum(10_000));
}

#[test]
fn panic_in_first_arm_wins_and_second_arm_completes() {
    // A ≥2-thread budget forces the forked path: the second arm is
    // published to the pool before the first arm panics, so `join` must
    // wait for it even while unwinding. (Under a budget of 1, `join`
    // degrades to sequential and the second arm legitimately never runs.)
    let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let ran_b = AtomicUsize::new(0);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            rayon::join(
                || panic!("arm a"),
                || {
                    ran_b.fetch_add(1, Ordering::Relaxed);
                },
            )
        })
    }));
    let payload = caught.unwrap_err();
    assert_eq!(payload.downcast_ref::<&str>(), Some(&"arm a"));
    assert_eq!(ran_b.load(Ordering::Relaxed), 1, "second arm must still run to completion");
}

#[test]
fn parallel_iterators_survive_a_panic_storm() {
    use rayon::prelude::*;
    let pool = rayon::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            (0..1000usize).into_par_iter().with_min_len(16).for_each(|i| {
                if i == 613 {
                    panic!("chunk panic");
                }
            })
        })
    }));
    assert!(caught.is_err());
    let sum: usize = pool.install(|| (0..1000usize).into_par_iter().with_min_len(16).sum());
    assert_eq!(sum, 1000 * 999 / 2);
}

#[test]
fn team_run_panic_poisons_and_rethrows() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            rayon::team_run(4, |view| {
                if !view.barrier() {
                    return;
                }
                if view.id == 0 {
                    panic!("leader panic");
                }
                // Members spin on the next barrier until the poison flag
                // releases them.
                let _ = view.barrier();
            })
        })
    }));
    assert!(caught.is_err(), "team panic must reach the caller");
    // The team machinery is reusable after a poisoned run.
    let hits = AtomicUsize::new(0);
    pool.install(|| {
        rayon::team_run(3, |view| {
            for _ in 0..10 {
                hits.fetch_add(1, Ordering::Relaxed);
                if !view.barrier() {
                    return;
                }
            }
        })
    });
    assert_eq!(hits.load(Ordering::Relaxed) % 10, 0);
    assert!(hits.load(Ordering::Relaxed) >= 10);
}

#[test]
fn concurrent_team_runs_do_not_interfere() {
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
                for _ in 0..20 {
                    let total = AtomicUsize::new(0);
                    pool.install(|| {
                        rayon::team_run(2, |view| {
                            for step in 0..8 {
                                total.fetch_add(view.id + step, Ordering::Relaxed);
                                if !view.barrier() {
                                    return;
                                }
                            }
                        })
                    });
                    let size_witness = total.load(Ordering::Relaxed);
                    // Each member adds sum(0..8) = 28 plus 8 * id; with
                    // team size s the total is 28 s + 8 * s(s-1)/2.
                    assert!(
                        (1..=2).any(|s| size_witness == 28 * s + 8 * (s * (s - 1) / 2)),
                        "inconsistent team accounting: {size_witness}"
                    );
                }
            });
        }
    });
}

#[test]
fn executor_counters_stay_consistent_under_stress() {
    let before = rayon::pool_stats();
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let total = pool.install(|| join_sum(0, 100_000, 64));
    assert_eq!(total, expected_sum(100_000));
    for _ in 0..8 {
        pool.install(|| {
            rayon::team_run(3, |view| {
                std::hint::black_box(view.id);
                let _ = view.barrier();
            })
        });
    }
    let after = rayon::pool_stats();

    // Deltas: this workload injected plenty of jobs and exactly eight
    // team runs (other tests may add more concurrently, never less).
    assert!(after.jobs_executed > before.jobs_executed, "no jobs counted: {after:?}");
    assert!(after.team_runs >= before.team_runs + 8, "team runs lost: {before:?} -> {after:?}");

    // Global invariants that hold at any snapshot: a job is executed
    // only after its acquisition was counted (injector pop, local deque
    // hit, or steal — same thread, in order), and every unpark follows
    // the park it wakes from.
    assert!(
        after.injector_pops + after.local_hits + after.steals >= after.jobs_executed,
        "more executions than acquisitions: {after:?}"
    );
    // Every deque entry is delivered at most once: local hits and
    // steals both drain what pushes put in.
    assert!(
        after.deque_pushes >= after.local_hits + after.steals,
        "deque delivered more than was pushed: {after:?}"
    );
    assert!(after.parks >= after.unparks, "more unparks than parks: {after:?}");
}
