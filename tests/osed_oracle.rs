//! Oracle tests for the output-sensitive edit-distance subsystem
//! (`slcs-osed`): the Landau–Vishkin diagonal BFS — sequential,
//! parallel, and bounded — against the O(nm) DP reference, against the
//! LCS algorithms via the classical distance/LCS identities, and on the
//! boundary shapes the BFS window arithmetic has to survive.

use proptest::prelude::*;

use semilocal_suite::baselines::{edit_distance as dp_edit_distance, prefix_rowmajor};
use semilocal_suite::datagen::{
    mutate_symbols, seeded_rng, similar_pair, uniform_string, MutationModel,
};
use semilocal_suite::osed::{
    edit_distance, edit_distance_bounded, par_edit_distance, par_edit_distance_grain,
};

fn arb_string(max_len: usize, sigma: u8) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0..sigma, 0..=max_len)
}

/// A near-identical pair at one of the similarity levels the dispatcher
/// routes to osed, plus arbitrary-seed determinism.
fn similar_inputs(max_len: usize) -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (64..=max_len, 0u64..1 << 32, 0usize..3).prop_map(|(len, seed, which)| {
        let p = [0.002, 0.01, 0.05][which];
        similar_pair(&mut seeded_rng(seed), len, 4, p)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- the DP reference is the ground truth ----------------------

    #[test]
    fn bfs_matches_dp_on_arbitrary_strings(
        a in arb_string(64, 4), b in arb_string(64, 4)
    ) {
        prop_assert_eq!(edit_distance(&a, &b), dp_edit_distance(&a, &b));
    }

    #[test]
    fn bfs_matches_dp_on_similar_pairs((a, b) in similar_inputs(512)) {
        prop_assert_eq!(edit_distance(&a, &b), dp_edit_distance(&a, &b));
    }

    // --- parallel and bounded variants are bit-equivalent ----------

    #[test]
    fn parallel_bfs_is_bit_equivalent(
        (a, b) in similar_inputs(512), grain in 1usize..64
    ) {
        let d = edit_distance(&a, &b);
        prop_assert_eq!(par_edit_distance(&a, &b), d);
        // A tiny grain forces real per-round splits even on small inputs.
        prop_assert_eq!(par_edit_distance_grain(&a, &b, grain), d);
    }

    #[test]
    fn bounded_bfs_is_exact_at_the_bound_and_none_below(
        a in arb_string(48, 4), b in arb_string(48, 4), slack in 0usize..4
    ) {
        let d = edit_distance(&a, &b);
        prop_assert_eq!(edit_distance_bounded(&a, &b, d + slack), Some(d));
        if d > 0 {
            prop_assert_eq!(edit_distance_bounded(&a, &b, d - 1), None);
        }
    }

    // --- consistency with the LCS half of the workspace ------------

    #[test]
    fn distance_is_sandwiched_by_the_lcs_identities(
        a in arb_string(64, 3), b in arb_string(64, 3)
    ) {
        // Unit-cost substitutions make Levenshtein at most the
        // indel-only distance n + m − 2·lcs and at least the
        // length-vs-subsequence bound max(n, m) − lcs.
        let lcs = prefix_rowmajor(&a, &b);
        let d = edit_distance(&a, &b);
        prop_assert!(d <= a.len() + b.len() - 2 * lcs);
        prop_assert!(d >= a.len().max(b.len()) - lcs);
    }

    #[test]
    fn deletion_only_pairs_hit_the_lcs_identity_exactly(
        seed in 0u64..1 << 32, len in 32usize..256
    ) {
        // When `b` is a subsequence of `a`, lcs = |b| and the optimal
        // alignment is pure deletion, so ed = n + m − 2·lcs exactly.
        let mut rng = seeded_rng(seed);
        let a = uniform_string(&mut rng, len, 4);
        let model = MutationModel { substitution: 0.0, insertion: 0.0, deletion: 0.1 };
        let b = mutate_symbols(&mut rng, &a, &model, 4);
        prop_assert_eq!(prefix_rowmajor(&a, &b), b.len());
        prop_assert_eq!(edit_distance(&a, &b), a.len() + b.len() - 2 * b.len());
    }
}

// --- boundary shapes ---------------------------------------------------

#[test]
fn empty_and_equal_inputs() {
    assert_eq!(edit_distance(b"", b""), 0);
    assert_eq!(edit_distance(b"", b"abc"), 3);
    assert_eq!(edit_distance(b"abc", b""), 3);
    assert_eq!(par_edit_distance(b"", b"abc"), 3);
    assert_eq!(edit_distance_bounded(b"", b"abc", 2), None);
    assert_eq!(edit_distance_bounded(b"", b"abc", 3), Some(3));
    let long = vec![7u8; 1000];
    assert_eq!(edit_distance(&long, &long), 0);
    assert_eq!(edit_distance_bounded(&long, &long, 0), Some(0));
}

#[test]
fn disjoint_alphabets_cost_one_substitution_per_overlap() {
    // No symbol ever matches, so the best alignment substitutes along
    // the shorter string and inserts the rest: max(n, m) edits.
    for (n, m) in [(1usize, 1usize), (5, 5), (3, 9), (40, 17)] {
        let a = vec![1u8; n];
        let b = vec![2u8; m];
        assert_eq!(edit_distance(&a, &b), n.max(m), "{n} vs {m}");
        assert_eq!(par_edit_distance(&a, &b), n.max(m));
        assert_eq!(dp_edit_distance(&a, &b), n.max(m));
    }
}

/// The `m + n = 2^16` boundary: ranks and diagonal ids stay well inside
/// `u32`/`i32`, the BFS window never indexes out of the frontier, and
/// the parallel variant agrees with sequential at a size where rounds
/// genuinely split. (The DP oracle is a thousand times too slow here;
/// substitution-only mutation pins the length so hamming distance is an
/// upper bound and the length gap a lower one.)
#[test]
fn two_power_sixteen_total_length_is_exact() {
    let mut rng = seeded_rng(95);
    let a = uniform_string(&mut rng, 1 << 15, 4);
    let model = MutationModel { substitution: 0.002, insertion: 0.0, deletion: 0.0 };
    let b = mutate_symbols(&mut rng, &a, &model, 4);
    assert_eq!(a.len() + b.len(), 1 << 16);
    let hamming = a.iter().zip(&b).filter(|(x, y)| x != y).count();
    let d = edit_distance(&a, &b);
    assert!(d <= hamming, "{d} > hamming {hamming}");
    assert_eq!(par_edit_distance(&a, &b), d);
    assert_eq!(edit_distance_bounded(&a, &b, d), Some(d));
    if d > 0 {
        assert_eq!(edit_distance_bounded(&a, &b, d - 1), None);
    }
}
