//! Exhaustive validation on *all* small inputs: every pair of binary
//! strings up to length 5 (4 095 pairs), through every combing algorithm
//! and LCS implementation. Exhaustive beats random at flushing out
//! boundary conditions (empty strings, single cells, all-match rows).

use semilocal_suite::baselines::{cipr_lcs, hyyro_lcs, prefix_antidiag, prefix_rowmajor};
use semilocal_suite::bitpar::{bit_lcs_new1, bit_lcs_new2, bit_lcs_old};
use semilocal_suite::semilocal::reference::BruteHMatrix;
use semilocal_suite::semilocal::{
    antidiag_combing, antidiag_combing_branchless, antidiag_combing_u16, grid_hybrid_combing,
    hybrid_combing, iterative_combing, load_balanced_combing, recursive_combing, EditDistances,
};

/// All binary strings of length 0..=max_len.
fn all_binary_strings(max_len: usize) -> Vec<Vec<u8>> {
    let mut out = vec![vec![]];
    for len in 1..=max_len {
        for bits in 0..(1u32 << len) {
            out.push((0..len).map(|i| ((bits >> i) & 1) as u8).collect());
        }
    }
    out
}

#[test]
fn every_comber_agrees_on_all_binary_pairs_up_to_len5() {
    let strings = all_binary_strings(5);
    for a in &strings {
        for b in &strings {
            let reference = iterative_combing(a, b);
            assert_eq!(recursive_combing(a, b), reference, "recursive a={a:?} b={b:?}");
            assert_eq!(antidiag_combing(a, b), reference, "antidiag a={a:?} b={b:?}");
            assert_eq!(antidiag_combing_branchless(a, b), reference, "branchless a={a:?} b={b:?}");
            assert_eq!(antidiag_combing_u16(a, b), reference, "u16 a={a:?} b={b:?}");
            assert_eq!(load_balanced_combing(a, b), reference, "load_balanced a={a:?} b={b:?}");
            assert_eq!(hybrid_combing(a, b, 4), reference, "hybrid a={a:?} b={b:?}");
            assert_eq!(grid_hybrid_combing(a, b, 3), reference, "grid_hybrid a={a:?} b={b:?}");
        }
    }
}

#[test]
fn every_lcs_agrees_on_all_binary_pairs_up_to_len5() {
    let strings = all_binary_strings(5);
    for a in &strings {
        for b in &strings {
            let want = prefix_rowmajor(a, b);
            assert_eq!(prefix_antidiag(a, b), want, "antidiag a={a:?} b={b:?}");
            assert_eq!(cipr_lcs(a, b), want, "cipr a={a:?} b={b:?}");
            assert_eq!(hyyro_lcs(a, b), want, "hyyro a={a:?} b={b:?}");
            assert_eq!(bit_lcs_old(a, b), want, "bit_old a={a:?} b={b:?}");
            assert_eq!(bit_lcs_new1(a, b), want, "bit_new1 a={a:?} b={b:?}");
            assert_eq!(bit_lcs_new2(a, b), want, "bit_new2 a={a:?} b={b:?}");
        }
    }
}

#[test]
fn full_h_matrix_on_all_pairs_up_to_len4() {
    let strings = all_binary_strings(4);
    for a in &strings {
        for b in &strings {
            let brute = BruteHMatrix::new(a, b);
            let scores = iterative_combing(a, b).index();
            let size = a.len() + b.len();
            for i in 0..=size {
                for j in 0..=size {
                    assert_eq!(scores.h(i, j), brute.get(i, j), "H[{i},{j}] a={a:?} b={b:?}");
                }
            }
        }
    }
}

#[test]
fn edit_distances_on_all_pairs_up_to_len4() {
    fn edit_dp(a: &[u8], b: &[u8]) -> usize {
        let n = b.len();
        let mut prev: Vec<u32> = (0..=n as u32).collect();
        let mut cur = vec![0u32; n + 1];
        for (i, ac) in a.iter().enumerate() {
            cur[0] = i as u32 + 1;
            for (j, bc) in b.iter().enumerate() {
                let sub = prev[j] + u32::from(ac != bc);
                cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[n] as usize
    }
    let strings = all_binary_strings(4);
    for a in &strings {
        for b in &strings {
            let d = EditDistances::new(a, b);
            for i in 0..=b.len() {
                for j in i..=b.len() {
                    assert_eq!(
                        d.distance(i, j),
                        edit_dp(a, &b[i..j]),
                        "edit [{i},{j}) a={a:?} b={b:?}"
                    );
                }
            }
        }
    }
}
