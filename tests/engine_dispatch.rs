//! Property tests for the engine's adaptive dispatch: whatever
//! algorithm [`choose`]/[`execute`] pick for a request — bit-parallel,
//! sequential combing, parallel combing, or a cached kernel — the
//! answer must equal the reference oracle, and repeat execution through
//! the cache must be bit-identical to the first.

use proptest::prelude::*;

use semilocal_suite::baselines::{edit_distance, prefix_rowmajor};
use semilocal_suite::engine::{
    choose, execute, AlgoChoice, CacheStatus, CompareRequest, KernelCache, Metrics, Operation,
    Payload,
};

fn arb_string(max_len: usize, sigma: u8) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0..sigma, 1..=max_len)
}

fn arb_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    // Alphabet sizes straddling the bit-parallel cutoff would need
    // σ > 64; strings this short never exceed their own length, so the
    // small-alphabet LCS path and the combing paths are both reached
    // via the threads/size axis instead.
    (2u8..8).prop_flat_map(|sigma| (arb_string(40, sigma), arb_string(40, sigma)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lcs_dispatch_matches_oracle((a, b) in arb_pair(), threads in 1usize..8) {
        let cache = KernelCache::new(8);
        let metrics = Metrics::default();
        let req = CompareRequest::new(&a[..], &b[..], Operation::Lcs);
        let (payload, algo, _) = execute(&req, &cache, &metrics, threads);
        prop_assert_eq!(payload, Payload::Score(prefix_rowmajor(&a, &b)));
        // The executed algorithm is the planned one (cold cache).
        prop_assert_eq!(algo, choose(&Operation::Lcs, &a, &b, threads));
    }

    #[test]
    fn window_dispatch_matches_per_window_oracle(
        (a, b) in arb_pair(),
        wf in 0.1f64..1.0,
        threads in 1usize..8,
    ) {
        let w = ((b.len() as f64 * wf) as usize).clamp(1, b.len());
        let cache = KernelCache::new(8);
        let metrics = Metrics::default();
        let req = CompareRequest::new(&a[..], &b[..], Operation::Windows { w });
        let (payload, _, status) = execute(&req, &cache, &metrics, threads);
        let Payload::Windows { scores, best } = payload.clone() else {
            return Err(TestCaseError::Fail("wrong payload".into()));
        };
        prop_assert_eq!(status, CacheStatus::Miss);
        prop_assert_eq!(scores.len(), b.len() - w + 1);
        for (i, &s) in scores.iter().enumerate() {
            prop_assert_eq!(s, prefix_rowmajor(&a, &b[i..i + w]));
        }
        prop_assert_eq!(best.1, *scores.iter().max().unwrap());
        prop_assert_eq!(scores[best.0], best.1);
        // Re-execution hits the cache and is bit-identical.
        let (again, algo, status) = execute(&req, &cache, &metrics, threads);
        prop_assert_eq!(status, CacheStatus::Hit);
        prop_assert_eq!(algo, AlgoChoice::CachedKernel);
        prop_assert_eq!(again, payload);
    }

    #[test]
    fn edit_dispatch_matches_oracle((a, b) in arb_pair(), threads in 1usize..8) {
        let cache = KernelCache::new(8);
        let metrics = Metrics::default();
        let req = CompareRequest::new(&a[..], &b[..], Operation::Edit { w: None });
        let (payload, _, _) = execute(&req, &cache, &metrics, threads);
        prop_assert_eq!(
            payload,
            Payload::Edit { global: edit_distance(&a, &b), best: None }
        );
    }

    #[test]
    fn choice_is_consistent_with_inputs((a, b) in arb_pair(), threads in 1usize..8) {
        // Score-only requests on byte alphabets ≤ 64 symbols always take
        // the bit-parallel path; kernel operations never do.
        prop_assert_eq!(choose(&Operation::Lcs, &a, &b, threads), AlgoChoice::BitParallel);
        let windows = choose(&Operation::Windows { w: 1 }, &a, &b, threads);
        prop_assert!(!matches!(windows, AlgoChoice::BitParallel | AlgoChoice::EditIndex));
        prop_assert_eq!(
            choose(&Operation::Edit { w: None }, &a, &b, threads),
            AlgoChoice::EditIndex
        );
    }
}

#[test]
fn large_alphabet_scores_fall_back_to_combing() {
    // 200 distinct byte values > BITPAR_MAX_SIGMA: the score-only plan
    // must switch to a combing variant, and still match the oracle.
    let a: Vec<u8> = (0..200u8).collect();
    let b: Vec<u8> = (0..200u8).rev().collect();
    let algo = choose(&Operation::Lcs, &a, &b, 1);
    assert_eq!(algo, AlgoChoice::IterativeCombing);
    let cache = KernelCache::new(4);
    let metrics = Metrics::default();
    let req = CompareRequest::new(&a[..], &b[..], Operation::Lcs);
    let (payload, algo, status) = execute(&req, &cache, &metrics, 1);
    assert_eq!(payload, Payload::Score(prefix_rowmajor(&a, &b)));
    assert_eq!(algo, AlgoChoice::IterativeCombing);
    assert_eq!(status, CacheStatus::Miss);
    // The comb it paid for is reusable: a window scan now hits.
    let req = CompareRequest::new(&a[..], &b[..], Operation::Windows { w: 100 });
    let (_, algo, status) = execute(&req, &cache, &metrics, 1);
    assert_eq!(algo, AlgoChoice::CachedKernel);
    assert_eq!(status, CacheStatus::Hit);
}

#[test]
fn parallel_comb_is_chosen_and_correct_on_large_grids() {
    use semilocal_suite::datagen::{seeded_rng, uniform_string};
    let mut rng = seeded_rng(3);
    let a = uniform_string(&mut rng, 300, 100); // σ ≈ 100 > 64 forces combing
    let b = uniform_string(&mut rng, 300, 100);
    assert_eq!(choose(&Operation::Lcs, &a, &b, 4), AlgoChoice::GridHybridCombing { tasks: 4 });
    let cache = KernelCache::new(4);
    let metrics = Metrics::default();
    let req = CompareRequest::new(&a[..], &b[..], Operation::Lcs);
    let (payload, algo, _) = execute(&req, &cache, &metrics, 4);
    assert_eq!(payload, Payload::Score(prefix_rowmajor(&a, &b)));
    assert_eq!(algo, AlgoChoice::GridHybridCombing { tasks: 4 });
}
