//! Cross-validation on adversarial structured inputs: maximal repetition
//! (Fibonacci words, periodic strings, constant runs) and skewed
//! alphabets — the regimes where branch behaviour and the
//! crossed-before bookkeeping are most stressed.

use semilocal_suite::baselines::prefix_rowmajor;
use semilocal_suite::bitpar::{bit_lcs_alphabet, bit_lcs_new2};
use semilocal_suite::datagen::{
    constant_string, fibonacci_string, periodic_string, seeded_rng, zipf_string,
};
use semilocal_suite::semilocal::{
    antidiag_combing_branchless, grid_hybrid_combing, iterative_combing, load_balanced_combing,
};

fn check_pair(a: &[u8], b: &[u8], label: &str) {
    let reference = iterative_combing(a, b);
    assert_eq!(antidiag_combing_branchless(a, b), reference, "{label}: branchless");
    assert_eq!(load_balanced_combing(a, b), reference, "{label}: load balanced");
    assert_eq!(grid_hybrid_combing(a, b, 4), reference, "{label}: grid hybrid");
    let want = prefix_rowmajor(a, b);
    assert_eq!(reference.lcs(), want, "{label}: kernel lcs");
    assert_eq!(bit_lcs_alphabet(a, b), want, "{label}: bit alphabet");
    if a.iter().chain(b).all(|&c| c <= 1) {
        assert_eq!(bit_lcs_new2(a, b), want, "{label}: bit binary");
    }
}

#[test]
fn fibonacci_words() {
    let a = fibonacci_string(233);
    let b = fibonacci_string(144);
    check_pair(&a, &b, "fib vs fib");
    // LCS of Fibonacci prefixes is the shorter one (prefix property)
    assert_eq!(prefix_rowmajor(&a, &b), 144);
    let mut rng = seeded_rng(1);
    let r = semilocal_suite::datagen::binary_string(&mut rng, 200);
    check_pair(&a, &r, "fib vs random");
}

#[test]
fn periodic_against_shifted_periodic() {
    let a = periodic_string(b"abca", 160);
    let b = periodic_string(b"bcaa", 120);
    check_pair(&a, &b, "periodic");
    let c = periodic_string(b"ab", 100);
    let d = periodic_string(b"ba", 100);
    check_pair(&c, &d, "period 2, shifted");
    // the two length-100 strings of period 2 share a 99-subsequence
    assert_eq!(prefix_rowmajor(&c, &d), 99);
}

#[test]
fn constant_runs_and_disjoint_alphabets() {
    let zeros = constant_string(0, 150);
    let ones = constant_string(1, 130);
    check_pair(&zeros, &zeros, "all match square");
    check_pair(&zeros, &ones, "never match");
    assert_eq!(prefix_rowmajor(&zeros, &ones), 0);
    let mixed = periodic_string(&[0, 0, 0, 1], 140);
    check_pair(&zeros, &mixed, "run vs sparse");
}

#[test]
fn zipf_skew_sweep() {
    let mut rng = seeded_rng(2);
    for s in [0.0f64, 1.0, 2.5] {
        let a = zipf_string(&mut rng, 180, 6, s);
        let b = zipf_string(&mut rng, 150, 6, s);
        check_pair(&a, &b, &format!("zipf s={s}"));
    }
}
