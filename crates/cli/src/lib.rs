//! Implementation of the `slcs` command-line tool: argument parsing and
//! the subcommands, kept in a library so they are unit-testable.
//!
//! Subcommands:
//!
//! * `lcs A B` — LCS score (and optionally one witness) of two inputs;
//! * `scan PATTERN TEXT` — semi-local window scan: best windows of the
//!   pattern's length, or `--window W`, with `--min-similarity`;
//! * `edit PATTERN TEXT` — edit-distance window scan;
//! * `cluster FILE...` — LCS-distance clustering of FASTA records;
//! * `braid A B` — draw the reduced sticky braid of a small comparison;
//! * `serve` — run the comparison engine behind a TCP line protocol;
//! * `top` — live terminal dashboard over a serving engine: HEALTH
//!   verdict, throughput counters and rolling-window p99s, polled over
//!   the TCP protocol;
//! * `audit` — dump the serving engine's flight recorder: newest or
//!   slowest audit records, filtered by class or dispatch reason, plus
//!   the slow-request trace exemplars;
//! * `bench-engine` — offline throughput run against the engine;
//! * `trace` — run any other subcommand with tracing on and export the
//!   recorded timeline (Chrome-tracing JSON or a plain-text tree);
//! * `bench-obs` — measure the observability tax: the same wavefront
//!   sweep with instrumentation compiled out, disabled, and enabled;
//! * `bench-mem` — allocation profile of steady-ant multiplication:
//!   the memory-optimized workspace vs the per-level-allocating basic
//!   recursion (allocation counts, peak live bytes, wall time);
//! * `bench-osed` — output-sensitive edit distance (`slcs-osed`) vs the
//!   full-grid paths across a similarity × size sweep: the BFS should
//!   win by orders of magnitude on nearly identical inputs.
//!
//! Global flags (before the subcommand): `--version`, `--threads N`
//! (sizes the global rayon pool used by the parallel algorithms).
//!
//! Inputs are literal strings, or files with `@path` / FASTA via
//! `--fasta`.

use std::fmt::Write as _;

use slcs_apps::{average_linkage, distance_matrix, ApproxMatcher, Dendrogram};
use slcs_baselines::{hirschberg_lcs, prefix_rowmajor};
use slcs_datagen::read_fasta_file;
use slcs_semilocal::EditDistances;

/// Errors surfaced to the user with exit code 2.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Resolves an input operand: `@path` reads a file (first FASTA record if
/// the file starts with `>`, raw bytes otherwise); anything else is a
/// literal.
pub fn resolve_input(operand: &str) -> Result<Vec<u8>, CliError> {
    if let Some(path) = operand.strip_prefix('@') {
        let bytes = std::fs::read(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
        if bytes.first() == Some(&b'>') {
            let records = read_fasta_file(path)
                .map_err(|e| err(format!("cannot parse FASTA {path}: {e}")))?;
            let first = records.into_iter().next().ok_or_else(|| err("empty FASTA file"))?;
            Ok(first.sequence)
        } else {
            // trim a single trailing newline from raw text files
            let mut bytes = bytes;
            while bytes.last() == Some(&b'\n') || bytes.last() == Some(&b'\r') {
                bytes.pop();
            }
            Ok(bytes)
        }
    } else {
        Ok(operand.as_bytes().to_vec())
    }
}

/// Parses `--flag value` style options out of an operand list.
pub struct Options {
    pub positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Options {
    pub fn parse(args: &[String], value_flags: &[&str]) -> Result<Options, CliError> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if value_flags.contains(&name) {
                    let v = it.next().ok_or_else(|| err(format!("--{name} requires a value")))?;
                    flags.push((name.to_string(), Some(v.clone())));
                } else {
                    flags.push((name.to_string(), None));
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Options { positional, flags })
    }

    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    pub fn value(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    pub fn value_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.value(name) {
            None => Ok(None),
            Some(v) => {
                v.parse().map(Some).map_err(|_| err(format!("invalid value for --{name}: {v}")))
            }
        }
    }
}

/// Global options parsed off the front of the argument list, before the
/// subcommand.
pub struct GlobalOpts {
    /// `--version`: print the version string and exit.
    pub version: bool,
    /// `--threads N`: size of the global rayon pool.
    pub threads: Option<usize>,
}

/// Splits leading global flags (`--version`, `--threads N`) from the
/// subcommand and its arguments.
pub fn parse_global(args: &[String]) -> Result<(GlobalOpts, Vec<String>), CliError> {
    let mut global = GlobalOpts { version: false, threads: None };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.peek() {
        match arg.as_str() {
            "--version" | "-V" => {
                global.version = true;
                it.next();
            }
            "--threads" => {
                it.next();
                let v = it.next().ok_or_else(|| err("--threads requires a value"))?;
                let n: usize =
                    v.parse().map_err(|_| err(format!("invalid value for --threads: {v}")))?;
                if n == 0 {
                    return Err(err("--threads must be at least 1"));
                }
                global.threads = Some(n);
            }
            _ => break,
        }
    }
    Ok((global, it.cloned().collect()))
}

/// The version string printed by `slcs --version`.
pub fn version_string() -> String {
    format!("slcs {} (semilocal-suite)", env!("CARGO_PKG_VERSION"))
}

/// Runs a subcommand; returns the text to print.
pub fn dispatch(cmd: &str, rest: &[String]) -> Result<String, CliError> {
    match cmd {
        "lcs" => cmd_lcs(rest),
        "scan" => cmd_scan(rest),
        "edit" => cmd_edit(rest),
        "cluster" => cmd_cluster(rest),
        "braid" => cmd_braid(rest),
        "serve" => cmd_serve(rest),
        "top" => cmd_top(rest),
        "audit" => cmd_audit(rest),
        "trace" => cmd_trace(rest),
        "bench-engine" => cmd_bench_engine(rest),
        "bench-baseline" => cmd_bench_baseline(rest),
        "tune" => cmd_tune(rest),
        "bench-obs" => cmd_bench_obs(rest),
        "bench-mem" => cmd_bench_mem(rest),
        "bench-osed" => cmd_bench_osed(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        "version" | "--version" | "-V" => Ok(format!("{}\n", version_string())),
        other => Err(err(format!("unknown command '{other}'\n{USAGE}"))),
    }
}

pub const USAGE: &str = "\
slcs — semi-local string comparison

usage:
  slcs [--version] [--threads N] COMMAND ...

  slcs lcs A B [--show]             LCS score (--show: one witness string)
  slcs scan PATTERN TEXT [--window W] [--min-similarity F] [--top K]
  slcs edit PATTERN TEXT [--window W]
  slcs cluster FILE.fasta... [--cut H]
  slcs braid A B                    ASCII sticky braid (small inputs)
  slcs serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
             [--no-trace] [--recorder N] [--window-slice MS]
             [--slo CLASS=US,...] [--slo-depth N] [--slo-budget PCT]
                                    engine behind a TCP line protocol
                                    (--no-trace disables the TRACE command;
                                    --recorder sizes the flight-recorder
                                    ring, 0 disables; --slo sets per-class
                                    p99 targets in µs for HEALTH and slow
                                    capture, e.g. lcs=50000,edit=200000)
  slcs top [--addr HOST:PORT] [--interval MS] [--count N]
                                    live dashboard over a serving engine:
                                    HEALTH verdict, request counters and
                                    rate, cache hit ratio, dispatch mix,
                                    pool steal counters, windowed p99s
                                    (--count 0 polls forever; default one
                                    snapshot)
  slcs audit [--addr HOST:PORT] [N | slowest [N] | class C [N]
             | reason R [N] | captures]
                                    dump the server's flight recorder
                                    (newest N records by default)
  slcs trace [--out FILE] [--format chrome|text] COMMAND ...
                                    run COMMAND with tracing on and export
                                    the timeline (chrome://tracing JSON
                                    with --out/--format chrome, plain-text
                                    span tree otherwise)
  slcs bench-engine [--requests N] [--pairs N] [--len N] [--sigma S]
                    [--trace FILE]  offline engine throughput run
  slcs bench-baseline [--quick] [--sizes N,N] [--threads N,N] [--grain N]
                      [--runs N] [--out FILE] [--trace FILE]
                                    anti-diagonal scheduling benchmark
                                    (seq / spawn / pool / team → ns/cell,
                                    JSON written to FILE, default
                                    BENCH_pool.json; --trace adds one
                                    traced pass and writes its timeline)
  slcs tune [--quick] [--sizes N,N] [--threads N,N] [--grains N,N]
            [--runs N] [--out FILE]   calibrate the scheduling cost model:
                                    measure every fixed parallel mode over
                                    a size x threads x grain sweep and
                                    write the winning (mode, grain) per
                                    regime as a tuning profile (default
                                    perf/tuning.json; Scheduling::Auto
                                    and the engine consult it, override
                                    path with SLCS_TUNING)
  slcs bench-obs [--quick] [--size N] [--threads N] [--grain N] [--runs N]
                 [--out FILE]       observability overhead benchmark
                                    (instrumentation compiled out vs
                                    disabled vs enabled; JSON to FILE,
                                    default BENCH_obs.json)
  slcs bench-mem [--quick] [--size N] [--mults N] [--runs N] [--out FILE]
                                    allocation profile of steady-ant
                                    multiplication: memory-optimized
                                    workspace vs per-level allocation
                                    (allocs, peak live bytes, wall time;
                                    JSON to FILE, default BENCH_mem.json)
  slcs bench-osed [--quick] [--sizes N,N] [--runs N] [--out FILE]
                                    output-sensitive edit distance vs the
                                    full-grid paths over a similarity
                                    (90/99/99.9%) x size sweep (millis,
                                    allocs, ratio; JSON to FILE, default
                                    BENCH_osed.json)

operands: literal strings, or @file (raw bytes, or FASTA if it starts with '>')";

fn cmd_lcs(rest: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(rest, &[])?;
    let [a, b] = two_operands(&opts)?;
    let score = prefix_rowmajor(&a, &b);
    let mut out = format!("LCS = {score} (|a| = {}, |b| = {})\n", a.len(), b.len());
    if opts.has("show") {
        let witness = hirschberg_lcs(&a, &b);
        // PANIC: fmt to String is infallible
        writeln!(out, "witness: {}", String::from_utf8_lossy(&witness)).unwrap();
    }
    Ok(out)
}

fn cmd_scan(rest: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(rest, &["window", "min-similarity", "top"])?;
    let [pattern, text] = two_operands(&opts)?;
    if pattern.is_empty() || text.is_empty() {
        return Err(err("scan requires non-empty pattern and text"));
    }
    let w: usize = opts.value_parsed("window")?.unwrap_or(pattern.len());
    if w > text.len() {
        return Err(err(format!("window {w} longer than text ({})", text.len())));
    }
    let min_sim: f64 = opts.value_parsed("min-similarity")?.unwrap_or(0.0);
    let top: usize = opts.value_parsed("top")?.unwrap_or(5);
    let matcher = ApproxMatcher::new(&pattern, &text);
    let min_score = (min_sim * pattern.len() as f64).ceil() as usize;
    let mut hits = matcher.find(w, min_score.max(1));
    hits.sort_by_key(|o| std::cmp::Reverse(o.score));
    hits.truncate(top);
    let mut out = format!(
        "pattern {} bp vs text {} bp, window {w}: {} hit(s)\n",
        pattern.len(),
        text.len(),
        hits.len()
    );
    for h in &hits {
        writeln!(
            out,
            "  [{:>8}..{:>8})  LCS {:>6}/{}  similarity {:.1}%",
            h.start,
            h.end,
            h.score,
            pattern.len(),
            100.0 * h.similarity(pattern.len())
        )
        .unwrap(); // PANIC: fmt to String is infallible
    }
    Ok(out)
}

fn cmd_edit(rest: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(rest, &["window"])?;
    let [pattern, text] = two_operands(&opts)?;
    if text.is_empty() {
        return Err(err("edit requires a non-empty text"));
    }
    let d = EditDistances::new(&pattern, &text);
    let mut out = format!("global edit distance = {}\n", d.global());
    let w: usize = opts.value_parsed("window")?.unwrap_or(pattern.len().min(text.len()));
    if w > 0 && w <= text.len() {
        let (s, e, dist) = d.best_window(w);
        // PANIC: fmt to String is infallible
        writeln!(out, "closest window of length {w}: [{s}..{e}) at distance {dist}").unwrap();
    }
    Ok(out)
}

fn cmd_cluster(rest: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(rest, &["cut"])?;
    if opts.positional.is_empty() {
        return Err(err("cluster requires at least one FASTA file"));
    }
    let cut: f64 = opts.value_parsed("cut")?.unwrap_or(0.25);
    let mut names = Vec::new();
    let mut seqs = Vec::new();
    for path in &opts.positional {
        let records = read_fasta_file(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
        for r in records {
            names.push(r.header.clone());
            seqs.push(r.sequence);
        }
    }
    if seqs.is_empty() {
        return Err(err("no sequences found"));
    }
    let matrix = distance_matrix(&seqs);
    let tree = average_linkage(&matrix);
    let mut out = format!("{} sequences\n", seqs.len());
    render_tree(&tree, &names, 0, &mut out);
    writeln!(out, "clusters at cut {cut}:").unwrap(); // PANIC: fmt to String is infallible
    for c in tree.cut(cut) {
        let members: Vec<&str> = c.iter().map(|&i| names[i].as_str()).collect();
        writeln!(out, "  {{{}}}", members.join(", ")).unwrap(); // PANIC: fmt to String is infallible
    }
    Ok(out)
}

fn render_tree(t: &Dendrogram, names: &[String], indent: usize, out: &mut String) {
    match t {
        Dendrogram::Leaf(i) => writeln!(out, "{}- {}", "  ".repeat(indent), names[*i]).unwrap(), // PANIC: fmt to String is infallible
        Dendrogram::Node { left, right, height } => {
            writeln!(out, "{}+ d = {height:.3}", "  ".repeat(indent)).unwrap(); // PANIC: fmt to String is infallible
            render_tree(left, names, indent + 1, out);
            render_tree(right, names, indent + 1, out);
        }
    }
}

fn cmd_braid(rest: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(rest, &[])?;
    let [a, b] = two_operands(&opts)?;
    if a.len() > 40 || b.len() > 60 {
        return Err(err("braid rendering is for small inputs (|a| ≤ 40, |b| ≤ 60)"));
    }
    Ok(semilocal_render(&a, &b))
}

/// Sticky braid rendering (same drawing as the facade's `render_braid`,
/// reimplemented here to keep the CLI crate's dependencies one-way).
fn semilocal_render(a: &[u8], b: &[u8]) -> String {
    let kernel = slcs_semilocal::iterative_combing(a, b);
    let mut out = String::new();
    let mut h_strands: Vec<u32> = (0..a.len() as u32).collect();
    let mut v_strands: Vec<u32> = (a.len() as u32..(a.len() + b.len()) as u32).collect();
    writeln!(out, "   {}", b.iter().map(|&c| format!(" {} ", c as char)).collect::<String>())
        .unwrap(); // PANIC: fmt to String is infallible
    for (i, &ac) in a.iter().enumerate() {
        let hi = a.len() - 1 - i;
        let mut h = h_strands[hi];
        let mut top = String::new();
        let mut bot = String::new();
        for (j, &bc) in b.iter().enumerate() {
            let v = v_strands[j];
            if ac == bc || h > v {
                top.push_str("─╮ ");
                bot.push_str(" ╰─");
                v_strands[j] = h;
                h = v;
            } else {
                top.push_str("─┼─");
                bot.push_str(" │ ");
            }
        }
        h_strands[hi] = h;
        writeln!(out, " {} {top}", ac as char).unwrap(); // PANIC: fmt to String is infallible
        writeln!(out, "   {bot}").unwrap(); // PANIC: fmt to String is infallible
    }
    writeln!(out, "\nkernel: {:?}", kernel.permutation().forward()).unwrap(); // PANIC: fmt to String is infallible
    writeln!(out, "LCS = {}", kernel.lcs()).unwrap(); // PANIC: fmt to String is infallible
    out
}

fn engine_from_opts(opts: &Options) -> Result<slcs_engine::Engine, CliError> {
    let mut config = slcs_engine::EngineConfig::default();
    if let Some(w) = opts.value_parsed("workers")? {
        config.workers = w;
    }
    if let Some(q) = opts.value_parsed("queue")? {
        config.queue_capacity = q;
    }
    if let Some(c) = opts.value_parsed("cache")? {
        config.cache_capacity = c;
    }
    if let Some(r) = opts.value_parsed("recorder")? {
        config.recorder_capacity = r;
    }
    if let Some(s) = opts.value_parsed("window-slice")? {
        config.window_slice_millis = s;
    }
    config.slo = slo_from_opts(opts)?;
    Ok(slcs_engine::Engine::new(config))
}

/// Builds the SLO table from `--slo CLASS=US,...`, `--slo-depth` and
/// `--slo-budget`, starting from the defaults.
fn slo_from_opts(opts: &Options) -> Result<slcs_engine::SloTable, CliError> {
    let mut slo = slcs_engine::SloTable::default();
    if let Some(spec) = opts.value("slo") {
        for entry in spec.split(',') {
            let (class, micros) = entry
                .split_once('=')
                .ok_or_else(|| err(format!("--slo entry '{entry}' is not CLASS=MICROS")))?;
            let idx = slcs_engine::Operation::CLASS_TOKENS
                .iter()
                .position(|t| *t == class)
                .ok_or_else(|| err(format!("unknown request class '{class}' in --slo")))?;
            slo.p99_micros[idx] = micros
                .parse()
                .map_err(|_| err(format!("--slo target '{micros}' is not a number")))?;
        }
    }
    if let Some(depth) = opts.value_parsed("slo-depth")? {
        slo.max_queue_depth = depth;
    }
    if let Some(budget) = opts.value_parsed("slo-budget")? {
        slo.error_budget_percent = budget;
    }
    Ok(slo)
}

fn cmd_serve(rest: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(
        rest,
        &[
            "addr",
            "workers",
            "queue",
            "cache",
            "recorder",
            "window-slice",
            "slo",
            "slo-depth",
            "slo-budget",
        ],
    )?;
    let addr = opts.value("addr").unwrap_or("127.0.0.1:7171").to_string();
    let engine = std::sync::Arc::new(engine_from_opts(&opts)?);
    let config = engine.config().clone();
    let server_config = slcs_engine::ServerConfig {
        allow_trace: !opts.has("no-trace"),
        slo: config.slo.clone(),
        ..slcs_engine::ServerConfig::default()
    };
    let handle = slcs_engine::serve(&addr[..], engine, server_config)
        .map_err(|e| err(format!("cannot bind {addr}: {e}")))?;
    println!(
        "slcs engine listening on {} ({} workers, queue {}, cache {})",
        handle.addr(),
        config.workers,
        config.queue_capacity,
        config.cache_capacity
    );
    if opts.has("smoke") {
        // Undocumented test hook: bind, report, exit.
        handle.stop();
        return Ok(String::new());
    }
    loop {
        std::thread::park();
    }
}

/// Line-oriented client for the engine's TCP protocol, shared by
/// `slcs top` and `slcs audit`.
struct LineClient {
    reader: std::io::BufReader<std::net::TcpStream>,
    writer: std::net::TcpStream,
}

impl LineClient {
    fn connect(addr: &str) -> Result<Self, CliError> {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| err(format!("cannot connect to {addr}: {e}")))?;
        // Small request/response packets: without this, Nagle + delayed
        // ACK put ~40ms on every poll.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone().map_err(|e| err(format!("cannot clone stream: {e}")))?;
        Ok(Self { reader: std::io::BufReader::new(stream), writer })
    }

    fn line(&mut self, cmd: &str) -> Result<String, CliError> {
        use std::io::{BufRead, Write};
        writeln!(self.writer, "{cmd}").map_err(|e| err(format!("send failed: {e}")))?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| err(format!("read failed: {e}")))?;
        if n == 0 {
            return Err(err("server closed the connection"));
        }
        Ok(line.trim_end().to_string())
    }

    /// Sends `cmd` and reads a multi-line `# EOF`-terminated response.
    fn multi_line(&mut self, cmd: &str) -> Result<Vec<String>, CliError> {
        use std::io::{BufRead, Write};
        writeln!(self.writer, "{cmd}").map_err(|e| err(format!("send failed: {e}")))?;
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            let n =
                self.reader.read_line(&mut line).map_err(|e| err(format!("read failed: {e}")))?;
            if n == 0 {
                return Err(err("server closed the connection mid-response"));
            }
            let line = line.trim_end().to_string();
            if line == "# EOF" {
                return Ok(lines);
            }
            // Single-line errors (e.g. a disabled recorder) have no
            // terminator; surface them immediately.
            if lines.is_empty() && (line.starts_with("ERR") || line.starts_with("BUSY")) {
                return Ok(vec![line]);
            }
            lines.push(line);
        }
    }
}

/// Parses a `key=value` STATS field out of a response line.
fn stats_field<'a>(stats: &'a str, key: &str) -> Option<&'a str> {
    stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
}

/// Parses the value of a bare (unlabelled) Prometheus series out of a
/// `METRICS` exposition.
fn metrics_value(metrics: &[String], series: &str) -> Option<f64> {
    metrics.iter().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

/// Renders one `slcs top` frame from HEALTH + STATS + METRICS
/// responses.
fn top_frame(health: &str, stats: &str, metrics: &[String]) -> String {
    let mut out = format!("health: {health}\n");
    let field = |key: &str| stats_field(stats, key).unwrap_or("?");
    let num =
        |key: &str| -> f64 { stats_field(stats, key).and_then(|v| v.parse().ok()).unwrap_or(0.0) };
    // Average request rate over the server's lifetime (uptime reports
    // whole seconds, so clamp a just-booted server to 1s) — the best a
    // stateless frame can do without a previous sample to diff against.
    let rate = match metrics_value(metrics, "slcs_uptime_seconds") {
        Some(up) => format!("{:.1}/s avg", num("completed") / up.max(1.0)),
        None => "?/s".to_string(),
    };
    writeln!(
        out,
        "requests: completed={} ({rate}) queue_full={} invalid={} depth={} errors={}",
        field("completed"),
        field("queue_full"),
        field("invalid"),
        field("depth"),
        field("errors")
    )
    .unwrap(); // PANIC: fmt to String is infallible
    let (hits, misses) = (num("hits"), num("misses"));
    let ratio = if hits + misses > 0.0 { 100.0 * hits / (hits + misses) } else { 0.0 };
    writeln!(
        out,
        "cache: hits={hits:.0} misses={misses:.0} ratio={ratio:.1}% evictions={}",
        field("evictions")
    )
    .unwrap(); // PANIC: fmt to String is infallible
               // Dispatch mix: show only reasons that actually fired.
    let mix = stats_field(stats, "dispatch")
        .map(|d| d.split(',').filter(|e| !e.ends_with(":0")).collect::<Vec<_>>().join(" "))
        .unwrap_or_default();
    writeln!(out, "dispatch: {}", if mix.is_empty() { "(none)" } else { &mix }).unwrap(); // PANIC: fmt to String is infallible
    let pool = |series: &str| {
        metrics_value(metrics, series).map_or("?".to_string(), |v| format!("{v:.0}"))
    };
    writeln!(
        out,
        "pool: jobs={} steals={} local_hits={} parks={}",
        pool("slcs_pool_jobs_executed_total"),
        pool("slcs_pool_steals_total"),
        pool("slcs_pool_local_hits_total"),
        pool("slcs_pool_parks_total")
    )
    .unwrap(); // PANIC: fmt to String is infallible
    out.push_str("windowed p99 (us):\n");
    // latency_windows is `class:window:p50/p90/p99/p999` CSV; show the
    // p99 column per class across the three windows.
    let mut per_class: std::collections::BTreeMap<&str, Vec<String>> =
        std::collections::BTreeMap::new();
    if let Some(windows) = stats_field(stats, "latency_windows") {
        for entry in windows.split(',') {
            let mut parts = entry.split(':');
            let (Some(class), Some(window), Some(quants)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let p99 = quants.split('/').nth(2).unwrap_or("?");
            per_class.entry(class).or_default().push(format!("{window}={p99}"));
        }
    }
    for (class, cols) in &per_class {
        writeln!(out, "  {class:<14} {}", cols.join("  ")).unwrap(); // PANIC: fmt to String is infallible
    }
    if per_class.is_empty() {
        out.push_str("  (latency windows disabled)\n");
    }
    out
}

/// `slcs top` — polls HEALTH, STATS and METRICS over the TCP protocol
/// and renders a dashboard frame per interval. `--count 0` loops
/// forever; the default single frame makes the command
/// scriptable/testable.
fn cmd_top(rest: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(rest, &["addr", "interval", "count"])?;
    let addr = opts.value("addr").unwrap_or("127.0.0.1:7171");
    let interval_ms: u64 = opts.value_parsed("interval")?.unwrap_or(1000);
    let count: usize = opts.value_parsed("count")?.unwrap_or(1);
    let mut client = LineClient::connect(addr)?;
    let mut frames = 0usize;
    let mut out = String::new();
    loop {
        let health = client.line("HEALTH")?;
        let stats = client.line("STATS")?;
        let metrics = client.multi_line("METRICS")?;
        let frame = format!("-- slcs top @ {addr} --\n{}", top_frame(&health, &stats, &metrics));
        frames += 1;
        if count == 0 {
            // Live mode: print each frame as it arrives.
            println!("{frame}");
        } else {
            out.push_str(&frame);
            if frames >= count {
                return Ok(out);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// `slcs audit` — dumps the serving engine's flight recorder. Extra
/// arguments pass through to the protocol's `AUDIT` command:
/// `slowest [N]`, `class C [N]`, `reason R [N]`, `captures`, or a
/// plain record count.
fn cmd_audit(rest: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(rest, &["addr"])?;
    let addr = opts.value("addr").unwrap_or("127.0.0.1:7171");
    let mut cmd = String::from("AUDIT");
    for arg in &opts.positional {
        cmd.push(' ');
        cmd.push_str(arg);
    }
    let mut client = LineClient::connect(addr)?;
    let lines = client.multi_line(&cmd)?;
    let mut out = String::new();
    for line in &lines {
        out.push_str(line);
        out.push('\n');
    }
    Ok(out)
}

/// Writes a drained timeline in the requested format; returns a short
/// status line for the report.
fn write_timeline(
    timeline: &slcs_trace::Timeline,
    path: &str,
    chrome: bool,
) -> Result<String, CliError> {
    let rendered = if chrome { timeline.to_chrome_json() } else { timeline.to_text_tree() };
    std::fs::write(path, rendered + "\n").map_err(|e| err(format!("cannot write {path}: {e}")))?;
    Ok(format!(
        "[trace written {path}: {} events, {} dropped]\n",
        timeline.events.len(),
        timeline.dropped
    ))
}

/// `slcs trace [--out FILE] [--format chrome|text] COMMAND ...` — runs
/// the inner subcommand with tracing enabled and exports the timeline.
/// Without `--out` the rendering is appended to the command's own
/// output; the format defaults to `chrome` when writing a file and
/// `text` otherwise.
fn cmd_trace(rest: &[String]) -> Result<String, CliError> {
    const TRACE_USAGE: &str = "usage: slcs trace [--out FILE] [--format chrome|text] COMMAND ...";
    let mut out_path: Option<String> = None;
    let mut format: Option<String> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--out" => {
                out_path =
                    Some(rest.get(i + 1).ok_or_else(|| err("--out requires a value"))?.clone());
                i += 2;
            }
            "--format" => {
                format =
                    Some(rest.get(i + 1).ok_or_else(|| err("--format requires a value"))?.clone());
                i += 2;
            }
            _ => break,
        }
    }
    let Some(cmd) = rest.get(i) else {
        return Err(err(TRACE_USAGE));
    };
    if cmd == "trace" {
        return Err(err("trace cannot wrap itself"));
    }
    let chrome = match format.as_deref() {
        Some("chrome") => true,
        Some("text") => false,
        Some(other) => return Err(err(format!("unknown trace format '{other}'\n{TRACE_USAGE}"))),
        None => out_path.is_some(),
    };
    slcs_trace::enable_fresh();
    let result = dispatch(cmd, &rest[i + 1..]);
    slcs_trace::set_enabled(false);
    let mut out = result?;
    let timeline = slcs_trace::drain();
    match out_path {
        Some(path) => out.push_str(&write_timeline(&timeline, &path, chrome)?),
        None => {
            out.push_str("--- trace ---\n");
            out.push_str(&if chrome { timeline.to_chrome_json() } else { timeline.to_text_tree() });
            out.push('\n');
        }
    }
    Ok(out)
}

fn cmd_bench_engine(rest: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(
        rest,
        &[
            "requests", "pairs", "len", "sigma", "window", "workers", "queue", "cache", "seed",
            "trace",
        ],
    )?;
    let trace_path = opts.value("trace").map(str::to_string);
    let requests: usize = opts.value_parsed("requests")?.unwrap_or(200);
    let pairs: usize = opts.value_parsed("pairs")?.unwrap_or(8).max(1);
    let len: usize = opts.value_parsed("len")?.unwrap_or(256).max(1);
    let sigma: u8 = opts.value_parsed("sigma")?.unwrap_or(4).max(1);
    let window: usize = opts.value_parsed("window")?.unwrap_or(len / 2).clamp(1, len);
    let seed: u64 = opts.value_parsed("seed")?.unwrap_or(42);
    let engine = engine_from_opts(&opts)?;

    use slcs_datagen::uniform_string;
    type Pair = (std::sync::Arc<[u8]>, std::sync::Arc<[u8]>);
    let mut rng = slcs_datagen::seeded_rng(seed);
    let pool: Vec<Pair> = (0..pairs)
        .map(|_| {
            (
                uniform_string(&mut rng, len, sigma).into(),
                uniform_string(&mut rng, len, sigma).into(),
            )
        })
        .collect();

    if trace_path.is_some() {
        slcs_trace::enable_fresh();
    }
    let started = std::time::Instant::now();
    let mut tickets = Vec::with_capacity(requests);
    let mut retries = 0u64;
    for i in 0..requests {
        let (a, b) = &pool[i % pairs];
        let op = match i % 3 {
            0 => slcs_engine::Operation::Lcs,
            1 => slcs_engine::Operation::Windows { w: window },
            _ => slcs_engine::Operation::Edit { w: Some(window) },
        };
        let req = slcs_engine::CompareRequest::new(a.clone(), b.clone(), op);
        loop {
            match engine.submit(req.clone()) {
                slcs_engine::Submit::Accepted(t) => {
                    tickets.push(t);
                    break;
                }
                slcs_engine::Submit::QueueFull => {
                    retries += 1;
                    std::thread::yield_now();
                }
                slcs_engine::Submit::Invalid(why) => return Err(err(why)),
            }
        }
    }
    for t in tickets {
        t.wait().map_err(|e| err(e.to_string()))?;
    }
    let elapsed = started.elapsed();
    let stats = engine.shutdown();
    let rate = requests as f64 / elapsed.as_secs_f64();
    let mut out = format!(
        "{requests} requests over {pairs} pairs of {len}x{len} (sigma {sigma}) \
         in {elapsed:.2?} — {rate:.0} req/s, {retries} backpressure retries\n"
    );
    writeln!(out, "{stats}").unwrap(); // PANIC: fmt to String is infallible
    if let Some(path) = trace_path {
        slcs_trace::set_enabled(false);
        out.push_str(&write_timeline(&slcs_trace::drain(), &path, true)?);
    }
    Ok(out)
}

/// Parses a comma-separated list flag, e.g. `--sizes 4096,16384`.
fn list_flag(opts: &Options, name: &str, default: &[usize]) -> Result<Vec<usize>, CliError> {
    match opts.value(name) {
        None => Ok(default.to_vec()),
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().map_err(|_| err(format!("invalid value in --{name}: {s}"))))
            .collect(),
    }
}

/// Median wall-clock time of `runs` executions (one warmup).
fn median_time<R>(runs: usize, mut f: impl FnMut() -> R) -> std::time::Duration {
    std::hint::black_box(f());
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        let t = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// Minimum wall-clock time of `runs` executions (one warmup). The min
/// is the right estimator when comparing variants of the same workload
/// under machine noise — contention only ever inflates a sample, so
/// the fastest observation is the closest to the true cost. `bench-obs`
/// uses it because its output is a *difference* of timings, and
/// `bench-baseline` / `tune` because their outputs are *ratios* of
/// timings, both of which the median leaves far too noisy for
/// `xtask perf-gate` at quick sizes.
fn min_time<R>(runs: usize, mut f: impl FnMut() -> R) -> std::time::Duration {
    std::hint::black_box(f());
    let mut best = std::time::Duration::MAX;
    for _ in 0..runs.max(1) {
        let t = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed());
    }
    best
}

fn cmd_bench_baseline(rest: &[String]) -> Result<String, CliError> {
    use slcs_semilocal::Scheduling;

    let opts =
        Options::parse(rest, &["sizes", "threads", "grain", "runs", "out", "seed", "trace"])?;
    let quick = opts.has("quick");
    let sizes = list_flag(&opts, "sizes", if quick { &[1024] } else { &[4096, 16384] })?;
    let threads = list_flag(&opts, "threads", if quick { &[1, 2] } else { &[1, 2, 4, 8] })?;
    // Full-sweep grain: largest grid ÷ largest thread count, so every
    // budget in the sweep can actually form a full team (the production
    // default of 8192 would cap the 16384² grid at two chunks per
    // diagonal and leave 6 of 8 members idle).
    let default_grain = if quick { 256 } else { 2048 };
    let grain: usize = opts.value_parsed("grain")?.unwrap_or(default_grain).max(1);
    let runs: usize = opts.value_parsed("runs")?.unwrap_or(if quick { 1 } else { 3 });
    let seed: u64 = opts.value_parsed("seed")?.unwrap_or(42);
    let out_path = opts.value("out").unwrap_or("BENCH_pool.json").to_string();

    let modes: [(&str, Scheduling); 5] = [
        ("spawn_per_diag", Scheduling::SpawnPerDiag),
        ("pool_per_diag", Scheduling::PoolPerDiag),
        ("team", Scheduling::Team),
        ("work_steal", Scheduling::WorkSteal),
        // Auto consults the loaded tuning profile (and its own grain),
        // so its row shows what production dispatch actually gets.
        ("auto", Scheduling::Auto),
    ];
    let mut rows = Vec::new(); // (size, threads, mode, ns_per_cell, millis)
    let mut report = String::from("anti-diagonal combing scheduling benchmark\n");
    writeln!(report, "grain={grain} runs={runs} sizes={sizes:?} threads={threads:?}").unwrap(); // PANIC: fmt to String is infallible
    for &n in &sizes {
        let mut rng = slcs_datagen::seeded_rng(seed);
        let a = slcs_datagen::uniform_string(&mut rng, n, 4);
        let b = slcs_datagen::uniform_string(&mut rng, n, 4);
        let cells = (n as f64) * (n as f64);
        // min-of-N, not median-of-N: perf-gate compares mode *ratios*,
        // and contention only ever inflates a sample (see `min_time`).
        let d = min_time(runs, || slcs_semilocal::antidiag_combing_branchless(&a, &b));
        let seq_ns = d.as_nanos() as f64 / cells;
        rows.push((n, 1usize, "seq", seq_ns, d.as_secs_f64() * 1e3));
        writeln!(report, "  {n}x{n}  seq              t=1  {seq_ns:8.3} ns/cell").unwrap(); // PANIC: fmt to String is infallible
        for &t in &threads {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .map_err(|e| err(e.to_string()))?;
            for (name, sched) in modes {
                let d = pool.install(|| {
                    min_time(runs, || {
                        slcs_semilocal::par_antidiag_combing_branchless_sched(&a, &b, sched, grain)
                    })
                });
                let ns = d.as_nanos() as f64 / cells;
                rows.push((n, t, name, ns, d.as_secs_f64() * 1e3));
                writeln!(
                    report,
                    "  {n}x{n}  {name:<16} t={t}  {ns:8.3} ns/cell  ({:.2}x vs spawn-baseline)",
                    rows.iter()
                        .find(|r| r.0 == n && r.1 == t && r.2 == "spawn_per_diag")
                        .map(|r| r.3 / ns)
                        .unwrap_or(1.0)
                )
                .unwrap(); // PANIC: fmt to String is infallible
            }
        }
    }

    let mut json = String::from("{\n");
    writeln!(json, "  \"bench\": \"bench-baseline\",").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"algorithm\": \"par_antidiag_combing_branchless\",").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"unit\": \"ns_per_cell\",").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"quick\": {quick},").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"par_grain\": {grain},").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"runs\": {runs},").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"pool_spawned_workers\": {},", rayon::pool_spawned_workers()).unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"rows\": [").unwrap(); // PANIC: fmt to String is infallible
    for (i, (n, t, mode, ns, ms)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"size\": {n}, \"threads\": {t}, \"mode\": \"{mode}\", \
             \"ns_per_cell\": {ns:.4}, \"millis\": {ms:.3}}}{comma}"
        )
        .unwrap(); // PANIC: fmt to String is infallible
    }
    writeln!(json, "  ]").unwrap(); // PANIC: fmt to String is infallible
    json.push_str("}\n");
    std::fs::write(&out_path, &json).map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
    writeln!(report, "[written {out_path}]").unwrap(); // PANIC: fmt to String is infallible

    if let Some(trace_path) = opts.value("trace") {
        // One extra traced pass, separate from the timed runs above so
        // tracing cannot skew the reported numbers: a team-scheduled
        // sweep (wavefront.diag + pool.job + team.* spans) plus a short
        // engine phase (engine.request spans), all in one timeline.
        let n = sizes.iter().copied().max().unwrap_or(1024);
        let t = threads.iter().copied().max().unwrap_or(2);
        let mut rng = slcs_datagen::seeded_rng(seed);
        let a = slcs_datagen::uniform_string(&mut rng, n, 4);
        let b = slcs_datagen::uniform_string(&mut rng, n, 4);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .map_err(|e| err(e.to_string()))?;
        // Clamp the grain so the sweep actually forms a team (a grain
        // at or above n/t would fall back to the sequential path and
        // record no wavefront spans).
        let trace_grain = grain.min((n / t.max(1)).max(1));
        slcs_trace::enable_fresh();
        pool.install(|| {
            std::hint::black_box(slcs_semilocal::par_antidiag_combing_branchless_grain(
                &a,
                &b,
                trace_grain,
            ))
        });
        // Zero SLO targets so every request trips the slow-capture path
        // and the timeline deterministically records engine.slow_capture.
        let engine = slcs_engine::Engine::new(slcs_engine::EngineConfig {
            slo: slcs_engine::SloTable { p99_micros: [0; 4], ..slcs_engine::SloTable::default() },
            ..slcs_engine::EngineConfig::default()
        });
        for op in
            [slcs_engine::Operation::Lcs, slcs_engine::Operation::Windows { w: 64.min(b.len()) }]
        {
            let req = slcs_engine::CompareRequest::new(&a[..256.min(a.len())], &b[..], op);
            engine.submit_wait(req).map_err(|e| err(e.to_string()))?;
        }
        // One ~99%-similar pair through the global-edit route records
        // the output-sensitive path (osed.sa_build / osed.lcp_build /
        // osed.edit / osed.bfs_round) in the same timeline.
        let (pa, pb) = slcs_datagen::similar_pair(&mut rng, 2048, 4, 0.01);
        engine
            .submit_wait(slcs_engine::CompareRequest::new(
                &pa[..],
                &pb[..],
                slcs_engine::Operation::Edit { w: None },
            ))
            .map_err(|e| err(e.to_string()))?;
        drop(engine);
        slcs_trace::set_enabled(false);
        report.push_str(&write_timeline(&slcs_trace::drain(), trace_path, true)?);
    }
    Ok(report)
}

/// `slcs tune` — calibrates the measured scheduling cost model behind
/// `Scheduling::Auto`.
///
/// For every `(size, threads)` sweep point it times each fixed parallel
/// mode (`Scheduling::FIXED`) at each candidate grain (min-of-N, one
/// warmup) and records the winning `(mode, grain)`. The winners are
/// fitted into per-thread-bucket area bands — each band's `max_area`
/// is the midpoint between adjacent measured grid areas, the largest
/// band is unbounded — and written as a versioned
/// `slcs_semilocal::TuningProfile` (default `perf/tuning.json`, the
/// path `Scheduling::Auto` loads at dispatch time).
fn cmd_tune(rest: &[String]) -> Result<String, CliError> {
    use slcs_semilocal::{Scheduling, TuningEntry, TuningProfile, TUNING_VERSION};

    let opts = Options::parse(rest, &["sizes", "threads", "grains", "runs", "out", "seed"])?;
    let quick = opts.has("quick");
    let sizes = list_flag(&opts, "sizes", if quick { &[512, 1024] } else { &[2048, 8192, 16384] })?;
    let threads = list_flag(&opts, "threads", if quick { &[1, 2] } else { &[1, 2, 4, 8] })?;
    let grains = list_flag(&opts, "grains", if quick { &[256] } else { &[1024, 4096, 16384] })?;
    let runs: usize = opts.value_parsed("runs")?.unwrap_or(if quick { 1 } else { 3 });
    let seed: u64 = opts.value_parsed("seed")?.unwrap_or(42);
    let out_path = opts.value("out").unwrap_or("perf/tuning.json").to_string();
    if sizes.is_empty() || threads.is_empty() || grains.is_empty() {
        return Err(err("tune: --sizes, --threads and --grains must be non-empty"));
    }

    let mut report = String::from("scheduling cost-model calibration\n");
    writeln!(report, "sizes={sizes:?} threads={threads:?} grains={grains:?} runs={runs}").unwrap(); // PANIC: fmt to String is infallible

    // entries[t] = Vec<(area, mode, grain)>, one winner per size,
    // ascending in size (list_flag preserves user order; sort anyway).
    let mut sorted_sizes = sizes.clone();
    sorted_sizes.sort_unstable();
    sorted_sizes.dedup();
    let mut entries: Vec<TuningEntry> = Vec::new();
    for &t in &threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .map_err(|e| err(e.to_string()))?;
        let mut winners: Vec<(u64, Scheduling, usize)> = Vec::new();
        for &n in &sorted_sizes {
            let mut rng = slcs_datagen::seeded_rng(seed);
            let a = slcs_datagen::uniform_string(&mut rng, n, 4);
            let b = slcs_datagen::uniform_string(&mut rng, n, 4);
            let cells = (n as f64) * (n as f64);
            let mut best: Option<(std::time::Duration, Scheduling, usize)> = None;
            for mode in Scheduling::FIXED {
                for &g in &grains {
                    let d = pool.install(|| {
                        min_time(runs, || {
                            slcs_semilocal::par_antidiag_combing_branchless_sched(&a, &b, mode, g)
                        })
                    });
                    writeln!(
                        report,
                        "  {n}x{n} t={t} {:<16} grain={g:<6} {:8.3} ns/cell",
                        mode.token(),
                        d.as_nanos() as f64 / cells
                    )
                    .unwrap(); // PANIC: fmt to String is infallible
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, mode, g));
                    }
                }
            }
            // PANIC: FIXED and grains are non-empty, so a best exists
            let (d, mode, g) = best.unwrap();
            writeln!(
                report,
                "  {n}x{n} t={t} -> {} grain={g} ({:.3} ns/cell)",
                mode.token(),
                d.as_nanos() as f64 / cells
            )
            .unwrap(); // PANIC: fmt to String is infallible
            winners.push((n as u64 * n as u64, mode, g));
        }
        // Fit the winners into area bands: each band reaches halfway to
        // the next measured area, the last is the bucket's catch-all.
        for (i, &(area, mode, grain)) in winners.iter().enumerate() {
            let max_area = match winners.get(i + 1) {
                Some(&(next, _, _)) => area + (next - area) / 2,
                None => 0,
            };
            entries.push(TuningEntry { threads: t, max_area, mode, grain });
        }
    }

    let profile = TuningProfile { version: TUNING_VERSION, entries };
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| err(format!("cannot create {}: {e}", parent.display())))?;
        }
    }
    std::fs::write(&out_path, profile.to_json())
        .map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
    writeln!(report, "[written {out_path}]").unwrap(); // PANIC: fmt to String is infallible
    Ok(report)
}

/// `slcs bench-obs` — the observability tax, measured three ways on the
/// same team-scheduled wavefront sweep:
///
/// * `untraced` — instrumentation compiled out (`TRACED = false`);
/// * `disabled` — instrumented build, tracing off (the production
///   default: each span site costs one relaxed load and branch);
/// * `enabled`  — tracing on, events recorded into the ring buffers.
///
/// `overhead_disabled_percent` in the JSON report is the headline
/// number: what merely *linking* the instrumentation costs.
///
/// A fourth A/B measures the serving-path bookkeeping: a batch of
/// small LCS requests through two engines, one with the flight
/// recorder and rolling windows disabled and one with the defaults.
/// `overhead_recorder_percent` is that delta; `cargo xtask perf-gate`
/// holds it to the same slack as the trace overheads.
fn cmd_bench_obs(rest: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(rest, &["size", "threads", "grain", "runs", "out", "seed"])?;
    let quick = opts.has("quick");
    let size: usize = opts.value_parsed("size")?.unwrap_or(if quick { 1024 } else { 16384 });
    let threads: usize = opts.value_parsed("threads")?.unwrap_or(if quick { 2 } else { 8 }).max(1);
    let grain: usize = opts.value_parsed("grain")?.unwrap_or(if quick { 256 } else { 2048 }).max(1);
    let runs: usize = opts.value_parsed("runs")?.unwrap_or(if quick { 1 } else { 3 });
    let seed: u64 = opts.value_parsed("seed")?.unwrap_or(42);
    let out_path = opts.value("out").unwrap_or("BENCH_obs.json").to_string();

    let mut rng = slcs_datagen::seeded_rng(seed);
    let a = slcs_datagen::uniform_string(&mut rng, size, 4);
    let b = slcs_datagen::uniform_string(&mut rng, size, 4);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| err(e.to_string()))?;

    slcs_trace::set_enabled(false);
    let untraced = pool.install(|| {
        min_time(runs, || slcs_semilocal::par_antidiag_combing_branchless_untraced(&a, &b, grain))
    });
    let disabled = pool.install(|| {
        min_time(runs, || slcs_semilocal::par_antidiag_combing_branchless_grain(&a, &b, grain))
    });
    slcs_trace::enable_fresh();
    let enabled = pool.install(|| {
        min_time(runs, || slcs_semilocal::par_antidiag_combing_branchless_grain(&a, &b, grain))
    });
    slcs_trace::set_enabled(false);
    let trace_stats = slcs_trace::stats();

    // Recorder/window A/B: the serving-path cost of the flight
    // recorder, rolling windows and slow-capture arming, measured
    // end-to-end through the engine on small bit-parallel LCS requests
    // — the worst case, because the per-request bookkeeping is a fixed
    // cost and the cheapest requests show the largest relative share.
    let rec_requests: usize = if quick { 64 } else { 256 };
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..8)
        .map(|_| {
            (
                slcs_datagen::uniform_string(&mut rng, 2048, 4),
                slcs_datagen::uniform_string(&mut rng, 2048, 4),
            )
        })
        .collect();
    let batch = |engine: &slcs_engine::Engine| {
        for i in 0..rec_requests {
            let (pa, pb) = &pairs[i % pairs.len()];
            engine
                .submit_wait(slcs_engine::CompareRequest::new(
                    &pa[..],
                    &pb[..],
                    slcs_engine::Operation::Lcs,
                ))
                .expect("bench engine accepts requests"); // PANIC: bench engine is private to this run and never shuts down mid-batch
        }
    };
    let base_config = slcs_engine::EngineConfig {
        workers: 1,
        threads_per_request: 1,
        ..slcs_engine::EngineConfig::default()
    };
    let rec_off_engine = slcs_engine::Engine::new(slcs_engine::EngineConfig {
        recorder_capacity: 0,
        window_slice_millis: 0,
        ..base_config.clone()
    });
    let rec_on_engine = slcs_engine::Engine::new(base_config);
    let rec_off = min_time(runs, || batch(&rec_off_engine));
    let rec_on = min_time(runs, || batch(&rec_on_engine));
    drop(rec_off_engine);
    drop(rec_on_engine);
    let rec_pct = 100.0 * (rec_on.as_secs_f64() - rec_off.as_secs_f64()) / rec_off.as_secs_f64();

    let pct = |d: std::time::Duration| {
        100.0 * (d.as_secs_f64() - untraced.as_secs_f64()) / untraced.as_secs_f64()
    };
    let (dis_pct, en_pct) = (pct(disabled), pct(enabled));
    let mut report = format!(
        "observability overhead, {size}x{size}, {threads} threads, grain {grain}, {runs} run(s)\n"
    );
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    writeln!(report, "  untraced (compiled out)  {:9.2} ms", ms(untraced)).unwrap(); // PANIC: fmt to String is infallible
    writeln!(report, "  disabled (relaxed load)  {:9.2} ms  ({dis_pct:+.2}%)", ms(disabled))
        .unwrap(); // PANIC: fmt to String is infallible
    writeln!(report, "  enabled  (recording)     {:9.2} ms  ({en_pct:+.2}%)", ms(enabled)).unwrap(); // PANIC: fmt to String is infallible
    writeln!(
        report,
        "  events recorded {} / dropped {} across {} thread buffer(s)",
        trace_stats.recorded, trace_stats.dropped, trace_stats.threads
    )
    .unwrap(); // PANIC: fmt to String is infallible
    writeln!(
        report,
        "  recorder off             {:9.2} ms  ({rec_requests} engine requests)",
        ms(rec_off)
    )
    .unwrap(); // PANIC: fmt to String is infallible
    writeln!(report, "  recorder+windows on      {:9.2} ms  ({rec_pct:+.2}%)", ms(rec_on)).unwrap(); // PANIC: fmt to String is infallible

    let json = format!(
        "{{\n  \"bench\": \"bench-obs\",\n  \"algorithm\": \"par_antidiag_combing_branchless\",\n  \
         \"size\": {size},\n  \"threads\": {threads},\n  \"par_grain\": {grain},\n  \
         \"runs\": {runs},\n  \"quick\": {quick},\n  \
         \"untraced_millis\": {:.3},\n  \"disabled_millis\": {:.3},\n  \
         \"enabled_millis\": {:.3},\n  \"overhead_disabled_percent\": {dis_pct:.3},\n  \
         \"overhead_enabled_percent\": {en_pct:.3},\n  \
         \"trace_events_recorded\": {},\n  \"trace_events_dropped\": {},\n  \
         \"recorder_requests\": {rec_requests},\n  \"recorder_off_millis\": {:.3},\n  \
         \"recorder_on_millis\": {:.3},\n  \"overhead_recorder_percent\": {rec_pct:.3}\n}}\n",
        ms(untraced),
        ms(disabled),
        ms(enabled),
        trace_stats.recorded,
        trace_stats.dropped,
        ms(rec_off),
        ms(rec_on),
    );
    std::fs::write(&out_path, &json).map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
    writeln!(report, "[written {out_path}]").unwrap(); // PANIC: fmt to String is infallible
    Ok(report)
}

/// `slcs bench-mem` — allocation profile of steady-ant braid
/// multiplication: the paper's *memory* optimization (ping-pong
/// workspace, [`slcs_braid::BraidMulWorkspace`]) against the basic
/// per-level-allocating recursion, at the same order.
///
/// For each variant the batch of multiplies runs once inside an
/// [`slcs_alloc::AllocScope`] (after a warmup multiply, so one-time
/// setup such as the workspace itself or precalc tables is excluded)
/// to count this thread's allocations and the scope-local peak of
/// live bytes, then again under [`median_time`] for wall clock.
/// Allocation counts are deterministic for a fixed seed/order, which
/// is what lets `cargo xtask perf-gate` compare them exactly.
fn cmd_bench_mem(rest: &[String]) -> Result<String, CliError> {
    use slcs_perm::Permutation;

    let opts = Options::parse(rest, &["size", "mults", "runs", "out", "seed"])?;
    let quick = opts.has("quick");
    let size: usize = opts.value_parsed("size")?.unwrap_or(if quick { 512 } else { 8192 }).max(1);
    let mults: usize = opts.value_parsed("mults")?.unwrap_or(if quick { 4 } else { 8 }).max(1);
    let runs: usize = opts.value_parsed("runs")?.unwrap_or(if quick { 1 } else { 3 });
    let seed: u64 = opts.value_parsed("seed")?.unwrap_or(42);
    let out_path = opts.value("out").unwrap_or("BENCH_mem.json").to_string();

    let mut rng = slcs_datagen::seeded_rng(seed);
    let pairs: Vec<(Permutation, Permutation)> = (0..mults)
        .map(|_| (Permutation::random(size, &mut rng), Permutation::random(size, &mut rng)))
        .collect();

    let installed = slcs_alloc::installed();
    let mut report =
        format!("steady-ant allocation profile, order {size}, {mults} multiplies, {runs} run(s)\n");
    writeln!(
        report,
        "  allocator {}",
        if installed { "instrumented" } else { "NOT instrumented (counts will read 0)" }
    )
    .unwrap(); // PANIC: fmt to String is infallible

    // (name, allocs, alloc_bytes, peak_live_bytes, millis)
    let mut rows: Vec<(&str, u64, u64, u64, f64)> = Vec::new();

    // -- naive: fresh allocations at every recursion level.
    {
        let batch = || {
            for (p, q) in &pairs {
                std::hint::black_box(slcs_braid::steady_ant(p, q));
            }
        };
        batch(); // warmup
        let scope = slcs_alloc::AllocScope::enter(None);
        batch();
        let d = scope.delta();
        let wall = median_time(runs, batch);
        rows.push(("naive", d.allocs, d.alloc_bytes, d.peak_live_delta, wall.as_secs_f64() * 1e3));
    }

    // -- memopt: one workspace reused across the whole batch; only the
    //    final copy-out of each product should touch the allocator.
    {
        let mut ws = slcs_braid::BraidMulWorkspace::new(size);
        let (p0, q0) = &pairs[0];
        std::hint::black_box(ws.multiply(p0, q0, None)); // warmup
        let scope = slcs_alloc::AllocScope::enter(None);
        for (p, q) in &pairs {
            std::hint::black_box(ws.multiply(p, q, None));
        }
        let d = scope.delta();
        let wall = median_time(runs, || {
            for (p, q) in &pairs {
                std::hint::black_box(ws.multiply(p, q, None));
            }
        });
        rows.push(("memopt", d.allocs, d.alloc_bytes, d.peak_live_delta, wall.as_secs_f64() * 1e3));
    }

    for (name, allocs, bytes, peak, ms) in &rows {
        writeln!(
            report,
            "  {name:<7} {allocs:>9} allocs ({:.1}/multiply)  {bytes:>12} B allocated  \
             peak {peak:>10} B  {ms:9.2} ms",
            *allocs as f64 / mults as f64
        )
        .unwrap(); // PANIC: fmt to String is infallible
    }
    if installed {
        let naive = &rows[0];
        let memopt = &rows[1];
        writeln!(
            report,
            "  memopt does {:.0}x fewer allocations, {:.0}x lower peak",
            naive.1 as f64 / (memopt.1.max(1)) as f64,
            naive.3 as f64 / (memopt.3.max(1)) as f64
        )
        .unwrap(); // PANIC: fmt to String is infallible
    }

    let mut json = String::from("{\n");
    writeln!(json, "  \"bench\": \"bench-mem\",").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"algorithm\": \"steady_ant\",").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"order\": {size},").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"multiplies\": {mults},").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"runs\": {runs},").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"quick\": {quick},").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"allocator_installed\": {installed},").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"variants\": [").unwrap(); // PANIC: fmt to String is infallible
    for (i, (name, allocs, bytes, peak, ms)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"name\": \"{name}\", \"allocs\": {allocs}, \"alloc_bytes\": {bytes}, \
             \"peak_live_bytes\": {peak}, \"millis\": {ms:.3}}}{comma}"
        )
        .unwrap(); // PANIC: fmt to String is infallible
    }
    writeln!(json, "  ]").unwrap(); // PANIC: fmt to String is infallible
    json.push_str("}\n");
    std::fs::write(&out_path, &json).map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
    writeln!(report, "[written {out_path}]").unwrap(); // PANIC: fmt to String is infallible
    Ok(report)
}

/// `slcs bench-osed` — the output-sensitive edit-distance path
/// (`slcs-osed`: SA+RMQ LCP oracle plus Landau–Vishkin diagonal BFS)
/// against the full-grid paths, over a similarity × size sweep.
///
/// For every (size, similarity) cell a seeded σ = 4 pair is generated
/// with [`slcs_datagen::similar_pair`]; the sequential and parallel BFS
/// must agree bit-for-bit (and with the DP reference at small sizes),
/// and the bounded variant must be exact at `k = d` and prove `> k` at
/// `k = d − 1`. The grid baselines (row-major DP and the blown-up
/// `EditDistances` index) are content-oblivious, so they are timed once
/// per size; `ratio_vs_best_grid` divides osed's time by the *fastest*
/// grid path. One BFS per cell also runs inside an
/// [`slcs_alloc::AllocScope`]: SA-IS allocation counts are
/// deterministic for a seeded input, which lets `cargo xtask perf-gate`
/// pin them exactly like `bench-mem`'s.
fn cmd_bench_osed(rest: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(rest, &["sizes", "runs", "out", "seed"])?;
    let quick = opts.has("quick");
    let sizes =
        list_flag(&opts, "sizes", if quick { &[1024, 4096] } else { &[4096, 16384, 65536] })?;
    let runs: usize = opts.value_parsed("runs")?.unwrap_or(if quick { 1 } else { 3 });
    let seed: u64 = opts.value_parsed("seed")?.unwrap_or(42);
    let out_path = opts.value("out").unwrap_or("BENCH_osed.json").to_string();
    /// Verify against the O(mn) DP only where it stays cheap.
    const DP_VERIFY_MAX: usize = 4096;
    let sims: [f64; 3] = [0.90, 0.99, 0.999];
    let installed = slcs_alloc::installed();

    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut report = format!(
        "output-sensitive edit distance vs full-grid, sizes {sizes:?}, \
         similarities {sims:?}, {runs} run(s)\n"
    );
    let mut grids = Vec::new(); // (size, dp_ms, index_ms)
    let mut rows = Vec::new(); // (size, sim, d, seq_ms, par_ms, allocs, bytes, peak, ratio)
    for &n in &sizes {
        // Grid timings are oblivious to string content, so one pair per
        // size serves both baselines (timed once: they run for seconds
        // at the large sizes, where noise is far below the osed margin).
        let mut rng = slcs_datagen::seeded_rng(seed);
        let (ga, gb) = slcs_datagen::similar_pair(&mut rng, n, 4, 0.01);
        let t = std::time::Instant::now();
        let dp = slcs_baselines::edit_distance(&ga, &gb);
        let dp_ms = ms(t.elapsed());
        let t = std::time::Instant::now();
        let index_global = EditDistances::new(&ga, &gb).global();
        let index_ms = ms(t.elapsed());
        if dp != index_global {
            return Err(err(format!("grid paths disagree at size {n}: {dp} vs {index_global}")));
        }
        let best_grid_ms = dp_ms.min(index_ms);
        writeln!(
            report,
            "  {n}: dp {dp_ms:10.2} ms   edit-index {index_ms:10.2} ms   (d = {dp} at 99%)"
        )
        .unwrap(); // PANIC: fmt to String is infallible
        grids.push((n, dp_ms, index_ms));
        for &sim in &sims {
            let mut rng = slcs_datagen::seeded_rng(seed.wrapping_add((sim * 1e4) as u64));
            let (a, b) = slcs_datagen::similar_pair(&mut rng, n, 4, 1.0 - sim);
            let d_seq = slcs_osed::edit_distance(&a, &b);
            let d_par = slcs_osed::par_edit_distance(&a, &b);
            if d_seq != d_par {
                return Err(err(format!(
                    "parallel BFS diverged at size {n}, similarity {sim}: {d_seq} vs {d_par}"
                )));
            }
            if n <= DP_VERIFY_MAX && d_seq != slcs_baselines::edit_distance(&a, &b) {
                return Err(err(format!("BFS wrong at size {n}, similarity {sim}")));
            }
            if slcs_osed::edit_distance_bounded(&a, &b, d_seq) != Some(d_seq)
                || (d_seq > 0 && slcs_osed::edit_distance_bounded(&a, &b, d_seq - 1).is_some())
            {
                return Err(err(format!("bounded BFS wrong at size {n}, similarity {sim}")));
            }
            let scope = slcs_alloc::AllocScope::enter(None);
            std::hint::black_box(slcs_osed::edit_distance(&a, &b));
            let alloc = scope.delta();
            let seq = median_time(runs, || slcs_osed::edit_distance(&a, &b));
            let par = median_time(runs, || slcs_osed::par_edit_distance(&a, &b));
            let ratio = ms(seq).min(ms(par)) / best_grid_ms;
            writeln!(
                report,
                "  {n} @ {:6.2}%  d={d_seq:<6} osed {:9.2} ms (par {:9.2} ms)  \
                 {:>8} allocs  ratio {ratio:.4}",
                100.0 * sim,
                ms(seq),
                ms(par),
                alloc.allocs,
            )
            .unwrap(); // PANIC: fmt to String is infallible
            rows.push((
                n,
                sim,
                d_seq,
                ms(seq),
                ms(par),
                alloc.allocs,
                alloc.alloc_bytes,
                alloc.peak_live_delta,
                ratio,
            ));
        }
    }

    let mut json = String::from("{\n");
    writeln!(json, "  \"bench\": \"bench-osed\",").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"algorithm\": \"landau_vishkin_sa_rmq\",").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"unit\": \"millis\",").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"quick\": {quick},").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"runs\": {runs},").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"sigma\": 4,").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"allocator_installed\": {installed},").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"grids\": [").unwrap(); // PANIC: fmt to String is infallible
    for (i, (n, dp_ms, index_ms)) in grids.iter().enumerate() {
        let comma = if i + 1 < grids.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"size\": {n}, \"dp_millis\": {dp_ms:.3}, \
             \"edit_index_millis\": {index_ms:.3}}}{comma}"
        )
        .unwrap(); // PANIC: fmt to String is infallible
    }
    writeln!(json, "  ],").unwrap(); // PANIC: fmt to String is infallible
    writeln!(json, "  \"rows\": [").unwrap(); // PANIC: fmt to String is infallible
    for (i, (n, sim, d, seq_ms, par_ms, allocs, bytes, peak, ratio)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"size\": {n}, \"similarity\": {sim}, \"distance\": {d}, \
             \"osed_millis\": {seq_ms:.3}, \"osed_par_millis\": {par_ms:.3}, \
             \"allocs\": {allocs}, \"alloc_bytes\": {bytes}, \"peak_live_bytes\": {peak}, \
             \"ratio_vs_best_grid\": {ratio:.5}}}{comma}"
        )
        .unwrap(); // PANIC: fmt to String is infallible
    }
    writeln!(json, "  ]").unwrap(); // PANIC: fmt to String is infallible
    json.push_str("}\n");
    std::fs::write(&out_path, &json).map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
    writeln!(report, "[written {out_path}]").unwrap(); // PANIC: fmt to String is infallible
    Ok(report)
}

fn two_operands(opts: &Options) -> Result<[Vec<u8>; 2], CliError> {
    if opts.positional.len() != 2 {
        return Err(err(format!(
            "expected exactly two operands, got {}\n{USAGE}",
            opts.positional.len()
        )));
    }
    Ok([resolve_input(&opts.positional[0])?, resolve_input(&opts.positional[1])?])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The unit-test binary installs the instrumented allocator too, so
    /// the `bench-mem` test exercises real counts rather than the
    /// not-installed zero path.
    #[global_allocator]
    static TEST_ALLOC: slcs_alloc::InstrumentedAlloc = slcs_alloc::InstrumentedAlloc;

    fn run(cmd: &str, args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(cmd, &args)
    }

    #[test]
    fn lcs_command_reports_score_and_witness() {
        let out = run("lcs", &["ABCBDAB", "BDCABA", "--show"]).unwrap();
        assert!(out.contains("LCS = 4"), "{out}");
        assert!(out.contains("witness: "), "{out}");
    }

    #[test]
    fn scan_finds_exact_occurrence() {
        let out = run("scan", &["abc", "zzabczz", "--min-similarity", "0.9"]).unwrap();
        assert!(out.contains("1 hit(s)"), "{out}");
        assert!(out.contains("100.0%"), "{out}");
    }

    #[test]
    fn edit_command_reports_distances() {
        let out = run("edit", &["kitten", "sitting"]).unwrap();
        assert!(out.contains("global edit distance = 3"), "{out}");
    }

    #[test]
    fn braid_command_renders() {
        let out = run("braid", &["ab", "ba"]).unwrap();
        assert!(out.contains("LCS = 1"), "{out}");
        assert!(out.contains('╮'), "{out}");
    }

    #[test]
    fn braid_rejects_large_inputs() {
        let big = "x".repeat(100);
        assert!(run("braid", &[&big, "y"]).is_err());
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let e = run("frobnicate", &[]).unwrap_err();
        assert!(e.0.contains("usage"), "{e}");
    }

    #[test]
    fn operand_arity_is_checked() {
        assert!(run("lcs", &["onlyone"]).is_err());
        assert!(run("lcs", &["a", "b", "c"]).is_err());
    }

    #[test]
    fn resolve_reads_files_and_fasta() {
        let dir = std::env::temp_dir();
        let raw = dir.join("slcs_cli_test_raw.txt");
        std::fs::write(&raw, b"hello\n").unwrap();
        assert_eq!(resolve_input(&format!("@{}", raw.display())).unwrap(), b"hello");
        let fasta = dir.join("slcs_cli_test.fasta");
        std::fs::write(&fasta, b">rec desc\nACGT\nTT\n").unwrap();
        assert_eq!(resolve_input(&format!("@{}", fasta.display())).unwrap(), b"ACGTTT");
        assert!(resolve_input("@/definitely/missing/file").is_err());
        let _ = std::fs::remove_file(raw);
        let _ = std::fs::remove_file(fasta);
    }

    #[test]
    fn cluster_groups_fasta_records() {
        let dir = std::env::temp_dir();
        let f = dir.join("slcs_cli_cluster.fasta");
        std::fs::write(&f, b">a1\nAAAAAAAAAA\n>a2\nAAAAACAAAA\n>b1\nGGGGGGGGGG\n>b2\nGGGGGCGGGG\n")
            .unwrap();
        let path = f.display().to_string();
        let out = run("cluster", &[&path, "--cut", "0.5"]).unwrap_or_else(|e| panic!("{e}"));
        assert!(out.contains("4 sequences"), "{out}");
        assert!(out.contains("{a1, a2}") || out.contains("{a2, a1}"), "{out}");
        assert!(out.contains("{b1, b2}") || out.contains("{b2, b1}"), "{out}");
        let _ = std::fs::remove_file(f);
    }

    #[test]
    fn global_flags_split_off_cleanly() {
        let args: Vec<String> = ["--threads", "3", "--version", "lcs", "a", "b"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (global, rest) = parse_global(&args).unwrap();
        assert!(global.version);
        assert_eq!(global.threads, Some(3));
        assert_eq!(rest, vec!["lcs", "a", "b"]);
        // Flags after the subcommand belong to the subcommand.
        let args: Vec<String> = ["lcs", "--threads"].iter().map(|s| s.to_string()).collect();
        let (global, rest) = parse_global(&args).unwrap();
        assert!(global.threads.is_none());
        assert_eq!(rest.len(), 2);
        assert!(parse_global(&["--threads".to_string()]).is_err());
        assert!(parse_global(&["--threads".to_string(), "0".to_string()]).is_err());
    }

    #[test]
    fn version_command_reports_version() {
        let out = run("version", &[]).unwrap();
        assert!(out.contains(env!("CARGO_PKG_VERSION")), "{out}");
    }

    #[test]
    fn serve_smoke_binds_and_exits() {
        let out = run("serve", &["--addr", "127.0.0.1:0", "--smoke", "--workers", "1"]).unwrap();
        assert!(out.is_empty());
        assert!(run("serve", &["--addr", "not-an-address", "--smoke"]).is_err());
    }

    #[test]
    fn serve_parses_slo_and_recorder_flags() {
        let args = [
            "--addr",
            "127.0.0.1:0",
            "--smoke",
            "--workers",
            "1",
            "--recorder",
            "64",
            "--window-slice",
            "0",
            "--slo",
            "lcs=50000,edit=100000",
            "--slo-depth",
            "10",
            "--slo-budget",
            "2.5",
        ];
        assert!(run("serve", &args).unwrap().is_empty());
        for bad in ["nope", "lcs=abc", "zzz=5"] {
            let e = run("serve", &["--addr", "127.0.0.1:0", "--smoke", "--slo", bad]).unwrap_err();
            assert!(e.0.contains("--slo") || e.0.contains("class"), "{e}");
        }
    }

    #[test]
    fn top_and_audit_commands_poll_a_live_server() {
        let engine = std::sync::Arc::new(slcs_engine::Engine::new(slcs_engine::EngineConfig {
            workers: 1,
            ..slcs_engine::EngineConfig::default()
        }));
        engine
            .submit_wait(slcs_engine::CompareRequest::new(
                &b"abcabba"[..],
                &b"cbabac"[..],
                slcs_engine::Operation::Lcs,
            ))
            .unwrap();
        let handle =
            slcs_engine::serve("127.0.0.1:0", engine, slcs_engine::ServerConfig::default())
                .unwrap();
        let addr = handle.addr().to_string();

        let top = run("top", &["--addr", &addr, "--count", "2", "--interval", "1"]).unwrap();
        assert!(top.contains("health: OK"), "{top}");
        assert!(top.contains("completed=1"), "{top}");
        assert!(top.contains("/s avg"), "{top}");
        assert!(top.contains("cache: hits=0 misses=0 ratio=0.0%"), "{top}");
        assert!(top.contains("dispatch: small_alphabet:1"), "{top}");
        assert!(top.contains("pool: jobs="), "{top}");
        assert!(top.contains("steals="), "{top}");
        assert!(top.contains("windowed p99"), "{top}");
        assert!(top.contains("lcs"), "{top}");

        let audit = run("audit", &["--addr", &addr]).unwrap();
        assert!(audit.starts_with("OK 1"), "{audit}");
        assert!(audit.contains("class=lcs"), "{audit}");
        let slowest = run("audit", &["--addr", &addr, "slowest", "1"]).unwrap();
        assert!(slowest.starts_with("OK 1"), "{slowest}");
        assert!(slowest.contains("service_ns="), "{slowest}");
        // A fast request under the default SLO leaves no slow captures.
        let captures = run("audit", &["--addr", &addr, "captures"]).unwrap();
        assert!(captures.starts_with("OK 0"), "{captures}");
        // Bad filters surface the server's usage error without hanging.
        let bad = run("audit", &["--addr", &addr, "bogus"]).unwrap();
        assert!(bad.starts_with("ERR"), "{bad}");

        handle.stop();
        assert!(run("top", &["--addr", "256.0.0.1:1", "--count", "1"]).is_err());
    }

    #[test]
    fn bench_engine_reports_throughput_and_stats() {
        let out = run(
            "bench-engine",
            &["--requests", "24", "--pairs", "3", "--len", "48", "--queue", "4", "--workers", "2"],
        )
        .unwrap();
        assert!(out.contains("24 requests"), "{out}");
        assert!(out.contains("hits="), "{out}");
        assert!(out.contains("req/s"), "{out}");
    }

    #[test]
    fn bench_baseline_quick_writes_json() {
        let out = std::env::temp_dir().join("slcs_bench_pool_test.json");
        let path = out.display().to_string();
        let text = run(
            "bench-baseline",
            &["--quick", "--sizes", "256", "--threads", "1,2", "--runs", "1", "--out", &path],
        )
        .unwrap();
        assert!(text.contains("ns/cell"), "{text}");
        assert!(text.contains("team"), "{text}");
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"mode\": \"team\""), "{json}");
        assert!(json.contains("\"mode\": \"spawn_per_diag\""), "{json}");
        assert!(json.contains("\"mode\": \"work_steal\""), "{json}");
        assert!(json.contains("\"mode\": \"auto\""), "{json}");
        assert!(json.contains("\"par_grain\": "), "{json}");
        assert!(json.contains("\"pool_spawned_workers\": "), "{json}");
        let _ = std::fs::remove_file(out);
        assert!(run("bench-baseline", &["--sizes", "bogus"]).is_err());
    }

    #[test]
    fn tune_quick_writes_loadable_profile() {
        let out = std::env::temp_dir().join("slcs_tune_test.json");
        let path = out.display().to_string();
        let text = run(
            "tune",
            &[
                "--quick",
                "--sizes",
                "128,256",
                "--threads",
                "1,2",
                "--grains",
                "64",
                "--runs",
                "1",
                "--out",
                &path,
            ],
        )
        .unwrap();
        assert!(text.contains("ns/cell"), "{text}");
        assert!(text.contains("[written "), "{text}");
        let json = std::fs::read_to_string(&out).unwrap();
        let profile = slcs_semilocal::parse_profile(&json).expect("tune output must parse back");
        assert_eq!(profile.version, slcs_semilocal::TUNING_VERSION);
        // One band per (threads bucket, measured size), the last band of
        // each bucket unbounded and the first reaching halfway to 256².
        assert_eq!(profile.entries.len(), 4, "{json}");
        for t in [1usize, 2] {
            let bucket: Vec<_> = profile.entries.iter().filter(|e| e.threads == t).collect();
            assert_eq!(bucket.len(), 2, "{json}");
            assert!(
                bucket[0].max_area >= 128 * 128 && bucket[0].max_area < 256 * 256,
                "midpoint band: {json}"
            );
            assert_eq!(bucket[1].max_area, 0, "catch-all band: {json}");
        }
        let _ = std::fs::remove_file(out);
        assert!(run("tune", &["--sizes", "bogus"]).is_err());
    }

    #[test]
    fn trace_subcommand_exports_timeline() {
        let _guard = slcs_trace::test_support::hold();
        let out_file = std::env::temp_dir().join("slcs_cli_trace_test.json");
        let path = out_file.display().to_string();
        let out = run("trace", &["--out", &path, "lcs", "ABCBDAB", "BDCABA"]).unwrap();
        assert!(out.contains("LCS = 4"), "{out}");
        assert!(out.contains("[trace written "), "{out}");
        let json = std::fs::read_to_string(&out_file).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        let _ = std::fs::remove_file(out_file);
        // Without --out, the text tree is appended to the output.
        let text = run("trace", &["lcs", "ab", "ba"]).unwrap();
        assert!(text.contains("--- trace ---"), "{text}");
        assert!(run("trace", &[]).is_err());
        assert!(run("trace", &["trace", "lcs", "a", "b"]).is_err());
        assert!(run("trace", &["--format", "yaml", "lcs", "a", "b"]).is_err());
    }

    #[test]
    fn bench_baseline_trace_flag_covers_all_three_layers() {
        let _guard = slcs_trace::test_support::hold();
        let dir = std::env::temp_dir();
        let out = dir.join("slcs_bench_pool_traced_test.json");
        let trace = dir.join("slcs_bench_pool_traced_test_timeline.json");
        let (out_s, trace_s) = (out.display().to_string(), trace.display().to_string());
        let text = run(
            "bench-baseline",
            &[
                "--quick",
                "--sizes",
                "256",
                "--threads",
                "2",
                "--runs",
                "1",
                "--out",
                &out_s,
                "--trace",
                &trace_s,
            ],
        )
        .unwrap();
        assert!(text.contains("[trace written "), "{text}");
        let json = std::fs::read_to_string(&trace).unwrap();
        for span in [
            "wavefront.diag",
            "pool.job",
            "engine.request",
            "team.run",
            "engine.dispatch",
            "osed.sa_build",
            "osed.lcp_build",
            "osed.edit",
            "osed.bfs_round",
            "engine.slow_capture",
        ] {
            assert!(json.contains(span), "missing {span} in traced bench timeline");
        }
        assert!(json.contains("edit_similar"), "osed routing reason missing:\n{json:.300}");
        let _ = std::fs::remove_file(out);
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn bench_obs_quick_writes_overhead_json() {
        let _guard = slcs_trace::test_support::hold();
        let out = std::env::temp_dir().join("slcs_bench_obs_test.json");
        let path = out.display().to_string();
        let text = run(
            "bench-obs",
            &["--quick", "--size", "256", "--threads", "2", "--runs", "1", "--out", &path],
        )
        .unwrap();
        assert!(text.contains("untraced"), "{text}");
        assert!(text.contains("events recorded"), "{text}");
        assert!(text.contains("recorder off"), "{text}");
        assert!(text.contains("recorder+windows on"), "{text}");
        let json = std::fs::read_to_string(&out).unwrap();
        for key in [
            "\"untraced_millis\"",
            "\"disabled_millis\"",
            "\"enabled_millis\"",
            "\"overhead_disabled_percent\"",
            "\"trace_events_recorded\"",
            "\"recorder_requests\"",
            "\"recorder_off_millis\"",
            "\"recorder_on_millis\"",
            "\"overhead_recorder_percent\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        let _ = std::fs::remove_file(out);
    }

    #[test]
    fn bench_mem_shows_memopt_beating_naive() {
        let out = std::env::temp_dir().join("slcs_bench_mem_test.json");
        let path = out.display().to_string();
        let text = run(
            "bench-mem",
            &["--quick", "--size", "256", "--mults", "4", "--runs", "1", "--out", &path],
        )
        .unwrap();
        assert!(text.contains("allocs"), "{text}");
        assert!(text.contains("fewer allocations"), "{text}");
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"allocator_installed\": true"), "{json}");
        let field = |variant: &str, key: &str| -> u64 {
            let v = json.split(&format!("\"name\": \"{variant}\"")).nth(1).unwrap();
            let v = v.split(&format!("\"{key}\": ")).nth(1).unwrap();
            v.split(|c: char| !c.is_ascii_digit()).next().unwrap().parse().unwrap()
        };
        let (naive_allocs, memopt_allocs) = (field("naive", "allocs"), field("memopt", "allocs"));
        let (naive_peak, memopt_peak) =
            (field("naive", "peak_live_bytes"), field("memopt", "peak_live_bytes"));
        assert!(
            memopt_allocs < naive_allocs,
            "memopt must allocate strictly less: {memopt_allocs} vs {naive_allocs}"
        );
        assert!(
            memopt_peak < naive_peak,
            "memopt peak must be strictly lower: {memopt_peak} vs {naive_peak}"
        );
        let _ = std::fs::remove_file(out);
    }

    #[test]
    fn bench_osed_sweeps_and_beats_the_grid() {
        let out = std::env::temp_dir().join("slcs_bench_osed_test.json");
        let path = out.display().to_string();
        let text =
            run("bench-osed", &["--quick", "--sizes", "1024", "--runs", "1", "--out", &path])
                .unwrap();
        assert!(text.contains("osed"), "{text}");
        assert!(text.contains("ratio"), "{text}");
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"bench\": \"bench-osed\""), "{json}");
        assert!(json.contains("\"allocator_installed\": true"), "{json}");
        for key in [
            "\"similarity\": 0.9,",
            "\"similarity\": 0.99,",
            "\"similarity\": 0.999,",
            "\"osed_millis\"",
            "\"osed_par_millis\"",
            "\"ratio_vs_best_grid\"",
            "\"dp_millis\"",
            "\"edit_index_millis\"",
            "\"allocs\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // At 99% similarity even a 1024-size sweep should already be
        // well under the grid paths.
        let row = json.split("\"similarity\": 0.99,").nth(1).unwrap();
        let ratio: f64 = row
            .split("\"ratio_vs_best_grid\": ")
            .nth(1)
            .unwrap()
            .split('}')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(ratio < 1.0, "osed should beat the best grid path, ratio {ratio}");
        let _ = std::fs::remove_file(out);
        assert!(run("bench-osed", &["--sizes", "bogus"]).is_err());
    }

    #[test]
    fn options_parser_handles_flags_and_values() {
        let args: Vec<String> =
            ["x", "--window", "5", "--show", "y"].iter().map(|s| s.to_string()).collect();
        let o = Options::parse(&args, &["window"]).unwrap();
        assert_eq!(o.positional, vec!["x", "y"]);
        assert_eq!(o.value_parsed::<usize>("window").unwrap(), Some(5));
        assert!(o.has("show"));
        assert!(!o.has("quiet"));
        assert!(Options::parse(&["--window".to_string()], &["window"]).is_err());
    }
}
