//! `slcs` — semi-local string comparison from the command line.

/// The instrumented allocator is installed for the whole binary so that
/// `bench-mem`, the `STATS`/`METRICS` server commands, and `alloc_scope!`
/// attribution all see real counts (the counting path is a handful of
/// relaxed per-thread updates; see `slcs-alloc` and BENCH_obs.json for
/// the measured overhead).
#[global_allocator]
static ALLOC: slcs_alloc::InstrumentedAlloc = slcs_alloc::InstrumentedAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (global, rest) = match slcs_cli::parse_global(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("slcs: {e}");
            std::process::exit(2);
        }
    };
    if global.version {
        println!("{}", slcs_cli::version_string());
        return;
    }
    if let Some(n) = global.threads {
        // Size the global rayon pool before any parallel algorithm runs.
        if let Err(e) = rayon::ThreadPoolBuilder::new().num_threads(n).build_global() {
            eprintln!("slcs: cannot configure {n} threads: {e}");
            std::process::exit(2);
        }
    }
    let Some((cmd, rest)) = rest.split_first() else {
        println!("{}", slcs_cli::USAGE);
        return;
    };
    match slcs_cli::dispatch(cmd, rest) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("slcs: {e}");
            std::process::exit(2);
        }
    }
}
