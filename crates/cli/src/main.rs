//! `slcs` — semi-local string comparison from the command line.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        println!("{}", slcs_cli::USAGE);
        return;
    };
    match slcs_cli::dispatch(cmd, rest) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("slcs: {e}");
            std::process::exit(2);
        }
    }
}
