//! Carry-free bit-parallel LCS by iterative combing — the novel
//! algorithm of Mishin, Berezun & Tiskin (ICPP 2021), §4.4 / Listing 8.
//!
//! One strand per **bit**: the grid is swept in anti-diagonal `w × w`
//! blocks, strands are aligned by shifts and combed with pure Boolean
//! logic — no integer additions (hence no carry chains, unlike the
//! classical bit-parallel LCS algorithms of Crochemore et al. and Hyyrö,
//! implemented in `slcs-baselines` for comparison), and no precomputed
//! tables. Runs in O(mn/w) word operations.
//!
//! Variants (paper names):
//!
//! | paper | function | what changes |
//! |---|---|---|
//! | `bit_old` | [`bit_lcs_old`] | loads/stores per sub-grid anti-diagonal |
//! | `bit_new_1` | [`bit_lcs_new1`] | per-block register residency |
//! | `bit_new_2` | [`bit_lcs_new2`] | + optimized Boolean formula |
//! | (parallel) | [`par_bit_lcs_old`] … | blocks of one diagonal in parallel |
//! | (future work §6) | [`bit_lcs_alphabet`] | bit-plane match for σ ≤ 256 |
//!
//! # Example
//!
//! ```
//! use slcs_bitpar::bit_lcs_new2;
//!
//! let a: Vec<u8> = (0..1000).map(|i| (i % 3 == 0) as u8).collect();
//! let b: Vec<u8> = (0..800).map(|i| (i % 2) as u8).collect();
//! let score = bit_lcs_new2(&a, &b);
//! assert!(score <= 800);
//! ```

pub mod algo;
pub mod block;
pub mod pack;

pub use algo::{
    bit_lcs_alphabet, bit_lcs_new1, bit_lcs_new2, bit_lcs_old, par_bit_lcs_alphabet,
    par_bit_lcs_new1, par_bit_lcs_new2, par_bit_lcs_old,
};
