//! Single-block combing kernels: one `w × w` sub-grid held in registers.
//!
//! Strand "indices" are single bits: horizontal strands start as ones,
//! vertical as zeros, and a pair has crossed before iff the horizontal
//! bit is **less** than the vertical one (`!h & v`). A sub-grid
//! anti-diagonal is processed by aligning the `h`/`a` words against the
//! `v`/`b` words with a shift, computing the combing condition in Boolean
//! logic, and conditionally swapping the aligned bits — no additions, no
//! carries, no lookup tables (§4.4).
//!
//! Two inner-loop formulas are provided:
//!
//! * [`step_original`] — the direct transcription of the example in §4.4
//!   (used by `bit_old` and `bit_new_1`);
//! * [`step_optimized`] — the paper's minimized Boolean formula
//!   `v = ((h ≫ k) | !mask) & (v | (match & mask))` with the
//!   `h ⊕= (vΔ ≪ k)` back-fill, reducing the op count ≈ 18 → 12
//!   (used by `bit_new_2`).

use crate::pack::W;

/// Which inner-loop formula a variant uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Formula {
    /// §4.4 example formula (bit_old / bit_new_1).
    Original,
    /// Optimized formula (bit_new_2).
    Optimized,
}

/// Per-character match bits for one aligned diagonal, already masked by
/// validity. `P` is the number of bit planes (1 for binary alphabets).
#[inline(always)]
fn match_shifted_right<const P: usize>(
    a: &[u64; P],
    b: &[u64; P],
    av: u64,
    bv: u64,
    shift: u32,
) -> u64 {
    let mut sm = !0u64;
    for p in 0..P {
        sm &= !((a[p] >> shift) ^ b[p]);
    }
    sm & (av >> shift) & bv
}

#[inline(always)]
fn match_shifted_left<const P: usize>(
    a: &[u64; P],
    b: &[u64; P],
    av: u64,
    bv: u64,
    shift: u32,
) -> u64 {
    let mut sm = !0u64;
    for p in 0..P {
        sm &= !((a[p] << shift) ^ b[p]);
    }
    sm & (av << shift) & bv
}

/// One anti-diagonal step with the original formula. `d_in ∈ [0, 2w−1)`
/// indexes the sub-grid anti-diagonal: the upper-left triangle for
/// `d_in < w−1`, the main anti-diagonal at `w−1`, the lower-right
/// triangle after.
#[inline(always)]
pub fn step_original<const P: usize>(
    h: &mut u64,
    v: &mut u64,
    a: &[u64; P],
    b: &[u64; P],
    av: u64,
    bv: u64,
    d_in: usize,
) {
    if d_in < W {
        // upper-left triangle and main diagonal: h shifted right
        let shift = (W - 1 - d_in) as u32;
        let mask = if d_in + 1 >= W { !0u64 } else { (1u64 << (d_in + 1)) - 1 };
        let sm = match_shifted_right(a, b, av, bv, shift);
        let hs = *h >> shift;
        let cond = mask & (sm | (!hs & *v));
        let vold = *v;
        *v = (!cond & *v) | (cond & hs);
        let cond2 = cond << shift;
        *h = (!cond2 & *h) | (cond2 & (vold << shift));
    } else {
        // lower-right triangle: h shifted left
        let shift = (d_in - (W - 1)) as u32;
        let mask = !0u64 << shift;
        let sm = match_shifted_left(a, b, av, bv, shift);
        let hs = *h << shift;
        let cond = mask & (sm | (!hs & *v));
        let vold = *v;
        *v = (!cond & *v) | (cond & hs);
        let cond2 = cond >> shift;
        *h = (!cond2 & *h) | (cond2 & (vold >> shift));
    }
}

/// One anti-diagonal step with the optimized formula.
#[inline(always)]
pub fn step_optimized<const P: usize>(
    h: &mut u64,
    v: &mut u64,
    a: &[u64; P],
    b: &[u64; P],
    av: u64,
    bv: u64,
    d_in: usize,
) {
    if d_in < W {
        let shift = (W - 1 - d_in) as u32;
        let mask = if d_in + 1 >= W { !0u64 } else { (1u64 << (d_in + 1)) - 1 };
        let sm = match_shifted_right(a, b, av, bv, shift) & mask;
        let hs = *h >> shift;
        let vold = *v;
        *v = (hs | !mask) & (*v | sm);
        *h ^= (*v ^ vold) << shift;
    } else {
        let shift = (d_in - (W - 1)) as u32;
        let mask = !0u64 << shift;
        let sm = match_shifted_left(a, b, av, bv, shift) & mask;
        let hs = *h << shift;
        let vold = *v;
        *v = (hs | !mask) & (*v | sm);
        *h ^= (*v ^ vold) >> shift;
    }
}

/// Combs a full `w × w` block in registers: load once, run all `2w − 1`
/// sub-grid anti-diagonals, write back once (the memory-access
/// optimization of `bit_new_1` / `bit_new_2`).
#[inline]
pub fn comb_block<const P: usize>(
    h: &mut u64,
    v: &mut u64,
    a: &[u64; P],
    b: &[u64; P],
    av: u64,
    bv: u64,
    formula: Formula,
) {
    let mut hh = *h;
    let mut vv = *v;
    match formula {
        Formula::Original => {
            for d_in in 0..(2 * W - 1) {
                step_original(&mut hh, &mut vv, a, b, av, bv, d_in);
            }
        }
        Formula::Optimized => {
            for d_in in 0..(2 * W - 1) {
                step_optimized(&mut hh, &mut vv, a, b, av, bv, d_in);
            }
        }
    }
    *h = hh;
    *v = vv;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both formulas must be bit-identical on every step for random
    /// block states.
    #[test]
    fn formulas_agree_step_by_step() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB10C);
        for _ in 0..50 {
            let a = [rng.random::<u64>()];
            let b = [rng.random::<u64>()];
            let (av, bv) = (!0u64, !0u64);
            let mut h1 = !0u64;
            let mut v1 = 0u64;
            let (mut h2, mut v2) = (h1, v1);
            for d_in in 0..(2 * W - 1) {
                step_original(&mut h1, &mut v1, &a, &b, av, bv, d_in);
                step_optimized(&mut h2, &mut v2, &a, &b, av, bv, d_in);
                assert_eq!((h1, v1), (h2, v2), "diverged at d_in={d_in}");
            }
        }
    }

    /// Popcount is conserved: combing only swaps bits between h and v.
    #[test]
    fn combing_conserves_total_bits() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let a = [rng.random::<u64>()];
            let b = [rng.random::<u64>()];
            let mut h = rng.random::<u64>();
            let mut v = rng.random::<u64>();
            let before = h.count_ones() + v.count_ones();
            comb_block(&mut h, &mut v, &a, &b, !0, !0, Formula::Optimized);
            assert_eq!(h.count_ones() + v.count_ones(), before);
        }
    }

    /// An all-match block never crosses strands: with h = ones, v = zeros
    /// the swap fires in every cell, so every h bit drains into v exactly
    /// once per column… the invariant to check is just the final score
    /// contribution: all horizontal strands turn down (h becomes 0).
    #[test]
    fn all_match_block_turns_every_strand() {
        let a = [0u64];
        let b = [0u64]; // equal strings of zeros: every cell matches
        let mut h = !0u64;
        let mut v = 0u64;
        comb_block(&mut h, &mut v, &a, &b, !0, !0, Formula::Optimized);
        assert_eq!(h, 0, "all horizontal strands must exit through the bottom");
        assert_eq!(v, !0u64);
    }
}
