//! The bit-parallel combing LCS drivers (Listing 8 of the paper and its
//! optimized variants), for binary and small non-binary alphabets.
//!
//! The grid is processed in `w × w` blocks along block anti-diagonals;
//! blocks on one block-diagonal are independent, which is where the
//! thread parallelism (`par_*`) applies. The three paper variants:
//!
//! * `bit_old` — Listing 8 **without** the memory-access optimization:
//!   every sub-grid anti-diagonal reloads and stores its words;
//! * `bit_new_1` — each block is loaded once, combed entirely in
//!   registers, and stored once;
//! * `bit_new_2` — additionally uses the optimized Boolean formula.
//!
//! The final LCS score is `|a| − popcount(h)` (Kernighan count) — padding
//! positions are masked to never match, which leaves the score intact.

use rayon::prelude::*;

use crate::block::{comb_block, step_original, Formula};
use crate::pack::{pack_plane, pack_plane_rev, planes_for, PackedPlane, W};

/// Block-diagonal geometry, mirroring the strand-level version: for
/// block diagonal `d`, blocks are `(h_word h0 + j, v_word v0 + j)`.
#[inline]
fn diag_ranges(hb: usize, vb: usize, d: usize) -> (usize, usize, usize) {
    let j_lo = d.saturating_sub(hb - 1);
    let j_hi = (d + 1).min(vb);
    let h0 = if d < hb { hb - 1 - d } else { 0 };
    (h0, j_lo, j_hi - j_lo)
}

/// How a variant traverses memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MemAccess {
    /// Reload words on every sub-grid anti-diagonal (`bit_old`).
    PerDiagonal,
    /// Load each block once into registers (`bit_new_1` / `bit_new_2`).
    PerBlock(Formula),
}

struct Packed<const P: usize> {
    a_bits: Vec<[u64; P]>,
    b_bits: Vec<[u64; P]>,
    a_valid: Vec<u64>,
    b_valid: Vec<u64>,
}

fn pack_all<const P: usize>(a: &[u8], b: &[u8]) -> Packed<P> {
    let mut a_planes: Vec<PackedPlane> = (0..P as u32).map(|p| pack_plane_rev(a, p)).collect();
    let mut b_planes: Vec<PackedPlane> = (0..P as u32).map(|p| pack_plane(b, p)).collect();
    let hb = a_planes[0].bits.len();
    let vb = b_planes[0].bits.len();
    let mut a_bits = vec![[0u64; P]; hb];
    let mut b_bits = vec![[0u64; P]; vb];
    for (g, word) in a_bits.iter_mut().enumerate() {
        for (p, plane) in a_planes.iter().enumerate() {
            word[p] = plane.bits[g];
        }
    }
    for (g, word) in b_bits.iter_mut().enumerate() {
        for (p, plane) in b_planes.iter().enumerate() {
            word[p] = plane.bits[g];
        }
    }
    let a_valid = std::mem::take(&mut a_planes[0].valid);
    let b_valid = std::mem::take(&mut b_planes[0].valid);
    Packed { a_bits, b_bits, a_valid, b_valid }
}

fn driver<const P: usize>(a: &[u8], b: &[u8], access: MemAccess, parallel: bool) -> usize {
    let m = a.len();
    let n = b.len();
    if m == 0 || n == 0 {
        return 0;
    }
    let packed = pack_all::<P>(a, b);
    let hb = packed.a_bits.len();
    let vb = packed.b_bits.len();
    let mut h = vec![!0u64; hb];
    let mut v = vec![0u64; vb];

    for d in 0..(hb + vb - 1) {
        let (h0, v0, len) = diag_ranges(hb, vb, d);
        let hs = &mut h[h0..h0 + len];
        let vs = &mut v[v0..v0 + len];
        let aw = &packed.a_bits[h0..h0 + len];
        let bw = &packed.b_bits[v0..v0 + len];
        let avw = &packed.a_valid[h0..h0 + len];
        let bvw = &packed.b_valid[v0..v0 + len];
        match access {
            MemAccess::PerBlock(formula) => {
                if parallel {
                    hs.par_iter_mut()
                        .with_min_len(64)
                        .zip(vs.par_iter_mut())
                        .zip(aw.par_iter().zip(bw.par_iter()))
                        .zip(avw.par_iter().zip(bvw.par_iter()))
                        .for_each(|(((h, v), (a, b)), (&av, &bv))| {
                            comb_block(h, v, a, b, av, bv, formula);
                        });
                } else {
                    for j in 0..len {
                        comb_block(&mut hs[j], &mut vs[j], &aw[j], &bw[j], avw[j], bvw[j], formula);
                    }
                }
            }
            MemAccess::PerDiagonal => {
                // bit_old: the inner-diagonal loop is OUTSIDE the block
                // loop, so every step re-touches memory (and, in the
                // parallel case, re-synchronizes and false-shares).
                for d_in in 0..(2 * W - 1) {
                    if parallel {
                        hs.par_iter_mut()
                            .with_min_len(256)
                            .zip(vs.par_iter_mut())
                            .zip(aw.par_iter().zip(bw.par_iter()))
                            .zip(avw.par_iter().zip(bvw.par_iter()))
                            .for_each(|(((h, v), (a, b)), (&av, &bv))| {
                                step_original(h, v, a, b, av, bv, d_in);
                            });
                    } else {
                        for j in 0..len {
                            step_original(
                                &mut hs[j], &mut vs[j], &aw[j], &bw[j], avw[j], bvw[j], d_in,
                            );
                        }
                    }
                }
            }
        }
    }
    hb * W - h.iter().map(|w| w.count_ones() as usize).sum::<usize>()
}

fn assert_binary(s: &[u8], name: &str) {
    assert!(s.iter().all(|&c| c <= 1), "{name} must be a binary string of 0/1 byte values");
}

/// `bit_old`: Listing 8 without the memory-access optimization.
pub fn bit_lcs_old(a: &[u8], b: &[u8]) -> usize {
    assert_binary(a, "a");
    assert_binary(b, "b");
    driver::<1>(a, b, MemAccess::PerDiagonal, false)
}

/// `bit_new_1`: per-block register processing, original formula.
pub fn bit_lcs_new1(a: &[u8], b: &[u8]) -> usize {
    assert_binary(a, "a");
    assert_binary(b, "b");
    driver::<1>(a, b, MemAccess::PerBlock(Formula::Original), false)
}

/// `bit_new_2`: per-block register processing, optimized formula — the
/// paper's fastest configuration (≈16× over hybrid combing, ≈29× over
/// iterative combing on binary strings of length 10⁶).
pub fn bit_lcs_new2(a: &[u8], b: &[u8]) -> usize {
    assert_binary(a, "a");
    assert_binary(b, "b");
    driver::<1>(a, b, MemAccess::PerBlock(Formula::Optimized), false)
}

/// Thread-parallel `bit_old` (Figure 9(a)'s slow configuration: one
/// barrier per sub-grid anti-diagonal plus false sharing).
pub fn par_bit_lcs_old(a: &[u8], b: &[u8]) -> usize {
    assert_binary(a, "a");
    assert_binary(b, "b");
    driver::<1>(a, b, MemAccess::PerDiagonal, true)
}

/// Thread-parallel `bit_new_1`.
pub fn par_bit_lcs_new1(a: &[u8], b: &[u8]) -> usize {
    assert_binary(a, "a");
    assert_binary(b, "b");
    driver::<1>(a, b, MemAccess::PerBlock(Formula::Original), true)
}

/// Thread-parallel `bit_new_2`.
pub fn par_bit_lcs_new2(a: &[u8], b: &[u8]) -> usize {
    assert_binary(a, "a");
    assert_binary(b, "b");
    driver::<1>(a, b, MemAccess::PerBlock(Formula::Optimized), true)
}

/// Small-alphabet extension (the paper's §6 future-work direction):
/// symbols are compared plane-wise (one XNOR per bit plane), everything
/// else — anti-diagonal blocks, carry-free combing, Kernighan count —
/// is unchanged. Supports byte alphabets up to 256 symbols; cost grows
/// by one XNOR+AND per extra plane.
///
/// # Examples
///
/// ```
/// use slcs_bitpar::bit_lcs_alphabet;
/// // DNA as 0..=3
/// let a = [0u8, 1, 2, 3, 0, 1];
/// let b = [1u8, 2, 0, 3, 1];
/// assert_eq!(bit_lcs_alphabet(&a, &b), 4);
/// ```
pub fn bit_lcs_alphabet(a: &[u8], b: &[u8]) -> usize {
    dispatch_planes(a, b, false)
}

/// Thread-parallel [`bit_lcs_alphabet`].
pub fn par_bit_lcs_alphabet(a: &[u8], b: &[u8]) -> usize {
    dispatch_planes(a, b, true)
}

fn dispatch_planes(a: &[u8], b: &[u8], parallel: bool) -> usize {
    let max = a.iter().chain(b).copied().max().unwrap_or(0);
    let planes = planes_for(max);
    let access = MemAccess::PerBlock(Formula::Optimized);
    match planes {
        1 => driver::<1>(a, b, access, parallel),
        2 => driver::<2>(a, b, access, parallel),
        3 => driver::<3>(a, b, access, parallel),
        4 => driver::<4>(a, b, access, parallel),
        5 => driver::<5>(a, b, access, parallel),
        6 => driver::<6>(a, b, access, parallel),
        7 => driver::<7>(a, b, access, parallel),
        _ => driver::<8>(a, b, access, parallel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use slcs_baselines::prefix_rowmajor;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xB17A)
    }

    fn random_binary(rng: &mut impl rand::Rng, len: usize) -> Vec<u8> {
        (0..len).map(|_| rng.random_range(0..2u8)).collect()
    }

    /// Reproduces the §4.4 / Figure 3 worked example end to end.
    #[test]
    fn paper_figure3_example() {
        let a = [1u8, 0, 0, 0];
        let b = [0u8, 1, 0, 0];
        let want = prefix_rowmajor(&a, &b);
        assert_eq!(want, 3);
        assert_eq!(bit_lcs_old(&a, &b), 3);
        assert_eq!(bit_lcs_new1(&a, &b), 3);
        assert_eq!(bit_lcs_new2(&a, &b), 3);
    }

    #[test]
    fn all_variants_match_dp_on_random_binary() {
        let mut rng = rng();
        for _ in 0..25 {
            let m = rng.random_range(0..300);
            let n = rng.random_range(0..300);
            let a = random_binary(&mut rng, m);
            let b = random_binary(&mut rng, n);
            let want = prefix_rowmajor(&a, &b);
            assert_eq!(bit_lcs_old(&a, &b), want, "old m={m} n={n}");
            assert_eq!(bit_lcs_new1(&a, &b), want, "new1 m={m} n={n}");
            assert_eq!(bit_lcs_new2(&a, &b), want, "new2 m={m} n={n}");
            assert_eq!(par_bit_lcs_old(&a, &b), want, "par old");
            assert_eq!(par_bit_lcs_new1(&a, &b), want, "par new1");
            assert_eq!(par_bit_lcs_new2(&a, &b), want, "par new2");
        }
    }

    #[test]
    fn word_boundary_lengths() {
        let mut rng = rng();
        for m in [1usize, 63, 64, 65, 128, 192, 200] {
            for n in [1usize, 64, 100, 128] {
                let a = random_binary(&mut rng, m);
                let b = random_binary(&mut rng, n);
                let want = prefix_rowmajor(&a, &b);
                assert_eq!(bit_lcs_new2(&a, &b), want, "m={m} n={n}");
            }
        }
    }

    #[test]
    fn identical_and_disjoint_inputs() {
        let ones = vec![1u8; 150];
        let zeros = vec![0u8; 150];
        assert_eq!(bit_lcs_new2(&ones, &ones), 150);
        assert_eq!(bit_lcs_new2(&ones, &zeros), 0);
        assert_eq!(bit_lcs_old(&ones, &zeros), 0);
        assert_eq!(bit_lcs_new2(&[], &ones), 0);
        assert_eq!(bit_lcs_new2(&ones, &[]), 0);
    }

    #[test]
    #[should_panic(expected = "binary string")]
    fn binary_variants_reject_larger_alphabets() {
        bit_lcs_new2(&[0, 1, 2], &[0, 1]);
    }

    #[test]
    fn alphabet_extension_matches_dp() {
        let mut rng = rng();
        for sigma in [2u8, 3, 4, 8, 26, 255] {
            for _ in 0..6 {
                let m = rng.random_range(0..200);
                let n = rng.random_range(0..200);
                let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..sigma)).collect();
                let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..sigma)).collect();
                let want = prefix_rowmajor(&a, &b);
                assert_eq!(bit_lcs_alphabet(&a, &b), want, "σ={sigma} m={m} n={n}");
                assert_eq!(par_bit_lcs_alphabet(&a, &b), want, "par σ={sigma}");
            }
        }
    }

    #[test]
    fn long_run_stress_against_dp() {
        let mut rng = rng();
        let a = random_binary(&mut rng, 2000);
        let b = random_binary(&mut rng, 1500);
        assert_eq!(bit_lcs_new2(&a, &b), prefix_rowmajor(&a, &b));
    }
}
