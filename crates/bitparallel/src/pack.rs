//! Bit packing of input strings for the bit-parallel combing algorithms.
//!
//! String `a` is stored **reversed** (both the word order and the bit
//! order within each word), string `b` in normal order, both LSB-first —
//! so that when the grid is swept in anti-diagonals, consecutive cells
//! read consecutive bits of both strings and plain shifts align them
//! (§4.4 of the paper). Each string also carries a *validity* mask so
//! inputs need not be multiples of the word size: padded positions are
//! forced to mismatch, which leaves the LCS unchanged (appending
//! never-matching characters to both strings is LCS-neutral).

/// Machine word width used by the algorithms.
pub const W: usize = 64;

/// A packed bit-plane: one bit per character, plus validity.
#[derive(Clone, Debug)]
pub struct PackedPlane {
    /// Character bits, LSB-first within each word.
    pub bits: Vec<u64>,
    /// Validity: bit set ⇔ the position is a real character.
    pub valid: Vec<u64>,
}

/// Packs bit-plane `plane` of `s` in natural order (for string `b`).
pub fn pack_plane(s: &[u8], plane: u32) -> PackedPlane {
    let words = s.len().div_ceil(W);
    let mut bits = vec![0u64; words];
    let mut valid = vec![0u64; words];
    for (t, &c) in s.iter().enumerate() {
        bits[t / W] |= (((c >> plane) & 1) as u64) << (t % W);
        valid[t / W] |= 1u64 << (t % W);
    }
    PackedPlane { bits, valid }
}

/// Packs bit-plane `plane` of `s` reversed (for string `a`): bit `t` of
/// the packed stream is character `s[len−1−t]`.
pub fn pack_plane_rev(s: &[u8], plane: u32) -> PackedPlane {
    let words = s.len().div_ceil(W);
    let mut bits = vec![0u64; words];
    let mut valid = vec![0u64; words];
    let len = s.len();
    for t in 0..len {
        let c = s[len - 1 - t];
        bits[t / W] |= (((c >> plane) & 1) as u64) << (t % W);
        valid[t / W] |= 1u64 << (t % W);
    }
    PackedPlane { bits, valid }
}

/// Number of bit planes needed for symbols `0..=max_symbol`.
pub fn planes_for(max_symbol: u8) -> u32 {
    (8 - max_symbol.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure3_encoding() {
        // §4.4 worked example: a = "1000", b = "0100" encode (w = 4 there,
        // least significant bits here) to a' = 1000₂, b' = 0010₂.
        let a = [1u8, 0, 0, 0];
        let b = [0u8, 1, 0, 0];
        let pa = pack_plane_rev(&a, 0);
        let pb = pack_plane(&b, 0);
        assert_eq!(pa.bits[0] & 0xF, 0b1000);
        assert_eq!(pb.bits[0] & 0xF, 0b0010);
        assert_eq!(pa.valid[0], 0xF);
    }

    #[test]
    fn validity_masks_cover_exactly_the_string() {
        let s = vec![1u8; 70]; // crosses one word boundary
        let p = pack_plane(&s, 0);
        assert_eq!(p.bits.len(), 2);
        assert_eq!(p.valid[0], u64::MAX);
        assert_eq!(p.valid[1], (1u64 << 6) - 1);
    }

    #[test]
    fn higher_planes_extract_high_bits() {
        let s = [0b101u8, 0b010, 0b111];
        let p0 = pack_plane(&s, 0);
        let p1 = pack_plane(&s, 1);
        let p2 = pack_plane(&s, 2);
        assert_eq!(p0.bits[0] & 0b111, 0b101);
        assert_eq!(p1.bits[0] & 0b111, 0b110);
        assert_eq!(p2.bits[0] & 0b111, 0b101);
    }

    #[test]
    fn planes_for_common_alphabets() {
        assert_eq!(planes_for(1), 1); // binary
        assert_eq!(planes_for(3), 2); // DNA as 0..=3
        assert_eq!(planes_for(4), 3);
        assert_eq!(planes_for(255), 8);
        assert_eq!(planes_for(0), 1);
    }
}
