//! Pairwise sequence similarity and hierarchical clustering.
//!
//! The paper motivates semi-local comparison with real-life data analysis
//! (virus genomes, time series). This module provides the standard
//! downstream workflow: an LCS-based distance over a collection of
//! sequences (computed in parallel with rayon, using the carry-free
//! bit-parallel LCS for small alphabets) and average-linkage
//! agglomerative clustering over the resulting matrix.

use rayon::prelude::*;
use slcs_baselines::prefix_rowmajor;
use slcs_bitpar::bit_lcs_alphabet;

/// Symmetric distance matrix over `k` sequences, stored densely.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    k: usize,
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.k
    }

    /// `true` iff the collection was empty.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// Distance between sequences `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.k + j]
    }
}

/// LCS distance `1 − LCS(x, y) / max(|x|, |y|)` ∈ [0, 1]; 0 iff equal.
pub fn lcs_distance_bytes(x: &[u8], y: &[u8]) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 0.0;
    }
    let lcs = if x.iter().chain(y).all(|&c| c < 128) {
        bit_lcs_alphabet(x, y)
    } else {
        prefix_rowmajor(x, y)
    };
    1.0 - lcs as f64 / x.len().max(y.len()) as f64
}

/// Pairwise LCS distances over a collection, parallel over pairs.
pub fn distance_matrix(seqs: &[Vec<u8>]) -> DistanceMatrix {
    let k = seqs.len();
    let pairs: Vec<(usize, usize)> = (0..k).flat_map(|i| (i + 1..k).map(move |j| (i, j))).collect();
    let vals: Vec<f64> =
        pairs.par_iter().map(|&(i, j)| lcs_distance_bytes(&seqs[i], &seqs[j])).collect();
    let mut d = vec![0.0; k * k];
    for (&(i, j), &v) in pairs.iter().zip(&vals) {
        d[i * k + j] = v;
        d[j * k + i] = v;
    }
    DistanceMatrix { k, d }
}

/// A node of the clustering dendrogram.
#[derive(Clone, Debug, PartialEq)]
pub enum Dendrogram {
    /// A single input sequence (by index).
    Leaf(usize),
    /// A merge of two clusters at the given average-linkage distance.
    Node { left: Box<Dendrogram>, right: Box<Dendrogram>, height: f64 },
}

impl Dendrogram {
    /// Indices of all leaves under this node, left to right.
    pub fn leaves(&self) -> Vec<usize> {
        match self {
            Dendrogram::Leaf(i) => vec![*i],
            Dendrogram::Node { left, right, .. } => {
                let mut v = left.leaves();
                v.extend(right.leaves());
                v
            }
        }
    }

    /// Cuts the tree at `height`, returning the resulting clusters.
    pub fn cut(&self, height: f64) -> Vec<Vec<usize>> {
        match self {
            Dendrogram::Node { left, right, height: h } if *h > height => {
                let mut v = left.cut(height);
                v.extend(right.cut(height));
                v
            }
            other => vec![other.leaves()],
        }
    }
}

/// Average-linkage (UPGMA-style) agglomerative clustering.
///
/// # Panics
///
/// Panics on an empty matrix.
pub fn average_linkage(matrix: &DistanceMatrix) -> Dendrogram {
    let k = matrix.len();
    assert!(k > 0, "cannot cluster zero sequences");
    // active clusters: (dendrogram, member indices)
    let mut clusters: Vec<(Dendrogram, Vec<usize>)> =
        (0..k).map(|i| (Dendrogram::Leaf(i), vec![i])).collect();
    while clusters.len() > 1 {
        // find the closest pair by average pairwise distance
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let mut sum = 0.0;
                for &x in &clusters[i].1 {
                    for &y in &clusters[j].1 {
                        sum += matrix.get(x, y);
                    }
                }
                let avg = sum / (clusters[i].1.len() * clusters[j].1.len()) as f64;
                if avg < best.2 {
                    best = (i, j, avg);
                }
            }
        }
        let (i, j, h) = best;
        // i < j, so removing j first leaves index i untouched
        let (right_tree, right_members) = clusters.swap_remove(j);
        let (left_tree, left_members) = clusters.swap_remove(i);
        let mut members = left_members;
        members.extend(right_members);
        clusters.push((
            Dendrogram::Node { left: Box::new(left_tree), right: Box::new(right_tree), height: h },
            members,
        ));
    }
    // PANIC: n-1 merges over n clusters leave exactly one root.
    clusters.pop().expect("one cluster remains").0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_a_semimetric() {
        let x = b"acgtacgt".to_vec();
        let y = b"acgtccgt".to_vec();
        let z = b"tttttttt".to_vec();
        assert_eq!(lcs_distance_bytes(&x, &x), 0.0);
        let dxy = lcs_distance_bytes(&x, &y);
        let dyx = lcs_distance_bytes(&y, &x);
        assert_eq!(dxy, dyx);
        assert!(dxy > 0.0 && dxy < lcs_distance_bytes(&x, &z));
        assert_eq!(lcs_distance_bytes(b"", b""), 0.0);
        assert_eq!(lcs_distance_bytes(b"a", b""), 1.0);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let seqs: Vec<Vec<u8>> =
            vec![b"aaaa".to_vec(), b"aabb".to_vec(), b"bbbb".to_vec(), b"abab".to_vec()];
        let m = distance_matrix(&seqs);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn clustering_groups_obvious_families() {
        // two families: a-like and b-like
        let seqs: Vec<Vec<u8>> = vec![
            b"aaaaaaaaaa".to_vec(),
            b"aaaaacaaaa".to_vec(),
            b"bbbbbbbbbb".to_vec(),
            b"bbbbbcbbbb".to_vec(),
        ];
        let tree = average_linkage(&distance_matrix(&seqs));
        let clusters = tree.cut(0.5);
        assert_eq!(clusters.len(), 2, "{clusters:?}");
        for c in &clusters {
            let mut sorted = c.clone();
            sorted.sort_unstable();
            assert!(sorted == vec![0, 1] || sorted == vec![2, 3], "{clusters:?}");
        }
    }

    #[test]
    fn single_sequence_clusters_trivially() {
        let seqs = vec![b"xyz".to_vec()];
        let tree = average_linkage(&distance_matrix(&seqs));
        assert_eq!(tree, Dendrogram::Leaf(0));
        assert_eq!(tree.cut(0.0), vec![vec![0]]);
    }

    #[test]
    fn leaves_cover_all_inputs() {
        let seqs: Vec<Vec<u8>> = (0..7u8).map(|i| vec![i; 5 + i as usize]).collect();
        let tree = average_linkage(&distance_matrix(&seqs));
        let mut leaves = tree.leaves();
        leaves.sort_unstable();
        assert_eq!(leaves, (0..7).collect::<Vec<_>>());
    }
}
