//! Approximate pattern matching on top of the semi-local kernel.
//!
//! Classical approximate matching asks for the substrings of a text that
//! are most similar to a pattern. The string-substring quadrant of the
//! semi-local kernel answers this for **all** windows simultaneously:
//! one O(mn) comb, then an O(n) sweep per window length — against
//! O(mn) per window for repeated DP.

use slcs_semilocal::{antidiag_combing_branchless, SemiLocalScores};

/// One approximate occurrence of the pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occurrence {
    /// Window start in the text.
    pub start: usize,
    /// Window end (exclusive).
    pub end: usize,
    /// LCS of the pattern with this window.
    pub score: usize,
}

impl Occurrence {
    /// Similarity in `[0, 1]`: LCS over pattern length.
    pub fn similarity(&self, pattern_len: usize) -> f64 {
        self.score as f64 / pattern_len.max(1) as f64
    }
}

/// A prepared matcher: the pattern-vs-text kernel plus its query index.
pub struct ApproxMatcher {
    scores: SemiLocalScores,
    pattern_len: usize,
    text_len: usize,
}

impl ApproxMatcher {
    /// Combs `pattern` against `text` (O(|pattern|·|text|), branchless
    /// anti-diagonal order) and builds the query index.
    pub fn new<T: Eq + Clone + Sync>(pattern: &[T], text: &[T]) -> Self {
        let kernel = antidiag_combing_branchless(pattern, text);
        ApproxMatcher { scores: kernel.index(), pattern_len: pattern.len(), text_len: text.len() }
    }

    /// Pattern length `m`.
    pub fn pattern_len(&self) -> usize {
        self.pattern_len
    }

    /// Text length `n`.
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// Raw scores for every window of length `w` (O(n)).
    pub fn window_scores(&self, w: usize) -> Vec<usize> {
        self.scores.windows_linear(w)
    }

    /// The best window of length `w`.
    pub fn best_window(&self, w: usize) -> Occurrence {
        let scores = self.window_scores(w);
        let (start, &score) =
            // PANIC: valid `w` (a documented precondition) admits at least one window.
            scores.iter().enumerate().max_by_key(|&(_, s)| s).expect("at least one window");
        Occurrence { start, end: start + w, score }
    }

    /// All local-maximum windows of length `w` scoring at least
    /// `min_score`, at least `w` apart (each run of qualifying windows is
    /// reduced to its peak).
    pub fn find(&self, w: usize, min_score: usize) -> Vec<Occurrence> {
        let scores = self.window_scores(w);
        let mut out = Vec::new();
        let mut i = 0;
        while i < scores.len() {
            if scores[i] >= min_score {
                let run_start = i;
                while i < scores.len() && scores[i] >= min_score {
                    i += 1;
                }
                // PANIC: the run [run_start, i) contains at least the element that opened it.
                let peak = (run_start..i).max_by_key(|&k| scores[k]).expect("non-empty run");
                out.push(Occurrence { start: peak, end: peak + w, score: scores[peak] });
            } else {
                i += 1;
            }
        }
        out
    }

    /// For every text position `j`, the best score of the pattern against
    /// any window ending at `j` — variable-length matching (O(n²) total).
    pub fn best_per_end(&self) -> Vec<Occurrence> {
        self.scores
            .best_start_per_end()
            .into_iter()
            .enumerate()
            .map(|(jm1, (score, start))| Occurrence { start, end: jm1 + 1, score })
            .collect()
    }

    /// Subsequence matching: all **minimal** windows `b[i..j)` that
    /// contain the whole pattern as a subsequence (LCS = m), i.e. windows
    /// where shrinking either side loses containment. O(n) windows
    /// reported at most; O(n²) worst-case time via the per-end sweep.
    pub fn minimal_containing_windows(&self) -> Vec<Occurrence> {
        let m = self.pattern_len;
        if m == 0 {
            return Vec::new(); // the empty pattern is contained trivially
        }
        let mut out: Vec<Occurrence> = Vec::new();
        for occ in self.best_per_end() {
            if occ.score < m {
                continue;
            }
            // best_per_end prefers the smallest start on ties, which for
            // score = m is NOT minimal (longer window); find the largest
            // start still containing the pattern by binary search on the
            // monotone predicate LCS(a, b[i..j)) = m.
            let j = occ.end;
            let (mut lo, mut hi) = (occ.start, j); // containment holds at lo
            while lo + 1 < hi {
                let mid = (lo + hi) / 2;
                if self.scores.string_substring(mid, j) == m {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let candidate = Occurrence { start: lo, end: j, score: m };
            // keep only windows minimal on the right too: drop a previous
            // window with the same start and larger end
            match out.last() {
                Some(prev) if prev.start == candidate.start => {} // prev is shorter
                _ => out.push(candidate),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slcs_baselines::prefix_rowmajor;

    #[test]
    fn best_window_is_globally_optimal() {
        let pattern = b"needle";
        let text = b"haystackneediehaystack";
        let m = ApproxMatcher::new(pattern, text);
        let best = m.best_window(pattern.len());
        let brute = (0..=text.len() - pattern.len())
            .map(|i| prefix_rowmajor(pattern, &text[i..i + pattern.len()]))
            .max()
            .unwrap();
        assert_eq!(best.score, brute);
        assert_eq!(&text[best.start..best.end], b"needie");
    }

    #[test]
    fn find_reports_disjoint_peaks() {
        let pattern = b"abcabc";
        let text = b"xxabcabcxxxxxxabxabcxx";
        let m = ApproxMatcher::new(pattern, text);
        let hits = m.find(pattern.len(), 5);
        assert!(!hits.is_empty());
        for w in hits.windows(2) {
            assert!(w[1].start >= w[0].end || w[1].start > w[0].start, "peaks ordered");
        }
        assert_eq!(hits[0].start, 2, "exact occurrence first: {hits:?}");
        assert_eq!(hits[0].score, 6);
    }

    #[test]
    fn find_with_impossible_threshold_is_empty() {
        let m = ApproxMatcher::new(b"abc", b"xyzxyz");
        assert!(m.find(3, 4).is_empty());
    }

    #[test]
    fn best_per_end_matches_brute_force() {
        let pattern = b"grail";
        let text = b"holygraalrail";
        let m = ApproxMatcher::new(pattern, text);
        for occ in m.best_per_end() {
            let brute =
                (0..occ.end).map(|i| prefix_rowmajor(pattern, &text[i..occ.end])).max().unwrap();
            assert_eq!(occ.score, brute, "end {}", occ.end);
        }
    }

    #[test]
    fn minimal_containing_windows_are_correct_and_minimal() {
        let pattern = b"abc";
        let text = b"azbxcaabcz";
        let m = ApproxMatcher::new(pattern, text);
        let windows = m.minimal_containing_windows();
        // brute force: all minimal containing windows
        let contains = |i: usize, j: usize| prefix_rowmajor(pattern, &text[i..j]) == pattern.len();
        let mut brute = Vec::new();
        for i in 0..text.len() {
            for j in (i + pattern.len())..=text.len() {
                if contains(i, j)
                    && !(j > i + 1 && contains(i + 1, j))
                    && !(j > i + 1 && contains(i, j - 1))
                {
                    brute.push((i, j));
                }
            }
        }
        let got: Vec<(usize, usize)> = windows.iter().map(|o| (o.start, o.end)).collect();
        assert_eq!(got, brute, "text={:?}", std::str::from_utf8(text));
        // the exact occurrence "abc" at 6..9 must be among them
        assert!(got.contains(&(6, 9)));
    }

    #[test]
    fn no_containing_window_when_pattern_absent() {
        let m = ApproxMatcher::new(b"xyz", b"abcabc");
        assert!(m.minimal_containing_windows().is_empty());
        let m = ApproxMatcher::new(b"", b"abc");
        assert!(m.minimal_containing_windows().is_empty());
    }

    #[test]
    fn similarity_is_normalized() {
        let occ = Occurrence { start: 0, end: 4, score: 3 };
        assert!((occ.similarity(6) - 0.5).abs() < 1e-12);
        assert_eq!(Occurrence { start: 0, end: 0, score: 0 }.similarity(0), 0.0);
    }
}
