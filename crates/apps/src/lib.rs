//! Applications of semi-local string comparison — the downstream
//! workflows the paper motivates (§1, §6): approximate pattern matching
//! over genomes and time series, and similarity analysis over sequence
//! collections.
//!
//! * [`matching`] — [`ApproxMatcher`]: one comb of pattern vs text, then
//!   every fixed- or variable-length window query in (near-)linear time.
//! * [`similarity`] — LCS distance matrices (rayon-parallel, bit-parallel
//!   scoring for byte alphabets) and average-linkage clustering.

pub mod matching;
pub mod similarity;

pub use matching::{ApproxMatcher, Occurrence};
pub use similarity::{
    average_linkage, distance_matrix, lcs_distance_bytes, Dendrogram, DistanceMatrix,
};
