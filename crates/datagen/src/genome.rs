//! Synthetic virus-genome workloads.
//!
//! The paper's real-life dataset is NCBI virus genomes (lengths up to
//! 134 000, mostly project PRJNA485481). With no network access we
//! substitute a generative model that preserves what the experiments
//! depend on — string length and match structure between *related*
//! sequences: a random ancestor genome over {A,C,G,T} plus descendants
//! derived by a substitution/insertion/deletion mutation process at a
//! configurable divergence. Two isolates of the same virus are then a
//! pair of descendants of one ancestor. Real FASTA files can be dropped
//! in via [`crate::fasta`] instead.

use rand::{Rng, RngExt};

/// Nucleotides encoded as 0..4; use [`to_ascii`]/[`from_ascii`] to
/// convert to letters.
pub const ALPHABET: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Mutation model parameters (per-base probabilities).
#[derive(Clone, Copy, Debug)]
pub struct MutationModel {
    /// Probability a base is substituted by a random different base.
    pub substitution: f64,
    /// Probability a random base is inserted before a position.
    pub insertion: f64,
    /// Probability a base is deleted.
    pub deletion: f64,
}

impl MutationModel {
    /// A model with total divergence `d`, split 80/10/10 between
    /// substitutions, insertions and deletions — the typical shape of
    /// viral evolution over short time scales.
    pub fn with_divergence(d: f64) -> Self {
        assert!((0.0..=1.0).contains(&d), "divergence must be in [0, 1]");
        MutationModel { substitution: 0.8 * d, insertion: 0.1 * d, deletion: 0.1 * d }
    }
}

/// A random ancestor genome of `len` bases (encoded 0..4).
pub fn random_genome<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.random_range(0..4u8)).collect()
}

/// A descendant of `ancestor` under the mutation model. The mutation
/// loop itself lives in [`crate::similar`] (generic over the
/// alphabet); this is the σ = 4 nucleotide instantiation.
pub fn mutate<R: Rng + ?Sized>(rng: &mut R, ancestor: &[u8], model: &MutationModel) -> Vec<u8> {
    crate::similar::mutate_symbols(rng, ancestor, model, 4)
}

/// A pair of related genomes: two independent descendants of one random
/// ancestor of length `len`, each at divergence `d` — the shape of the
/// paper's virus-isolate comparisons.
pub fn genome_pair<R: Rng + ?Sized>(rng: &mut R, len: usize, d: f64) -> (Vec<u8>, Vec<u8>) {
    let ancestor = random_genome(rng, len);
    let model = MutationModel::with_divergence(d);
    (mutate(rng, &ancestor, &model), mutate(rng, &ancestor, &model))
}

/// Encodes 0..4 bases as ASCII `ACGT`.
pub fn to_ascii(genome: &[u8]) -> Vec<u8> {
    genome.iter().map(|&b| ALPHABET[b as usize]).collect()
}

/// Decodes ASCII `ACGT` (case-insensitive; other letters map to `A`,
/// which is the common handling of ambiguity codes for scoring).
pub fn from_ascii(text: &[u8]) -> Vec<u8> {
    text.iter()
        .map(|c| match c.to_ascii_uppercase() {
            b'C' => 1,
            b'G' => 2,
            b'T' => 3,
            _ => 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::seeded_rng;

    #[test]
    fn genomes_use_four_symbols() {
        let mut rng = seeded_rng(5);
        let g = random_genome(&mut rng, 10_000);
        assert!(g.iter().all(|&b| b < 4));
        let counts: Vec<usize> = (0..4).map(|s| g.iter().filter(|&&b| b == s).count()).collect();
        for c in counts {
            assert!((c as f64 / 10_000.0 - 0.25).abs() < 0.03);
        }
    }

    #[test]
    fn zero_divergence_is_identity() {
        let mut rng = seeded_rng(6);
        let g = random_genome(&mut rng, 500);
        let m = mutate(&mut rng, &g, &MutationModel::with_divergence(0.0));
        assert_eq!(m, g);
    }

    #[test]
    fn divergence_scales_differences() {
        // Positional agreement is ruined by frame shifts, so measure
        // similarity the alignment-aware way: LCS fraction.
        let mut rng = seeded_rng(7);
        let g = random_genome(&mut rng, 3_000);
        let near = mutate(&mut rng, &g, &MutationModel::with_divergence(0.01));
        let far = mutate(&mut rng, &g, &MutationModel::with_divergence(0.30));
        let sim = |x: &[u8]| slcs_baselines_lcs(x, &g) as f64 / g.len() as f64;
        let (s_near, s_far) = (sim(&near), sim(&far));
        assert!(s_near > 0.97, "near divergence similarity {s_near}");
        assert!(s_far < s_near, "far {s_far} should be less similar than near {s_near}");
        assert!(s_far > 0.5, "even far descendants stay related ({s_far})");
    }

    #[test]
    fn substitutions_never_produce_the_same_base() {
        let mut rng = seeded_rng(8);
        let g = vec![2u8; 2000];
        let m = mutate(
            &mut rng,
            &g,
            &MutationModel { substitution: 1.0, insertion: 0.0, deletion: 0.0 },
        );
        assert_eq!(m.len(), g.len());
        assert!(m.iter().all(|&b| b != 2 && b < 4));
    }

    #[test]
    fn ascii_roundtrip() {
        let g = vec![0u8, 1, 2, 3, 3, 0];
        assert_eq!(to_ascii(&g), b"ACGTTA".to_vec());
        assert_eq!(from_ascii(&to_ascii(&g)), g);
        assert_eq!(from_ascii(b"acgt"), vec![0, 1, 2, 3]);
    }

    #[test]
    fn genome_pairs_are_similar_but_distinct() {
        let mut rng = seeded_rng(9);
        let (x, y) = genome_pair(&mut rng, 5_000, 0.05);
        assert_ne!(x, y);
        let lcs = slcs_baselines_lcs(&x, &y);
        assert!(lcs as f64 > 0.85 * x.len().min(y.len()) as f64);
    }

    /// Minimal local LCS (keeps datagen free of cross-crate dev deps).
    fn slcs_baselines_lcs(a: &[u8], b: &[u8]) -> usize {
        let n = b.len();
        let mut prev = vec![0u32; n + 1];
        let mut cur = vec![0u32; n + 1];
        for ac in a {
            cur[0] = 0;
            for (j, bc) in b.iter().enumerate() {
                cur[j + 1] = if ac == bc { prev[j] + 1 } else { prev[j + 1].max(cur[j]) };
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[n] as usize
    }
}
