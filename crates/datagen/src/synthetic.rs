//! Synthetic string generators matching the paper's experimental setup
//! (§5): "randomly generated integer sequences … with characters sampled
//! from a normal distribution with zero mean and standard deviation σ,
//! and then rounded towards zero."
//!
//! Varying σ tunes the match frequency: σ = 1 gives ≈ 68% zeros (a
//! high-match regime), large σ approaches a huge sparse alphabet
//! (low-match regime).

use rand::{Rng, RngExt, SeedableRng};

/// Deterministic generator seeded for reproducible benchmarks.
pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// One standard-normal sample via Box–Muller (kept dependency-free; the
/// polar form avoids trigonometry).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0f64);
        let v: f64 = rng.random_range(-1.0..1.0f64);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// A string of `len` characters sampled from `round_toward_zero(N(0, σ²))`
/// — the paper's synthetic dataset.
pub fn normal_string<R: Rng + ?Sized>(rng: &mut R, len: usize, sigma: f64) -> Vec<i64> {
    (0..len).map(|_| (standard_normal(rng) * sigma).trunc() as i64).collect()
}

/// A uniformly random binary string (values 0/1) for the bit-parallel
/// experiments (Figure 9).
pub fn binary_string<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.random_range(0..2u8)).collect()
}

/// A uniformly random string over the alphabet `0..sigma`.
pub fn uniform_string<R: Rng + ?Sized>(rng: &mut R, len: usize, sigma: u8) -> Vec<u8> {
    assert!(sigma > 0, "alphabet must be non-empty");
    (0..len).map(|_| rng.random_range(0..sigma)).collect()
}

/// Empirical match frequency between the character distributions of two
/// strings: the probability that two independently drawn characters are
/// equal. Used to report the σ → similarity mapping in the harness.
pub fn match_frequency<T: Eq + std::hash::Hash + Clone>(a: &[T], b: &[T]) -> f64 {
    use std::collections::HashMap;
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<&T, usize> = HashMap::new();
    for c in b {
        *counts.entry(c).or_insert(0) += 1;
    }
    let hits: usize = a.iter().map(|c| counts.get(c).copied().unwrap_or(0)).sum();
    hits as f64 / (a.len() as f64 * b.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_sigma1_is_mostly_zero() {
        // erfc-based expectation from the paper: ≈ 0.683 of characters
        // are 0 for σ = 1 (all |x| < 1 round toward zero).
        let mut rng = seeded_rng(1);
        let s = normal_string(&mut rng, 100_000, 1.0);
        let zeros = s.iter().filter(|&&c| c == 0).count() as f64 / s.len() as f64;
        assert!((zeros - 0.683).abs() < 0.01, "zero fraction {zeros}");
    }

    #[test]
    fn larger_sigma_spreads_the_alphabet() {
        let mut rng = seeded_rng(2);
        let narrow = normal_string(&mut rng, 50_000, 1.0);
        let wide = normal_string(&mut rng, 50_000, 100.0);
        let distinct = |s: &[i64]| {
            let mut v = s.to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(distinct(&wide) > 10 * distinct(&narrow));
        assert!(match_frequency(&wide, &wide) < match_frequency(&narrow, &narrow));
    }

    #[test]
    fn binary_string_is_binary_and_balanced() {
        let mut rng = seeded_rng(3);
        let s = binary_string(&mut rng, 100_000);
        assert!(s.iter().all(|&c| c <= 1));
        let ones = s.iter().filter(|&&c| c == 1).count() as f64 / s.len() as f64;
        assert!((ones - 0.5).abs() < 0.01);
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let a1 = normal_string(&mut seeded_rng(42), 1000, 2.0);
        let a2 = normal_string(&mut seeded_rng(42), 1000, 2.0);
        assert_eq!(a1, a2);
    }

    #[test]
    fn match_frequency_sane_values() {
        assert_eq!(match_frequency(&[1, 1], &[1, 1]), 1.0);
        assert_eq!(match_frequency(&[1, 1], &[2, 2]), 0.0);
        let half = match_frequency(&[1, 2], &[1, 2]);
        assert!((half - 0.5).abs() < 1e-9);
    }
}
