//! Minimal FASTA input/output, so real genome files (e.g. the NCBI virus
//! sequences used by the paper) can replace the synthetic generator in
//! every example and benchmark.

use std::io::{self, BufRead, Write};
use std::path::Path;

/// One FASTA record: a header (without the `>`) and the raw sequence
/// bytes (whitespace stripped, case preserved).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastaRecord {
    pub header: String,
    pub sequence: Vec<u8>,
}

/// Parses FASTA records from a reader.
pub fn read_fasta<R: BufRead>(reader: R) -> io::Result<Vec<FastaRecord>> {
    let mut records = Vec::new();
    let mut header: Option<String> = None;
    let mut seq: Vec<u8> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if let Some(h) = trimmed.strip_prefix('>') {
            if let Some(prev) = header.take() {
                records.push(FastaRecord { header: prev, sequence: std::mem::take(&mut seq) });
            }
            header = Some(h.to_string());
        } else if !trimmed.is_empty() {
            if header.is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "sequence data before any FASTA header",
                ));
            }
            seq.extend(trimmed.bytes().filter(|b| !b.is_ascii_whitespace()));
        }
    }
    if let Some(prev) = header {
        records.push(FastaRecord { header: prev, sequence: seq });
    }
    Ok(records)
}

/// Reads all records from a file path.
pub fn read_fasta_file<P: AsRef<Path>>(path: P) -> io::Result<Vec<FastaRecord>> {
    let file = std::fs::File::open(path)?;
    read_fasta(io::BufReader::new(file))
}

/// Writes records with 70-column sequence wrapping.
pub fn write_fasta<W: Write>(mut w: W, records: &[FastaRecord]) -> io::Result<()> {
    for r in records {
        writeln!(w, ">{}", r.header)?;
        for chunk in r.sequence.chunks(70) {
            w.write_all(chunk)?;
            writeln!(w)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_record_fasta() {
        let text = b">seq1 first\nACGT\nACG T\n>seq2\n\nTTTT\n" as &[u8];
        let records = read_fasta(text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].header, "seq1 first");
        assert_eq!(records[0].sequence, b"ACGTACGT".to_vec());
        assert_eq!(records[1].header, "seq2");
        assert_eq!(records[1].sequence, b"TTTT".to_vec());
    }

    #[test]
    fn rejects_headerless_data() {
        let text = b"ACGT\n" as &[u8];
        assert!(read_fasta(text).is_err());
    }

    #[test]
    fn empty_input_gives_no_records() {
        assert_eq!(read_fasta(b"" as &[u8]).unwrap().len(), 0);
        assert_eq!(read_fasta(b"\n\n" as &[u8]).unwrap().len(), 0);
    }

    #[test]
    fn roundtrips_through_write() {
        let records = vec![
            FastaRecord { header: "a/1".into(), sequence: vec![b'A'; 150] },
            FastaRecord { header: "b 2".into(), sequence: b"GATTACA".to_vec() },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).unwrap();
        let back = read_fasta(buf.as_slice()).unwrap();
        assert_eq!(back, records);
    }
}
