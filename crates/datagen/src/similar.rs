//! Similar-pair workloads: a base string plus p% point mutations.
//!
//! The output-sensitive edit-distance path is only interesting on
//! *nearly identical* inputs, so its benchmarks and property tests
//! both need "two strings that differ by p%" with seeded determinism.
//! This module is the one implementation of that mutation process,
//! generic over the alphabet; [`crate::genome::mutate`] delegates here
//! with σ = 4 rather than keeping its own copy of the loop.

use crate::genome::MutationModel;
use crate::synthetic::uniform_string;
use rand::{Rng, RngExt};

/// A copy of `base` (symbols `0..sigma`) with point mutations: before
/// each input symbol a uniform symbol is inserted with probability
/// `model.insertion`; the symbol itself is dropped with
/// `model.deletion`, and otherwise replaced by a uniformly chosen
/// *different* symbol with `model.substitution`.
///
/// The expected edit distance to `base` is therefore about
/// `(substitution + insertion + deletion) · len`.
pub fn mutate_symbols<R: Rng + ?Sized>(
    rng: &mut R,
    base: &[u8],
    model: &MutationModel,
    sigma: u8,
) -> Vec<u8> {
    assert!(sigma >= 2, "substituting a different symbol needs at least two");
    let mut out = Vec::with_capacity(base.len() + base.len() / 16);
    for &symbol in base {
        if rng.random_range(0.0..1.0f64) < model.insertion {
            out.push(rng.random_range(0..sigma));
        }
        if rng.random_range(0.0..1.0f64) < model.deletion {
            continue;
        }
        if rng.random_range(0.0..1.0f64) < model.substitution {
            // Substitute by a *different* symbol: a nonzero shift mod σ.
            let shift = rng.random_range(1..sigma);
            out.push((symbol + shift) % sigma);
        } else {
            out.push(symbol);
        }
    }
    out
}

/// A seeded similar pair: a uniform base string over `0..sigma` plus a
/// descendant at total divergence `p` (80/10/10 split between
/// substitutions, insertions and deletions). `p = 0.01` ≈ 99%
/// similarity — the shape bench-osed sweeps.
pub fn similar_pair<R: Rng + ?Sized>(
    rng: &mut R,
    len: usize,
    sigma: u8,
    p: f64,
) -> (Vec<u8>, Vec<u8>) {
    let base = uniform_string(rng, len, sigma);
    let mutated = mutate_symbols(rng, &base, &MutationModel::with_divergence(p), sigma);
    (base, mutated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::seeded_rng;

    #[test]
    fn zero_divergence_copies_the_base() {
        let mut rng = seeded_rng(40);
        let base = uniform_string(&mut rng, 300, 7);
        let out = mutate_symbols(&mut rng, &base, &MutationModel::with_divergence(0.0), 7);
        assert_eq!(out, base);
    }

    #[test]
    fn substitutions_stay_in_alphabet_and_differ() {
        let mut rng = seeded_rng(41);
        let base = vec![5u8; 1000];
        let model = MutationModel { substitution: 1.0, insertion: 0.0, deletion: 0.0 };
        let out = mutate_symbols(&mut rng, &base, &model, 6);
        assert_eq!(out.len(), base.len());
        assert!(out.iter().all(|&s| s < 6 && s != 5));
    }

    #[test]
    fn divergence_tracks_the_requested_rate() {
        let mut rng = seeded_rng(42);
        let (a, b) = similar_pair(&mut rng, 8_000, 4, 0.01);
        // ~1% mutations: the pair differs, but only slightly (hamming
        // on the common prefix length is a loose upper-bound check
        // because indels shift frames; divergence 0.01 * 8000 = ~80
        // events, 10% of which are indels).
        assert_ne!(a, b);
        let len_gap = a.len().abs_diff(b.len());
        assert!(len_gap < 40, "indel imbalance {len_gap}");
        let mutated: usize =
            a.iter().zip(&b).filter(|(x, y)| x != y).count().min(a.len().min(b.len()));
        assert!(mutated > 0);
    }

    #[test]
    fn seeded_pairs_are_reproducible() {
        let (a1, b1) = similar_pair(&mut seeded_rng(43), 2_000, 26, 0.05);
        let (a2, b2) = similar_pair(&mut seeded_rng(43), 2_000, 26, 0.05);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        let (a3, _) = similar_pair(&mut seeded_rng(44), 2_000, 26, 0.05);
        assert_ne!(a1, a3);
    }
}
