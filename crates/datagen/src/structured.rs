//! Structured (adversarial and skewed) workloads beyond the paper's two
//! datasets: Fibonacci words, periodic strings, and Zipf-distributed
//! alphabets. These stress exactly what random strings don't — long
//! repetitive runs (worst cases for branch prediction and for the
//! crossed-before bookkeeping) and heavily skewed match densities.

use rand::{Rng, RngExt};

/// The `k`-th Fibonacci word over `{0, 1}` truncated to `len`
/// characters: `F(0) = 0`, `F(1) = 01`, `F(k) = F(k−1) F(k−2)`.
/// Fibonacci words are maximally repetitive aperiodic strings — a
/// classical stress case for subsequence algorithms.
pub fn fibonacci_string(len: usize) -> Vec<u8> {
    let mut prev: Vec<u8> = vec![0];
    let mut cur: Vec<u8> = vec![0, 1];
    while cur.len() < len {
        let next: Vec<u8> = cur.iter().chain(prev.iter()).copied().collect();
        prev = std::mem::replace(&mut cur, next);
    }
    cur.truncate(len.max(usize::from(len > 0)));
    cur.truncate(len);
    cur
}

/// A periodic string: `pattern` repeated to `len` characters.
pub fn periodic_string(pattern: &[u8], len: usize) -> Vec<u8> {
    assert!(!pattern.is_empty(), "period must be non-empty");
    pattern.iter().copied().cycle().take(len).collect()
}

/// A string with Zipf-distributed characters over alphabet `0..sigma`
/// with exponent `s` (s = 0 is uniform; larger s skews harder toward
/// symbol 0).
pub fn zipf_string<R: Rng + ?Sized>(rng: &mut R, len: usize, sigma: u8, s: f64) -> Vec<u8> {
    assert!(sigma > 0, "alphabet must be non-empty");
    // cumulative Zipf weights
    let weights: Vec<f64> = (1..=sigma as u32).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    (0..len)
        .map(|_| {
            let u: f64 = rng.random_range(0.0..1.0);
            cdf.partition_point(|&c| c < u) as u8
        })
        .collect()
}

/// An all-`c` run of `len` characters (the extreme high-match workload).
pub fn constant_string(c: u8, len: usize) -> Vec<u8> {
    vec![c; len]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::seeded_rng;

    #[test]
    fn fibonacci_prefix_property() {
        // Every Fibonacci word is a prefix of the next.
        let f20 = fibonacci_string(20);
        let f50 = fibonacci_string(50);
        assert_eq!(&f50[..20], f20.as_slice());
        assert_eq!(&f50[..8], &[0, 1, 0, 0, 1, 0, 1, 0]);
        assert!(fibonacci_string(0).is_empty());
        assert_eq!(fibonacci_string(1), vec![0]);
    }

    #[test]
    fn fibonacci_is_square_free_ish() {
        // Fibonacci words contain no fourth powers; cheap smoke check:
        // no run of the same character longer than 2.
        let f = fibonacci_string(1000);
        let mut run = 1;
        for w in f.windows(2) {
            run = if w[0] == w[1] { run + 1 } else { 1 };
            assert!(run <= 2, "Fibonacci words never repeat a symbol thrice");
        }
    }

    #[test]
    fn periodic_repeats_exactly() {
        let p = periodic_string(b"abc", 8);
        assert_eq!(p, b"abcabcab".to_vec());
        assert!(periodic_string(b"x", 0).is_empty());
    }

    #[test]
    fn zipf_is_skewed_and_uniform_at_zero() {
        let mut rng = seeded_rng(11);
        let skewed = zipf_string(&mut rng, 50_000, 8, 1.5);
        let flat = zipf_string(&mut rng, 50_000, 8, 0.0);
        let count0 = |s: &[u8]| s.iter().filter(|&&c| c == 0).count() as f64 / s.len() as f64;
        assert!(count0(&skewed) > 0.4, "zipf 1.5 puts >40% mass on symbol 0");
        assert!((count0(&flat) - 0.125).abs() < 0.02, "s=0 is uniform over 8 symbols");
        assert!(skewed.iter().all(|&c| c < 8));
    }

    #[test]
    fn constant_string_is_constant() {
        let s = constant_string(3, 10);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&c| c == 3));
    }
}
