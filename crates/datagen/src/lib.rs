//! Workload generation for the string-comparison suite.
//!
//! Reproduces the paper's two input classes (§5):
//!
//! * [`synthetic`] — integer strings with normal-distribution characters
//!   (σ controls match frequency) and uniform binary strings;
//! * [`structured`] — adversarial/skewed strings: Fibonacci words,
//!   periodic strings, Zipf alphabets;
//! * [`genome`] — synthetic virus genomes: a random ancestor plus
//!   descendants under a substitution/indel mutation model, substituting
//!   for the NCBI dataset (see DESIGN.md §5); [`fasta`] reads real files
//!   when available;
//! * [`similar`] — alphabet-generic similar pairs (base string + p%
//!   point mutations/indels, seeded), the workload of the
//!   output-sensitive edit-distance path.

pub mod fasta;
pub mod genome;
pub mod similar;
pub mod structured;
pub mod synthetic;

pub use fasta::{read_fasta, read_fasta_file, write_fasta, FastaRecord};
pub use genome::{genome_pair, mutate, random_genome, MutationModel};
pub use similar::{mutate_symbols, similar_pair};
pub use structured::{constant_string, fibonacci_string, periodic_string, zipf_string};
pub use synthetic::{binary_string, match_frequency, normal_string, seeded_rng, uniform_string};
