//! Workspace automation (`cargo xtask <command>`), dependency-free.
//!
//! * `lint` — the concurrency audit: every `unsafe` site carries a
//!   `// SAFETY:` justification (or `# Safety` doc for declarations),
//!   every explicit atomic `Ordering::<variant>` carries an
//!   `// ORDERING:` note (not just Relaxed — an unexplained Acquire is
//!   as suspicious as an unexplained Relaxed), library code does not
//!   `unwrap()`/`expect()` without a `// PANIC:` justification
//!   (lock-poisoning unwraps are auto-allowed), the metrics counters
//!   stick to their ordering allowlist, model-checked crates reach
//!   atomics and `UnsafeCell` only through their `sync.rs` facades
//!   (so the model checker actually sees every access), and every
//!   crate containing `unsafe` denies `unsafe_op_in_unsafe_fn`.
//!   `--json` emits the violations as a JSON array for CI annotations.
//! * `model-check` — builds the workspace with `--cfg slcs_model_check`
//!   (swapping the sync facades to the instrumented shim-loom
//!   primitives) and runs the model-check harnesses, plus the plain-mode
//!   regression models. `--races` adds the race-detector stages: the
//!   happens-before unit suite and the planted-race canary whose
//!   detection (with a replayable choice vector) is asserted, not just
//!   absence of failures. See docs/SAFETY.md.
//! * `trace-check FILE` — validates a Chrome-tracing JSON emitted by
//!   `slcs trace` / the `--trace` bench flags: structural JSON sanity
//!   plus presence of the four instrumentation layers (an
//!   `engine.request` span, a `pool.job` span, a `wavefront.diag`
//!   span, an `osed.bfs_round` span). CI runs it against a traced
//!   quick benchmark.
//! * `perf-gate` — compares freshly-run benchmark JSON (`BENCH_mem`,
//!   `BENCH_obs`, `BENCH_pool`, `BENCH_osed`) against the committed
//!   snapshots in `perf/baselines/`, gating only machine-robust
//!   quantities (deterministic allocation counts, self-relative
//!   overhead percentages, scheduling-mode and cross-algorithm ratios)
//!   with configurable noise tolerance. See docs/PERF.md.
//!
//! The lint is a line-based scan with a small lexer that tracks strings,
//! char literals, nested block comments and `#[cfg(test)]` regions — not
//! a full parser, but precise enough to audit this workspace with zero
//! false positives, and it fails *loud* (a violation lists file:line and
//! the rule).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("model-check") => model_check(&args[1..]),
        Some("trace-check") => trace_check(&args[1..]),
        Some("perf-gate") => perf_gate(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--json] | model-check [--races] [--bound N] \
                 [--schedules N] [--seed N] | trace-check FILE | perf-gate [--fresh DIR] \
                 [--baselines DIR] [--tolerance PCT] [--overhead-slack PTS]>"
            );
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------
// trace-check: validate an emitted Chrome-tracing JSON
// ---------------------------------------------------------------------

/// Span names that prove all instrumented layers made it into a traced
/// benchmark run: the engine request lifecycle, the executor pool, the
/// wavefront drivers, the output-sensitive edit-distance BFS, and the
/// flight recorder's slow-request capture marker.
const REQUIRED_SPANS: &[&str] =
    &["engine.request", "pool.job", "wavefront.diag", "osed.bfs_round", "engine.slow_capture"];

fn trace_check(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("trace-check: usage: cargo xtask trace-check <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("trace-check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut problems = Vec::new();
    let t = text.trim();
    if !t.starts_with("{\"traceEvents\":[") {
        problems.push("missing `{\"traceEvents\":[` header".to_string());
    }
    if !t.ends_with('}') {
        problems.push("does not end with `}`".to_string());
    }
    // Structural sanity without a JSON parser: braces and brackets must
    // balance outside string literals and never go negative.
    let (mut braces, mut brackets) = (0i64, 0i64);
    let mut in_str = false;
    let mut chars = t.chars();
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    let _ = chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => braces += 1,
            '}' => braces -= 1,
            '[' => brackets += 1,
            ']' => brackets -= 1,
            _ => {}
        }
        if braces < 0 || brackets < 0 {
            problems.push("unbalanced braces/brackets (closed before opened)".to_string());
            break;
        }
    }
    if in_str {
        problems.push("unterminated string literal".to_string());
    }
    if braces != 0 || brackets != 0 {
        problems.push(format!("unbalanced nesting (braces {braces:+}, brackets {brackets:+})"));
    }
    for name in REQUIRED_SPANS {
        if !t.contains(&format!("\"name\":\"{name}\"")) {
            problems.push(format!("no `{name}` event — that layer is missing from the trace"));
        }
    }
    let count = |needle: &str| t.matches(needle).count();
    let (begins, ends) = (count("\"ph\":\"B\""), count("\"ph\":\"E\""));
    if problems.is_empty() {
        println!(
            "trace-check: {path} ok — {begins} span begins / {ends} ends, \
             {} instants, {} counter samples; all {} required layers present",
            count("\"ph\":\"i\""),
            count("\"ph\":\"C\""),
            REQUIRED_SPANS.len(),
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("trace-check: {path}: {p}");
        }
        eprintln!("trace-check: {} problem(s)", problems.len());
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------
// perf-gate: compare fresh benchmark JSON against committed baselines
// ---------------------------------------------------------------------

/// `cargo xtask perf-gate` — regression gate over the benchmark JSON
/// artifacts. CI first reruns the quick benches into a scratch directory
/// (`--fresh`), then this command compares them against the committed
/// snapshots in `perf/baselines/` (`--baselines`).
///
/// Only machine-robust quantities gate:
///
/// * `BENCH_mem.json` — allocation counts and scope-local peak live
///   bytes are deterministic for a fixed seed/order, so they compare
///   directly (within `--tolerance` percent); the memory-optimized
///   variant must additionally beat the naive one outright, and the
///   fresh run must have the instrumented allocator installed.
/// * `BENCH_obs.json` — the disabled/enabled overhead *percentages*
///   (already self-relative) may not exceed the baseline by more than
///   `--overhead-slack` percentage points.
/// * `BENCH_pool.json` — the team/spawn ns-per-cell *ratio* at the
///   largest configuration (absolute wall times never gate — they are
///   machine-dependent). The same file also feeds the scheduling gate
///   (`gate_sched`): `work_steal` within 1.2× of the best fixed
///   parallel mode at the largest configuration, and `auto` within
///   10% of the best fixed mode at every multi-threaded sweep point
///   (at one thread all modes are the same sequential comb, so those
///   rows never gate) — both ratios of rows from one run, so they
///   hold on any machine.
/// * `BENCH_osed.json` — at the largest 99%-similarity row: the
///   deterministic allocation count of one `edit_distance` call
///   (within `--tolerance`), and the osed-vs-best-grid time *ratio*
///   (within `--tolerance` of the baseline, and outright ≤ 0.2 — the
///   subsystem must stay at least 5× faster than the full grid on
///   near-identical inputs or it has lost its reason to exist).
///
/// A baseline file that does not exist is skipped with a note, so gates
/// can be adopted one artifact at a time; a *fresh* file missing while
/// its baseline exists is a failure.
fn perf_gate(args: &[String]) -> ExitCode {
    let mut fresh_dir = String::from(".");
    let mut base_dir = String::from("perf/baselines");
    let mut tolerance = 25.0f64;
    let mut slack = 10.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut grab = |slot: &mut String| match it.next() {
            Some(v) => {
                *slot = v.clone();
                true
            }
            None => false,
        };
        let mut val = String::new();
        let ok = match arg.as_str() {
            "--fresh" => grab(&mut fresh_dir),
            "--baselines" => grab(&mut base_dir),
            "--tolerance" => grab(&mut val) && val.parse().map(|v| tolerance = v).is_ok(),
            "--overhead-slack" => grab(&mut val) && val.parse().map(|v| slack = v).is_ok(),
            _ => false,
        };
        if !ok {
            eprintln!("perf-gate: bad argument {arg:?}");
            return ExitCode::FAILURE;
        }
    }

    let mut problems = Vec::new();
    let mut notes = Vec::new();
    let mut gated = 0usize;
    for (file, check) in [
        ("BENCH_mem.json", gate_mem as fn(&str, &str, f64, f64) -> Vec<String>),
        ("BENCH_obs.json", gate_obs),
        ("BENCH_pool.json", gate_pool),
        ("BENCH_pool.json", gate_sched),
        ("BENCH_osed.json", gate_osed),
    ] {
        let base_path = Path::new(&base_dir).join(file);
        let Ok(base) = std::fs::read_to_string(&base_path) else {
            notes.push(format!("no baseline {} — skipped", base_path.display()));
            continue;
        };
        let fresh_path = Path::new(&fresh_dir).join(file);
        let fresh = match std::fs::read_to_string(&fresh_path) {
            Ok(f) => f,
            Err(err) => {
                problems.push(format!(
                    "{file}: baseline exists but fresh run is missing \
                     ({}: {err})",
                    fresh_path.display()
                ));
                continue;
            }
        };
        gated += 1;
        problems.extend(
            check(&fresh, &base, tolerance, slack).into_iter().map(|p| format!("{file}: {p}")),
        );
    }

    for n in &notes {
        println!("perf-gate: {n}");
    }
    if problems.is_empty() {
        if gated == 0 {
            eprintln!("perf-gate: nothing gated (no baselines found in {base_dir})");
            return ExitCode::FAILURE;
        }
        println!(
            "perf-gate: {gated} artifact(s) within tolerance \
             ({tolerance}% counts/ratios, {slack} overhead points)"
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("perf-gate: {p}");
        }
        eprintln!("perf-gate: {} regression(s)", problems.len());
        ExitCode::FAILURE
    }
}

/// The raw text after `"key":`, or `None` if the key is absent.
/// Searches the whole of `text` — callers narrow the scope first (e.g.
/// to one variant object) when keys repeat.
fn field_after<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    text[at..].trim_start().strip_prefix(':').map(str::trim_start)
}

fn num_field(text: &str, key: &str) -> Option<f64> {
    let rest = field_after(text, key)?;
    let end =
        rest.find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c))).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn bool_field(text: &str, key: &str) -> Option<bool> {
    let rest = field_after(text, key)?;
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// The `{…}` object inside `variants`/`rows` whose `"name"`/`"mode"`
/// field equals `name` (objects in our bench JSON never nest).
fn object_with<'a>(text: &'a str, key: &str, name: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\": \"{name}\"");
    let at = text.find(&marker)?;
    let start = text[..at].rfind('{')?;
    let end = at + text[at..].find('}')?;
    Some(&text[start..=end])
}

/// Relative-regression check: `fresh` may exceed `base` by at most
/// `tol_pct` percent. Improvements never fail.
fn within(label: &str, fresh: f64, base: f64, tol_pct: f64, problems: &mut Vec<String>) {
    if fresh > base * (1.0 + tol_pct / 100.0) {
        problems.push(format!(
            "{label} regressed: {fresh} vs baseline {base} (+{:.1}% > {tol_pct}% tolerance)",
            100.0 * (fresh - base) / base.max(f64::MIN_POSITIVE)
        ));
    }
}

fn gate_mem(fresh: &str, base: &str, tol_pct: f64, _slack: f64) -> Vec<String> {
    let mut problems = Vec::new();
    if bool_field(fresh, "allocator_installed") != Some(true) {
        problems
            .push("fresh run reports allocator_installed != true — counts are meaningless".into());
        return problems;
    }
    for key in ["order", "multiplies"] {
        let (f, b) = (num_field(fresh, key), num_field(base, key));
        if f != b {
            problems.push(format!("config drift: {key} fresh {f:?} vs baseline {b:?}"));
            return problems;
        }
    }
    let get = |text: &str, variant: &str, key: &str| -> Option<f64> {
        num_field(object_with(text, "name", variant)?, key)
    };
    let need = |text: &str, which: &str, variant: &str, key: &str, problems: &mut Vec<String>| {
        let v = get(text, variant, key);
        if v.is_none() {
            problems.push(format!("{which} run is missing {variant}.{key}"));
        }
        v
    };
    for variant in ["naive", "memopt"] {
        for key in ["allocs", "peak_live_bytes"] {
            let (Some(f), Some(b)) = (
                need(fresh, "fresh", variant, key, &mut problems),
                need(base, "baseline", variant, key, &mut problems),
            ) else {
                continue;
            };
            within(&format!("{variant}.{key}"), f, b, tol_pct, &mut problems);
        }
    }
    // The point of the optimization, gated outright on the fresh run.
    if let (Some(na), Some(ma), Some(np), Some(mp)) = (
        get(fresh, "naive", "allocs"),
        get(fresh, "memopt", "allocs"),
        get(fresh, "naive", "peak_live_bytes"),
        get(fresh, "memopt", "peak_live_bytes"),
    ) {
        if ma >= na {
            problems.push(format!("memopt no longer allocates less than naive ({ma} vs {na})"));
        }
        if mp >= np {
            problems.push(format!("memopt peak live bytes no longer below naive ({mp} vs {np})"));
        }
    }
    problems
}

fn gate_obs(fresh: &str, base: &str, _tol_pct: f64, slack: f64) -> Vec<String> {
    let mut problems = Vec::new();
    for key in
        ["overhead_disabled_percent", "overhead_enabled_percent", "overhead_recorder_percent"]
    {
        let (Some(f), Some(b)) = (num_field(fresh, key), num_field(base, key)) else {
            problems.push(format!("missing {key} in fresh or baseline"));
            continue;
        };
        // Overheads are already percentages (self-relative), so the
        // budget is absolute points on top of the baseline. A negative
        // baseline (instrumented run measured *faster* than untraced)
        // is pure timing noise — the true overhead is ≥ 0 — so it
        // clamps to zero rather than tightening the budget.
        let b = b.max(0.0);
        if f > b + slack {
            problems.push(format!(
                "{key} regressed: {f:.2}% vs baseline {b:.2}% \
                 (+{:.2} points > {slack} point slack)",
                f - b
            ));
        }
    }
    problems
}

fn gate_pool(fresh: &str, base: &str, tol_pct: f64, _slack: f64) -> Vec<String> {
    let mut problems = Vec::new();
    // Gate the team/spawn ratio at the largest (size, threads) row pair
    // present in the baseline — a machine-independent quantity, unlike
    // the raw ns/cell numbers.
    let ratio = |text: &str| -> Option<(f64, f64, f64)> {
        let mut best: Option<(f64, f64, f64)> = None; // (size, threads, ratio)
        for (at, _) in text.match_indices("\"mode\": \"team\"") {
            let start = text[..at].rfind('{')?;
            let end = at + text[at..].find('}')?;
            let row = &text[start..=end];
            let (size, threads, team_ns) = (
                num_field(row, "size")?,
                num_field(row, "threads")?,
                num_field(row, "ns_per_cell")?,
            );
            // The matching spawn row shares size and threads.
            let spawn_ns =
                text.match_indices("\"mode\": \"spawn_per_diag\"").find_map(|(at, _)| {
                    let start = text[..at].rfind('{')?;
                    let end = at + text[at..].find('}')?;
                    let row = &text[start..=end];
                    (num_field(row, "size") == Some(size)
                        && num_field(row, "threads") == Some(threads))
                    .then(|| num_field(row, "ns_per_cell"))?
                })?;
            let cand = (size, threads, team_ns / spawn_ns.max(f64::MIN_POSITIVE));
            if best.is_none_or(|(s, t, _)| (size, threads) > (s, t)) {
                best = Some(cand);
            }
        }
        best
    };
    match (ratio(fresh), ratio(base)) {
        (Some((fs, ft, fr)), Some((bs, bt, br))) => {
            if (fs, ft) != (bs, bt) {
                problems.push(format!(
                    "config drift: largest row is {fs}x{fs} t={ft} fresh \
                     vs {bs}x{bs} t={bt} baseline"
                ));
            } else {
                within(
                    &format!("team/spawn ns-per-cell ratio at {fs}x{fs} t={ft}"),
                    fr,
                    br,
                    tol_pct,
                    &mut problems,
                );
            }
        }
        _ => problems.push("cannot compute team/spawn ratio in fresh or baseline".into()),
    }
    problems
}

/// The coordinated work-stealing sweep may lose at most this factor to
/// the best parallel mode at the largest configuration. This is the
/// "team regression" contract: the mode the cost model leans on for
/// wavefront coordination must never reopen the 2×+ barrier-thrash
/// cliff that the barrier team pays on short diagonals (the `team` and
/// `spawn_per_diag` rows are *kept* in the bench precisely to document
/// that cliff, so they do not themselves gate).
const SCHED_MAX_WS_OVER_BEST: f64 = 1.2;

/// `auto` may lose at most this factor to the best fixed parallel mode
/// at every *multi-threaded* sweep point — the measured cost model has
/// one job. Single-thread points do not gate: there every mode
/// degenerates to the same sequential comb, so their row differences
/// are replicate noise of one code path, not scheduling quality.
const SCHED_MAX_AUTO_OVER_BEST: f64 = 1.10;

/// The concrete modes `Scheduling::Auto` chooses between (the `seq`
/// rows are the 1-thread reference, not a dispatchable mode).
const SCHED_FIXED_MODES: [&str; 4] = ["spawn_per_diag", "pool_per_diag", "team", "work_steal"];

/// Absolute scheduling-quality gate on the fresh `BENCH_pool.json`
/// (the baseline only guards config drift — both bounds are ratios of
/// same-machine same-run rows, so they need no cross-machine anchor):
///
/// * `work_steal` within [`SCHED_MAX_WS_OVER_BEST`] of the best fixed
///   parallel mode at the largest `(size, threads)` configuration;
/// * `auto` within [`SCHED_MAX_AUTO_OVER_BEST`] of the best fixed
///   parallel mode at every `(size, threads)` sweep point.
fn gate_sched(fresh: &str, base: &str, _tol_pct: f64, _slack: f64) -> Vec<String> {
    let mut problems = Vec::new();
    // (size, threads, mode, ns_per_cell) for every row in the file.
    fn rows(text: &str) -> Vec<(u64, u64, &str, f64)> {
        let mut out = Vec::new();
        for (at, _) in text.match_indices("\"mode\": \"") {
            let mode_start = at + "\"mode\": \"".len();
            let Some(mode_len) = text[mode_start..].find('"') else { continue };
            let (Some(start), Some(end)) = (text[..at].rfind('{'), text[at..].find('}')) else {
                continue;
            };
            let row = &text[start..at + end];
            if let (Some(size), Some(threads), Some(ns)) =
                (num_field(row, "size"), num_field(row, "threads"), num_field(row, "ns_per_cell"))
            {
                out.push((
                    size as u64,
                    threads as u64,
                    &text[mode_start..mode_start + mode_len],
                    ns,
                ));
            }
        }
        out
    }
    let fresh_rows = rows(fresh);
    // Sweep points where scheduling exists (threads ≥ 2 — see
    // SCHED_MAX_AUTO_OVER_BEST for why t=1 rows never gate), largest
    // last.
    let mut points: Vec<(u64, u64)> = fresh_rows
        .iter()
        .filter(|r| r.1 >= 2 && SCHED_FIXED_MODES.contains(&r.2))
        .map(|r| (r.0, r.1))
        .collect();
    points.sort_unstable();
    points.dedup();
    let Some(&largest) = points.last() else {
        problems.push("no parallel-mode rows in fresh run".into());
        return problems;
    };
    if let Some(&(bs, bt)) = {
        let mut bp: Vec<(u64, u64)> = rows(base)
            .iter()
            .filter(|r| r.1 >= 2 && SCHED_FIXED_MODES.contains(&r.2))
            .map(|r| (r.0, r.1))
            .collect();
        bp.sort_unstable();
        bp.last().copied().as_ref()
    } {
        if (bs, bt) != largest {
            problems.push(format!(
                "config drift: largest parallel point is {}x{} t={} fresh vs {bs}x{bs} t={bt} baseline",
                largest.0, largest.0, largest.1
            ));
            return problems;
        }
    }
    for &(size, threads) in &points {
        let at_point = |mode: &str| {
            fresh_rows.iter().find(|r| (r.0, r.1) == (size, threads) && r.2 == mode).map(|r| r.3)
        };
        let Some(best_fixed) = SCHED_FIXED_MODES
            .iter()
            .filter_map(|m| at_point(m))
            .min_by(f64::total_cmp)
            .filter(|&ns| ns > 0.0)
        else {
            continue;
        };
        match at_point("auto") {
            Some(auto_ns) => {
                if auto_ns > best_fixed * SCHED_MAX_AUTO_OVER_BEST {
                    problems.push(format!(
                        "auto lost to the best fixed mode at {size}x{size} t={threads}: \
                         {auto_ns:.4} vs {best_fixed:.4} ns/cell \
                         (> {SCHED_MAX_AUTO_OVER_BEST}x — the cost model picked wrong)"
                    ));
                }
            }
            None => problems.push(format!("no auto row at {size}x{size} t={threads}")),
        }
        if (size, threads) == largest {
            match at_point("work_steal") {
                Some(ws_ns) => {
                    if ws_ns > best_fixed * SCHED_MAX_WS_OVER_BEST {
                        problems.push(format!(
                            "work_steal cliff at {size}x{size} t={threads}: {ws_ns:.4} vs best \
                             fixed {best_fixed:.4} ns/cell (> {SCHED_MAX_WS_OVER_BEST}x — the \
                             team regression is back in the coordinated sweep)"
                        ));
                    }
                }
                None => problems.push(format!("no work_steal row at {size}x{size} t={threads}")),
            }
        }
    }
    problems
}

/// The subsystem must not quietly regress below its reason to exist:
/// past this osed-vs-best-grid time ratio at 99% similarity (i.e. less
/// than 5× faster than the full grid) the gate fails outright, baseline
/// or no baseline.
const OSED_MAX_RATIO: f64 = 0.2;

fn gate_osed(fresh: &str, base: &str, tol_pct: f64, _slack: f64) -> Vec<String> {
    let mut problems = Vec::new();
    if bool_field(fresh, "allocator_installed") != Some(true) {
        problems
            .push("fresh run reports allocator_installed != true — counts are meaningless".into());
        return problems;
    }
    for key in ["sigma", "runs"] {
        let (f, b) = (num_field(fresh, key), num_field(base, key));
        if f != b {
            problems.push(format!("config drift: {key} fresh {f:?} vs baseline {b:?}"));
            return problems;
        }
    }
    // Gate the 99%-similarity row at the largest size — the sweet spot
    // the subsystem exists for. (The marker's trailing comma keeps the
    // 0.999 rows from matching.)
    fn row_99(text: &str) -> Option<(f64, &str)> {
        let mut best: Option<(f64, &str)> = None;
        for (at, _) in text.match_indices("\"similarity\": 0.99,") {
            let start = text[..at].rfind('{')?;
            let end = at + text[at..].find('}')?;
            let row = &text[start..=end];
            let size = num_field(row, "size")?;
            if best.is_none_or(|(s, _)| size > s) {
                best = Some((size, row));
            }
        }
        best
    }
    match (row_99(fresh), row_99(base)) {
        (Some((fs, frow)), Some((bs, brow))) => {
            if fs != bs {
                problems.push(format!(
                    "config drift: largest 99%-similarity row is size {fs} fresh \
                     vs size {bs} baseline"
                ));
                return problems;
            }
            // One edit_distance call on a fixed seed allocates a fixed
            // number of times, so counts compare directly.
            match (num_field(frow, "allocs"), num_field(brow, "allocs")) {
                (Some(f), Some(b)) => {
                    within(&format!("allocs at size {fs} sim 0.99"), f, b, tol_pct, &mut problems);
                }
                _ => problems.push("missing allocs in fresh or baseline 99% row".into()),
            }
            match (num_field(frow, "ratio_vs_best_grid"), num_field(brow, "ratio_vs_best_grid")) {
                (Some(f), Some(b)) => {
                    within(
                        &format!("osed/grid time ratio at size {fs} sim 0.99"),
                        f,
                        b,
                        tol_pct,
                        &mut problems,
                    );
                    if f > OSED_MAX_RATIO {
                        problems.push(format!(
                            "osed is no longer ≥ {:.0}× faster than the best grid path at 99% \
                             similarity (ratio {f} > {OSED_MAX_RATIO})",
                            1.0 / OSED_MAX_RATIO
                        ));
                    }
                }
                _ => {
                    problems.push("missing ratio_vs_best_grid in fresh or baseline 99% row".into())
                }
            }
        }
        _ => problems.push("cannot find a 99%-similarity row in fresh or baseline".into()),
    }
    problems
}

// ---------------------------------------------------------------------
// model-check runner
// ---------------------------------------------------------------------

fn model_check(args: &[String]) -> ExitCode {
    let mut bound: Option<String> = None;
    let mut schedules: Option<String> = None;
    let mut seed: Option<String> = None;
    let mut races = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut grab = |slot: &mut Option<String>| match it.next() {
            Some(v) => {
                *slot = Some(v.clone());
                true
            }
            None => false,
        };
        let ok = match arg.as_str() {
            "--bound" => grab(&mut bound),
            "--schedules" => grab(&mut schedules),
            "--seed" => grab(&mut seed),
            "--races" => {
                races = true;
                true
            }
            _ => false,
        };
        if !ok {
            eprintln!("model-check: bad argument {arg:?}");
            return ExitCode::FAILURE;
        }
    }

    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("slcs_model_check") {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg slcs_model_check");
    }

    let mut stages: Vec<(&str, &[&str], bool)> = vec![
        // (label, cargo args, needs the model-check cfg)
        ("checker self-tests", &["test", "-p", "shim-loom", "--lib", "-q"], false),
        ("protocol regression models", &["test", "--test", "model_check", "-q"], false),
        (
            "pool/team harnesses (instrumented build)",
            &["test", "-p", "rayon", "--test", "model", "--", "--nocapture"],
            true,
        ),
        (
            "engine queue harnesses (instrumented build)",
            &["test", "-p", "slcs-engine", "--lib", "model_", "--", "--nocapture"],
            true,
        ),
    ];
    if races {
        // The race-detector suites: the happens-before engine's unit
        // matrix (which ordering pairs create edges) and the planted
        // canary whose *detection* — with a replayable choice vector —
        // is what the tests assert. shim-loom is the instrumentation,
        // so these build without the cfg.
        stages.push((
            "happens-before edge matrix",
            &["test", "-p", "shim-loom", "--test", "hb", "-q"],
            false,
        ));
        stages.push((
            "planted-race canary + replay",
            &["test", "-p", "shim-loom", "--test", "races", "-q"],
            false,
        ));
    }

    for (label, cargo_args, instrumented) in &stages {
        println!("==> model-check: {label}");
        let mut cmd = Command::new("cargo");
        cmd.args(*cargo_args);
        if *instrumented {
            cmd.env("RUSTFLAGS", &rustflags);
        }
        if let Some(b) = &bound {
            cmd.env("SLCS_MODEL_PREEMPTIONS", b);
        }
        if let Some(s) = &schedules {
            cmd.env("SLCS_MODEL_SCHEDULES", s);
        }
        if let Some(s) = &seed {
            cmd.env("SLCS_MODEL_SEED", s);
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("model-check: {label} failed ({status})");
                return ExitCode::FAILURE;
            }
            Err(err) => {
                eprintln!("model-check: cannot run cargo: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("model-check: all stages green");
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------
// lint: file collection
// ---------------------------------------------------------------------

/// Crates under audit: everything first-party plus the vendored crates
/// that hold scheduler or lock-free code. The other vendored shims
/// (rand, proptest, criterion) mirror external APIs and hold no
/// concurrency code; `xtask` itself is a dev tool, not library code.
const AUDIT_ROOTS: &[&str] =
    &["crates", "vendor/rayon", "vendor/shim-loom", "vendor/shim-trace", "vendor/shim-alloc"];
const SKIP_DIRS: &[&str] = &["crates/xtask", "target"];

/// One lint finding. `line` is 1-based; 0 means the finding is about
/// the file as a whole (e.g. a missing crate-level attribute).
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl Violation {
    fn at(file: &Path, line: usize, rule: &'static str, message: String) -> Self {
        Violation { file: file.display().to_string(), line, rule, message }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// enough for rule messages and repo-relative paths.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            _ => {
                eprintln!("lint: bad argument {arg:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let repo = repo_root();
    let mut files = Vec::new();
    for root in AUDIT_ROOTS {
        collect_rs_files(&repo, &repo.join(root), &mut files);
    }
    files.sort();

    let mut violations: Vec<Violation> = Vec::new();
    let mut stats = Stats::default();
    // crate src dir → (has unsafe, lib.rs denies unsafe_op_in_unsafe_fn)
    let mut crates: std::collections::BTreeMap<PathBuf, (bool, bool)> = Default::default();

    for path in &files {
        let rel = path.strip_prefix(&repo).unwrap_or(path).to_path_buf();
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(err) => {
                violations.push(Violation::at(&rel, 0, "io", format!("unreadable: {err}")));
                continue;
            }
        };
        let lines = lex_file(&source);
        audit_file(&rel, &lines, &mut violations, &mut stats);

        if let Some(src_dir) = crate_src_dir(&rel) {
            let entry = crates.entry(src_dir).or_insert((false, false));
            let file_has_unsafe = lines.iter().enumerate().any(|(i, l)| {
                !l.in_test
                    && !is_attr(&l.code)
                    && has_word(&l.code, "unsafe")
                    && !lines[i].code.trim().is_empty()
            });
            entry.0 |= file_has_unsafe;
            if rel.file_name().is_some_and(|n| n == "lib.rs") {
                entry.1 = source.contains("#![deny(unsafe_op_in_unsafe_fn)]");
            }
        }
    }

    for (src_dir, (has_unsafe, denies)) in &crates {
        if *has_unsafe && !denies {
            violations.push(Violation::at(
                &src_dir.join("lib.rs"),
                0,
                "deny-attr",
                "crate contains unsafe code but does not declare \
                 #![deny(unsafe_op_in_unsafe_fn)]"
                    .to_string(),
            ));
        }
    }

    if json {
        let mut out = String::from("[");
        for (i, v) in violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&v.file),
                v.line,
                v.rule,
                json_escape(&v.message)
            );
        }
        out.push_str(if violations.is_empty() { "]" } else { "\n]" });
        println!("{out}");
        return if violations.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if violations.is_empty() {
        println!(
            "lint clean: {} files; {} unsafe sites justified, {} explicit orderings annotated \
             ({} non-Relaxed), {} panic sites allowed ({} via PANIC:, rest lock-poisoning), \
             facade enforced over {} model-checked files",
            files.len(),
            stats.unsafe_sites,
            stats.ordering_sites,
            stats.ordering_sites - stats.relaxed_sites,
            stats.panic_allowed + stats.panic_justified,
            stats.panic_justified,
            stats.facade_files,
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            if v.line == 0 {
                eprintln!("lint: {}: {}", v.file, v.message);
            } else {
                eprintln!("lint: {}:{}: {}", v.file, v.line, v.message);
            }
        }
        eprintln!("lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn repo_root() -> PathBuf {
    // cargo runs xtask from the workspace root via the alias; fall back
    // to walking up to the directory holding the workspace Cargo.toml.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn collect_rs_files(repo: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path.strip_prefix(repo).unwrap_or(&path);
        if SKIP_DIRS.iter().any(|s| rel == Path::new(s)) {
            continue;
        }
        if path.is_dir() {
            // Only library/binary sources are audited; tests/ and
            // benches/ trees are exercised code, not exercised-by code.
            let name = entry.file_name();
            if dir.parent().is_some_and(|p| p.ends_with("crates") || p.ends_with("vendor"))
                && (name == "tests" || name == "benches")
            {
                continue;
            }
            collect_rs_files(repo, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn crate_src_dir(rel: &Path) -> Option<PathBuf> {
    let mut dir = rel.parent()?;
    loop {
        if dir.file_name().is_some_and(|n| n == "src") {
            return Some(dir.to_path_buf());
        }
        dir = dir.parent()?;
    }
}

// ---------------------------------------------------------------------
// lint: the lexer
// ---------------------------------------------------------------------

/// One source line, split into its code text (string/char contents
/// blanked out) and its comment text, with test-region membership.
struct Line {
    code: String,
    comment: String,
    in_test: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum Lex {
    Code,
    /// Inside a `"…"` (escapes honored) — may span lines.
    Str,
    /// Inside an `r##"…"##` raw string with this many hashes.
    RawStr(u8),
    /// Inside a (nested) block comment at this depth.
    Block(u32),
}

fn lex_file(source: &str) -> Vec<Line> {
    let mut state = Lex::Code;
    let mut depth: i64 = 0; // brace depth of code
    let mut pending_test_attr = false;
    let mut test_region_base: Option<i64> = None;
    let mut out = Vec::new();

    for raw in source.lines() {
        let (code, comment, next_state) = lex_line(raw, state);
        state = next_state;

        let trimmed = code.trim();
        // `#[cfg(test)]` / `#[cfg(all(test, …))]` start a test region at
        // the next brace-opening item (a `;`-terminated item cancels).
        if trimmed.starts_with('#') && (code.contains("cfg(test") || code.contains("cfg(all(test"))
        {
            pending_test_attr = true;
        }

        // Depth reached by closing braces on this line; a `}` returning
        // to the region's base depth ends the test region.
        let mut close_min = i64::MAX;
        for ch in code.chars() {
            match ch {
                '{' => {
                    if pending_test_attr && test_region_base.is_none() {
                        test_region_base = Some(depth);
                        pending_test_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    close_min = close_min.min(depth);
                }
                _ => {}
            }
        }
        if pending_test_attr && !trimmed.starts_with('#') && trimmed.ends_with(';') {
            pending_test_attr = false;
        }

        let in_test = test_region_base.is_some() || pending_test_attr;
        if let Some(base) = test_region_base {
            if close_min <= base {
                test_region_base = None;
            }
        }
        out.push(Line { code, comment, in_test });
    }
    out
}

/// Splits one line into (code, comment) given the carry-over lexer
/// state; string/char contents become spaces in the code text.
fn lex_line(line: &str, mut state: Lex) -> (String, String, Lex) {
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match state {
            Lex::Block(d) => {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    state = if d > 1 { Lex::Block(d - 1) } else { Lex::Code };
                    i += 2;
                    continue;
                }
                if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    state = Lex::Block(d + 1);
                    i += 2;
                    continue;
                }
                comment.push(c);
                i += 1;
            }
            Lex::Str => {
                if c == '\\' {
                    i += 2; // escape (incl. \" and \\); lost at EOL is fine
                    continue;
                }
                if c == '"' {
                    state = Lex::Code;
                }
                code.push(' ');
                i += 1;
            }
            Lex::RawStr(h) => {
                if c == '"' {
                    let hashes = bytes[i + 1..].iter().take_while(|&&x| x == '#').count();
                    if hashes >= h as usize {
                        state = Lex::Code;
                        i += 1 + h as usize;
                        for _ in 0..=h {
                            code.push(' ');
                        }
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
            Lex::Code => {
                if c == '/' && bytes.get(i + 1) == Some(&'/') {
                    comment.extend(&bytes[i..]);
                    break;
                }
                if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    state = Lex::Block(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = Lex::Str;
                    code.push(' ');
                    i += 1;
                    continue;
                }
                // Raw (and byte) string openers: r"  r#"  br"  b"
                if (c == 'r' || c == 'b') && !prev_is_ident(&bytes, i) {
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let hashes = bytes[j..].iter().take_while(|&&x| x == '#').count();
                    if bytes.get(j + hashes) == Some(&'"')
                        && (hashes > 0 || bytes.get(j) == Some(&'"'))
                    {
                        state = if hashes > 0 { Lex::RawStr(hashes as u8) } else { Lex::Str };
                        for _ in i..=(j + hashes) {
                            code.push(' ');
                        }
                        i = j + hashes + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime: a literal closes within a
                    // few chars; a lifetime never has a closing quote.
                    if let Some(len) = char_literal_len(&bytes[i..]) {
                        for _ in 0..len {
                            code.push(' ');
                        }
                        i += len;
                        continue;
                    }
                }
                code.push(c);
                i += 1;
            }
        }
    }
    (code, comment, state)
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// Length of a char literal starting at `s[0] == '\''`, or `None` for a
/// lifetime.
fn char_literal_len(s: &[char]) -> Option<usize> {
    match s.get(1)? {
        '\\' => {
            // `'\n'`, `'\\'`, `'\u{…}'`, `'\x7f'`
            let close = s.iter().skip(2).position(|&c| c == '\'')?;
            Some(close + 3)
        }
        _ => (s.get(2) == Some(&'\'')).then_some(3),
    }
}

// ---------------------------------------------------------------------
// lint: the rules
// ---------------------------------------------------------------------

#[derive(Default)]
struct Stats {
    unsafe_sites: usize,
    /// Every explicit atomic `Ordering::<variant>` occurrence.
    ordering_sites: usize,
    /// The `Ordering::Relaxed` subset of `ordering_sites`.
    relaxed_sites: usize,
    panic_allowed: usize,
    panic_justified: usize,
    /// Files the facade-enforcement rule (rule 5) scanned.
    facade_files: usize,
}

fn is_attr(code: &str) -> bool {
    let t = code.trim();
    t.starts_with("#[") || t.starts_with("#![")
}

fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok =
            code[after..].chars().next().is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// The contiguous comment/attribute block directly above line `i`,
/// concatenated (doc and plain comments both count).
fn justification_above(lines: &[Line], i: usize) -> String {
    let mut text = String::new();
    let mut j = i;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        let code_t = l.code.trim();
        if code_t.is_empty() && !l.comment.is_empty() {
            let _ = write!(text, " {}", l.comment);
        } else if is_attr(&l.code) {
            continue; // attributes sit between a comment and its item
        } else {
            break;
        }
    }
    text
}

/// Files whose atomics are, by design, nothing but independent
/// monotonic counters — rule 4 pins them to `Ordering::Relaxed` only,
/// so a "quick fix" cannot quietly smuggle cross-field consistency
/// assumptions into code documented not to have any.
const RELAXED_ONLY_FILES: &[&str] = &["crates/engine/src/metrics.rs", "vendor/rayon/src/stats.rs"];

/// The atomic memory orderings (std::sync::atomic::Ordering variants).
/// Matching on these keeps `std::cmp::Ordering::Less` & friends out of
/// the ordering audit.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Source trees whose crates are model-checked: under
/// `--cfg slcs_model_check` their `sync.rs` facades swap std's
/// primitives for the instrumented shim-loom ones, so any *direct*
/// `std::sync::atomic` / `std::cell::UnsafeCell` use in these trees is
/// an access the model checker silently cannot see. Rule 5 forbids it.
const MODEL_CHECKED_SRC: &[&str] = &["vendor/rayon/src", "crates/engine/src"];

/// The only files in the model-checked trees allowed to name the raw
/// primitives: the facades themselves (that is their job) and the
/// always-on counter files, whose instrumentation must not add states
/// for the checker to explore (see their module docs). shim-loom is
/// not listed because it is not under [`MODEL_CHECKED_SRC`]: it *is*
/// the instrumentation.
const FACADE_ALLOWLIST: &[&str] = &[
    "vendor/rayon/src/sync.rs",
    "crates/engine/src/sync.rs",
    "crates/engine/src/metrics.rs",
    "vendor/rayon/src/stats.rs",
];

/// Raw-primitive tokens rule 5 hunts for in model-checked trees.
const RAW_SYNC_TOKENS: &[&str] =
    &["std::sync::atomic", "core::sync::atomic", "std::cell::UnsafeCell", "core::cell::UnsafeCell"];

/// Occurrences of `word` in `code` as a whole word (the counting twin
/// of [`has_word`] — sites, not lines, so consolidation can't hide
/// them).
fn count_word(code: &str, word: &str) -> usize {
    let mut n = 0;
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok =
            code[after..].chars().next().is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if before_ok && after_ok {
            n += 1;
        }
        start = after;
    }
    n
}

/// Atomic-ordering occurrences on one code line: `(total, relaxed)`.
fn ordering_sites(code: &str) -> (usize, usize) {
    let (mut total, mut relaxed) = (0, 0);
    let mut start = 0;
    while let Some(pos) = code[start..].find("Ordering::") {
        let at = start + pos + "Ordering::".len();
        start = at;
        let variant: String = code[at..].chars().take_while(|c| c.is_alphanumeric()).collect();
        if ATOMIC_ORDERINGS.contains(&variant.as_str()) {
            total += 1;
            if variant == "Relaxed" {
                relaxed += 1;
            }
        }
    }
    (total, relaxed)
}

fn audit_file(rel: &Path, lines: &[Line], violations: &mut Vec<Violation>, stats: &mut Stats) {
    let relaxed_only = RELAXED_ONLY_FILES.iter().any(|f| rel == Path::new(f) || rel.ends_with(f));
    let facade_checked = MODEL_CHECKED_SRC.iter().any(|d| rel.starts_with(d))
        && !FACADE_ALLOWLIST.iter().any(|f| rel == Path::new(f));
    if facade_checked {
        stats.facade_files += 1;
    }
    let mut ordering_run_justified: std::collections::HashSet<usize> = Default::default();
    let mut unsafe_run_justified: std::collections::HashSet<usize> = Default::default();

    for (i, line) in lines.iter().enumerate() {
        if line.in_test || line.code.trim().is_empty() {
            continue;
        }
        let code = &line.code;
        let own_comment = &line.comment;

        // Rule 1 — unsafe needs SAFETY: (declarations may use `# Safety`).
        // `unsafe fn(` is a fn-pointer *type*, not an unsafe operation;
        // the unsafety lives at the call sites. Sites are counted per
        // occurrence of the keyword, so merging two unsafe blocks into
        // one line still shows up as two sites in the audit totals.
        let unsafe_code = code.replace("unsafe fn(", "");
        if !is_attr(code) && has_word(&unsafe_code, "unsafe") {
            stats.unsafe_sites += count_word(&unsafe_code, "unsafe");
            let above = justification_above(lines, i);
            let is_decl = unsafe_code.contains("unsafe fn")
                || unsafe_code.contains("unsafe impl")
                || unsafe_code.contains("unsafe trait");
            // A justification covers an unbroken run of consecutive
            // unsafe lines (e.g. paired raw-slice reconstructions).
            let justified = own_comment.contains("SAFETY:")
                || above.contains("SAFETY:")
                || (is_decl && above.contains("# Safety"))
                || (i > 0
                    && has_word(&lines[i - 1].code.replace("unsafe fn(", ""), "unsafe")
                    && unsafe_run_justified.contains(&(i - 1)));
            if justified {
                unsafe_run_justified.insert(i);
            } else {
                violations.push(Violation::at(
                    rel,
                    i + 1,
                    "safety",
                    format!(
                        "unsafe without a `// SAFETY:` justification{}",
                        if is_decl { " (or a `# Safety` doc section)" } else { "" }
                    ),
                ));
            }
        }

        // Rule 2 — every explicit atomic ordering needs an ORDERING:
        // note. An unexplained Acquire is as suspicious as an
        // unexplained Relaxed: the note must say which edge the
        // ordering buys (or deliberately forgoes). A note covers an
        // unbroken run of consecutive ordering lines (e.g. a snapshot
        // struct literal loading a dozen counters under one argument).
        let (ord_total, ord_relaxed) = ordering_sites(code);
        if ord_total > 0 {
            stats.ordering_sites += ord_total;
            stats.relaxed_sites += ord_relaxed;
            let justified = own_comment.contains("ORDERING:")
                || justification_above(lines, i).contains("ORDERING:")
                || (i > 0
                    && ordering_sites(&lines[i - 1].code).0 > 0
                    && ordering_run_justified.contains(&(i - 1)));
            if justified {
                ordering_run_justified.insert(i);
            } else {
                violations.push(Violation::at(
                    rel,
                    i + 1,
                    "ordering",
                    "explicit atomic ordering without an `// ORDERING:` note".to_string(),
                ));
            }
        }

        // Rule 3 — no unwrap/expect in library code, unless it is a
        // lock-poisoning unwrap or carries a PANIC: justification.
        for needle in [".unwrap()", ".expect("] {
            let mut start = 0;
            while let Some(pos) = code[start..].find(needle) {
                let at = start + pos;
                start = at + needle.len();
                let chain = code[..at].trim_end();
                // Lock-poisoning results: `.lock()`, RwLock guards, and
                // `Condvar::wait{,_timeout}(…)` — the final call before
                // the unwrap is a wait when no further `.` follows it.
                let is_poisoning_chain = |chain: &str| {
                    [".lock()", ".read()", ".write()"].iter().any(|p| chain.ends_with(p))
                        || (chain.ends_with(')')
                            && chain.rfind(".wait").is_some_and(|p| {
                                let rest = &chain[p + ".wait".len()..];
                                // Condvar waits always pass the guard;
                                // an argument-less `.wait()` is some
                                // other API and stays flagged.
                                !rest.contains('.') && !rest.contains("()")
                            }))
                };
                let poisoning = is_poisoning_chain(chain)
                    || (chain.is_empty()
                        && i > 0
                        && is_poisoning_chain(lines[i - 1].code.trim_end()));
                if poisoning {
                    stats.panic_allowed += 1;
                    continue;
                }
                if own_comment.contains("PANIC:")
                    || justification_above(lines, i).contains("PANIC:")
                {
                    stats.panic_justified += 1;
                    continue;
                }
                violations.push(Violation::at(
                    rel,
                    i + 1,
                    "panic",
                    format!("`{needle}…` in library code without a `// PANIC:` justification"),
                ));
            }
        }

        // Rule 4 — counter-only files use only the allowlisted ordering.
        if relaxed_only {
            let mut start = 0;
            while let Some(pos) = code[start..].find("Ordering::") {
                let at = start + pos + "Ordering::".len();
                let variant: String =
                    code[at..].chars().take_while(|c| c.is_alphanumeric()).collect();
                start = at;
                if ATOMIC_ORDERINGS.contains(&variant.as_str()) && variant != "Relaxed" {
                    violations.push(Violation::at(
                        rel,
                        i + 1,
                        "relaxed-only",
                        format!(
                            "this file must use Ordering::Relaxed only \
                             (independent monotonic counters, no cross-field consistency), \
                             found {variant}"
                        ),
                    ));
                }
            }
        }

        // Rule 5 — facade enforcement. Model-checked crates reach
        // atomics and UnsafeCell only through their sync.rs facades:
        // a direct std/core import here compiles fine but gives the
        // model checker (and the race detector) a blind spot, which is
        // worse than a failure.
        if facade_checked {
            for token in RAW_SYNC_TOKENS {
                if code.contains(token) {
                    violations.push(Violation::at(
                        rel,
                        i + 1,
                        "facade",
                        format!(
                            "`{token}` in a model-checked crate outside its sync facade — \
                             use the crate's `sync` module so the model checker sees the access"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lex + audit an in-memory source as if it lived at `rel`.
    fn audit(rel: &str, src: &str) -> (Vec<Violation>, Stats) {
        let mut violations = Vec::new();
        let mut stats = Stats::default();
        audit_file(Path::new(rel), &lex_file(src), &mut violations, &mut stats);
        (violations, stats)
    }

    #[test]
    fn ordering_rule_covers_every_explicit_ordering() {
        let (v, s) = audit("crates/x/src/a.rs", "fn f(a: &A) { a.load(Ordering::Acquire); }\n");
        assert_eq!(v.len(), 1, "{:?}", v.iter().map(|v| &v.message).collect::<Vec<_>>());
        assert_eq!(v[0].rule, "ordering");
        assert_eq!((v[0].line, s.ordering_sites, s.relaxed_sites), (1, 1, 0));
        // An ORDERING: note (own line or above) clears it, and covers a
        // run of consecutive ordering lines.
        let src = "// ORDERING: pairs with the Release store in g().\n\
                   fn f(a: &A) { a.load(Ordering::Acquire);\n\
                   a.store(1, Ordering::Release); }\n";
        let (v, s) = audit("crates/x/src/a.rs", src);
        assert!(v.is_empty(), "{:?}", v.iter().map(|v| &v.message).collect::<Vec<_>>());
        assert_eq!((s.ordering_sites, s.relaxed_sites), (2, 0));
    }

    #[test]
    fn ordering_rule_counts_sites_not_lines_and_skips_cmp_ordering() {
        let src = "// ORDERING: CAS failure may be weaker; both noted here.\n\
                   fn f(a: &A) { a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire); }\n";
        let (v, s) = audit("crates/x/src/a.rs", src);
        assert!(v.is_empty());
        assert_eq!(s.ordering_sites, 2, "one line, two ordering sites");
        // std::cmp::Ordering variants are not atomic orderings.
        let (v, s) = audit("crates/x/src/a.rs", "fn f() -> Ordering { Ordering::Less }\n");
        assert!(v.is_empty());
        assert_eq!(s.ordering_sites, 0);
    }

    #[test]
    fn unsafe_sites_are_counted_per_occurrence() {
        let src = "// SAFETY: both derefs stay in bounds (len checked above).\n\
                   fn f(p: *const u8) { unsafe { g(p) }; unsafe { g(p) }; }\n";
        let (v, s) = audit("crates/x/src/a.rs", src);
        assert!(v.is_empty(), "{:?}", v.iter().map(|v| &v.message).collect::<Vec<_>>());
        assert_eq!(s.unsafe_sites, 2, "consolidating blocks onto one line must not hide sites");
    }

    #[test]
    fn facade_rule_flags_raw_primitives_outside_the_allowlist() {
        let src = "use std::sync::atomic::AtomicUsize;\n";
        let (v, _) = audit("vendor/rayon/src/evil.rs", src);
        assert_eq!(v.len(), 1, "{:?}", v.iter().map(|v| &v.message).collect::<Vec<_>>());
        assert_eq!((v[0].rule, v[0].line), ("facade", 1));
        let (v, _) = audit("crates/engine/src/evil.rs", "use std::cell::UnsafeCell;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "facade");
        // The facades themselves and the counter files are allowed…
        for allowed in FACADE_ALLOWLIST {
            let (v, _) = audit(allowed, "use std::sync::atomic::AtomicU64;\n");
            assert!(v.iter().all(|v| v.rule != "facade"), "{allowed} should be allowlisted");
        }
        // …and crates outside the model-checked trees are not audited.
        let (v, _) = audit("crates/semilocal/src/a.rs", src);
        assert!(v.iter().all(|v| v.rule != "facade"));
    }

    #[test]
    fn facade_rule_ignores_tests_and_comments() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicUsize;\n}\n";
        let (v, _) = audit("vendor/rayon/src/a.rs", src);
        assert!(v.iter().all(|v| v.rule != "facade"), "test-only use is exercised-by code");
        let (v, _) = audit("vendor/rayon/src/a.rs", "// std::sync::atomic is banned here\n");
        assert!(v.is_empty(), "comments are not imports");
    }

    #[test]
    fn json_escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\ty"), "x\\n\\ty");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    fn mem_json(
        memopt_allocs: u64,
        memopt_peak: u64,
        naive_allocs: u64,
        naive_peak: u64,
        installed: bool,
    ) -> String {
        format!(
            "{{\n  \"bench\": \"bench-mem\",\n  \"order\": 512,\n  \"multiplies\": 4,\n  \
             \"allocator_installed\": {installed},\n  \"variants\": [\n    \
             {{\"name\": \"naive\", \"allocs\": {naive_allocs}, \"alloc_bytes\": 9000, \
             \"peak_live_bytes\": {naive_peak}, \"millis\": 1.0}},\n    \
             {{\"name\": \"memopt\", \"allocs\": {memopt_allocs}, \"alloc_bytes\": 100, \
             \"peak_live_bytes\": {memopt_peak}, \"millis\": 0.5}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn json_scanners_extract_fields() {
        let j = mem_json(4, 2048, 4000, 900_000, true);
        assert_eq!(num_field(&j, "order"), Some(512.0));
        assert_eq!(bool_field(&j, "allocator_installed"), Some(true));
        let memopt = object_with(&j, "name", "memopt").unwrap();
        assert_eq!(num_field(memopt, "allocs"), Some(4.0));
        assert_eq!(num_field(memopt, "peak_live_bytes"), Some(2048.0));
        assert!(object_with(&j, "name", "missing").is_none());
        assert!(num_field(&j, "nonexistent").is_none());
    }

    #[test]
    fn gate_mem_passes_identical_runs() {
        let j = mem_json(4, 2048, 4000, 900_000, true);
        assert!(gate_mem(&j, &j, 25.0, 10.0).is_empty());
    }

    #[test]
    fn gate_mem_fails_on_doctored_baseline() {
        let base = mem_json(4, 2048, 2000, 400_000, true); // doctored: halved counts
        let fresh = mem_json(4, 2048, 4000, 900_000, true);
        let problems = gate_mem(&fresh, &base, 25.0, 10.0);
        assert!(problems.iter().any(|p| p.contains("naive.allocs regressed")), "{problems:?}");
        assert!(
            problems.iter().any(|p| p.contains("naive.peak_live_bytes regressed")),
            "{problems:?}"
        );
    }

    #[test]
    fn gate_mem_enforces_memopt_beats_naive() {
        let bad = mem_json(5000, 2048, 4000, 900_000, true);
        let problems = gate_mem(&bad, &bad, 25.0, 10.0);
        assert!(problems.iter().any(|p| p.contains("no longer allocates less")), "{problems:?}");
        let bad_peak = mem_json(4, 900_000, 4000, 900_000, true);
        let problems = gate_mem(&bad_peak, &bad_peak, 25.0, 10.0);
        assert!(problems.iter().any(|p| p.contains("peak live bytes")), "{problems:?}");
    }

    #[test]
    fn gate_mem_requires_instrumented_allocator_and_matching_config() {
        let fresh = mem_json(4, 2048, 4000, 900_000, false);
        let problems = gate_mem(&fresh, &fresh, 25.0, 10.0);
        assert!(problems.iter().any(|p| p.contains("allocator_installed")), "{problems:?}");
        let fresh = mem_json(4, 2048, 4000, 900_000, true);
        let base = fresh.replace("\"order\": 512", "\"order\": 1024");
        let problems = gate_mem(&fresh, &base, 25.0, 10.0);
        assert!(problems.iter().any(|p| p.contains("config drift")), "{problems:?}");
    }

    fn obs_json(disabled: f64, enabled: f64, recorder: f64) -> String {
        format!(
            "{{\n  \"bench\": \"bench-obs\",\n  \"overhead_disabled_percent\": {disabled:.3},\n  \
             \"overhead_enabled_percent\": {enabled:.3},\n  \
             \"overhead_recorder_percent\": {recorder:.3}\n}}\n"
        )
    }

    #[test]
    fn gate_obs_allows_slack_but_fails_past_it() {
        let base = obs_json(1.0, 8.0, 1.0);
        assert!(gate_obs(&obs_json(9.0, 15.0, 2.0), &base, 25.0, 10.0).is_empty());
        let problems = gate_obs(&obs_json(12.0, 8.0, 1.0), &base, 25.0, 10.0);
        assert!(
            problems.iter().any(|p| p.contains("overhead_disabled_percent regressed")),
            "{problems:?}"
        );
        // The serving-path recorder overhead gates the same way.
        let problems = gate_obs(&obs_json(1.0, 8.0, 15.0), &base, 25.0, 10.0);
        assert!(
            problems.iter().any(|p| p.contains("overhead_recorder_percent regressed")),
            "{problems:?}"
        );
        // A baseline without the recorder key is reported, not ignored.
        let old_base = "{\n  \"overhead_disabled_percent\": 1.0,\n  \
                        \"overhead_enabled_percent\": 8.0\n}\n";
        let problems = gate_obs(&obs_json(1.0, 8.0, 1.0), old_base, 25.0, 10.0);
        assert!(
            problems.iter().any(|p| p.contains("missing overhead_recorder_percent")),
            "{problems:?}"
        );
        // Negative overheads (faster than untraced: measurement noise)
        // are always acceptable.
        assert!(gate_obs(&obs_json(-0.5, -0.1, -0.2), &base, 25.0, 10.0).is_empty());
        // A negative *baseline* clamps to zero instead of tightening
        // the budget below the slack.
        assert!(
            gate_obs(&obs_json(9.0, 8.0, 1.0), &obs_json(-5.0, 8.0, -1.0), 25.0, 10.0).is_empty()
        );
    }

    fn pool_json(team_ns: f64, spawn_ns: f64) -> String {
        format!(
            "{{\n  \"bench\": \"bench-baseline\",\n  \"rows\": [\n    \
             {{\"size\": 256, \"threads\": 1, \"mode\": \"spawn_per_diag\", \
             \"ns_per_cell\": 9.0, \"millis\": 1.0}},\n    \
             {{\"size\": 256, \"threads\": 1, \"mode\": \"team\", \
             \"ns_per_cell\": 9.0, \"millis\": 1.0}},\n    \
             {{\"size\": 256, \"threads\": 2, \"mode\": \"spawn_per_diag\", \
             \"ns_per_cell\": {spawn_ns:.3}, \"millis\": 1.0}},\n    \
             {{\"size\": 256, \"threads\": 2, \"mode\": \"team\", \
             \"ns_per_cell\": {team_ns:.3}, \"millis\": 1.0}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn gate_pool_compares_team_spawn_ratio_at_largest_config() {
        let base = pool_json(5.0, 10.0); // ratio 0.5
        assert!(gate_pool(&pool_json(6.0, 10.0), &base, 25.0, 10.0).is_empty()); // 0.6 ≤ 0.5·1.25
        let problems = gate_pool(&pool_json(8.0, 10.0), &base, 25.0, 10.0); // 0.8 > 0.625
        assert!(problems.iter().any(|p| p.contains("ratio at 256x256 t=2")), "{problems:?}");
        // Absolute slowdown with an unchanged ratio passes: wall times
        // are machine-dependent and must not gate.
        assert!(gate_pool(&pool_json(50.0, 100.0), &base, 25.0, 10.0).is_empty());
    }

    /// Two sweep points (256² and 512², both t=2) with every mode row;
    /// the fixed modes pin the best parallel cost at 1.0 ns/cell.
    fn sched_json(ws_large: f64, auto_small: f64, auto_large: f64) -> String {
        let mut rows =
            vec![(256u64, 1u64, "seq".to_string(), 0.9f64), (512, 1, "seq".to_string(), 0.9)];
        for (size, ws, auto) in [(256u64, 1.0, auto_small), (512, ws_large, auto_large)] {
            rows.push((size, 2, "spawn_per_diag".into(), 9.0));
            rows.push((size, 2, "pool_per_diag".into(), 1.0));
            rows.push((size, 2, "team".into(), 5.0));
            rows.push((size, 2, "work_steal".into(), ws));
            rows.push((size, 2, "auto".into(), auto));
        }
        let body: Vec<String> = rows
            .iter()
            .map(|(n, t, m, ns)| {
                format!(
                    "    {{\"size\": {n}, \"threads\": {t}, \"mode\": \"{m}\", \
                     \"ns_per_cell\": {ns:.4}, \"millis\": 1.0}}"
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"bench-baseline\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        )
    }

    #[test]
    fn gate_sched_passes_when_ws_and_auto_track_the_best_mode() {
        let good = sched_json(1.1, 1.05, 0.8);
        assert!(gate_sched(&good, &good, 25.0, 10.0).is_empty());
    }

    #[test]
    fn gate_sched_fails_a_work_steal_cliff_at_the_largest_point() {
        let bad = sched_json(1.5, 1.0, 0.8); // 1.5 > 1.2 × best (1.0)
        let problems = gate_sched(&bad, &bad, 25.0, 10.0);
        assert!(
            problems.iter().any(|p| p.contains("work_steal cliff at 512x512 t=2")),
            "{problems:?}"
        );
        // A work_steal cliff at the *small* point does not gate (the
        // contract anchors at the largest configuration)…
        let small_ws = sched_json(1.0, 1.0, 0.8).replace(
            "\"size\": 256, \"threads\": 2, \"mode\": \"work_steal\", \"ns_per_cell\": 1.0000",
            "\"size\": 256, \"threads\": 2, \"mode\": \"work_steal\", \"ns_per_cell\": 8.0000",
        );
        assert!(gate_sched(&small_ws, &small_ws, 25.0, 10.0).is_empty());
    }

    #[test]
    fn gate_sched_holds_auto_to_the_best_fixed_mode_everywhere() {
        // Slow at the small point only — every sweep point gates.
        let bad = sched_json(1.0, 1.2, 0.8);
        let problems = gate_sched(&bad, &bad, 25.0, 10.0);
        assert!(
            problems.iter().any(|p| p.contains("auto lost") && p.contains("256x256")),
            "{problems:?}"
        );
        // Auto *faster* than every fixed mode is an improvement, not a
        // failure; a missing auto row is.
        let faster = sched_json(1.0, 0.5, 0.5);
        assert!(gate_sched(&faster, &faster, 25.0, 10.0).is_empty());
        let missing = sched_json(1.0, 1.0, 0.8)
            .replace("    {\"size\": 256, \"threads\": 2, \"mode\": \"auto\", \"ns_per_cell\": 1.0000, \"millis\": 1.0},\n", "");
        let problems = gate_sched(&missing, &missing, 25.0, 10.0);
        assert!(problems.iter().any(|p| p.contains("no auto row at 256x256")), "{problems:?}");
    }

    #[test]
    fn gate_sched_ignores_single_thread_rows() {
        // At t=1 every mode degenerates to the same sequential comb, so
        // an "auto lost to spawn" spread there is replicate noise of
        // one code path — it must not gate, however wide.
        let extra = "    {\"size\": 256, \"threads\": 1, \"mode\": \"spawn_per_diag\", \
                     \"ns_per_cell\": 1.0000, \"millis\": 1.0},\n    \
                     {\"size\": 256, \"threads\": 1, \"mode\": \"auto\", \
                     \"ns_per_cell\": 4.0000, \"millis\": 1.0},\n";
        let noisy = sched_json(1.0, 1.0, 0.8).replacen(
            "    {\"size\": 256, \"threads\": 2",
            &format!("{extra}    {{\"size\": 256, \"threads\": 2"),
            1,
        );
        assert!(noisy.contains("\"threads\": 1, \"mode\": \"auto\""), "splice failed");
        assert!(gate_sched(&noisy, &noisy, 25.0, 10.0).is_empty());
    }

    #[test]
    fn gate_sched_detects_config_drift_against_the_baseline() {
        let fresh = sched_json(1.0, 1.0, 0.8);
        let base = fresh.replace("\"size\": 512", "\"size\": 1024");
        let problems = gate_sched(&fresh, &base, 25.0, 10.0);
        assert!(problems.iter().any(|p| p.contains("config drift")), "{problems:?}");
    }

    fn osed_json(allocs: u64, ratio: f64, installed: bool) -> String {
        format!(
            "{{\n  \"bench\": \"bench-osed\",\n  \"sigma\": 4,\n  \"runs\": 3,\n  \
             \"allocator_installed\": {installed},\n  \"rows\": [\n    \
             {{\"size\": 1024, \"similarity\": 0.99, \"distance\": 20, \
             \"osed_millis\": 0.4, \"allocs\": 9, \"ratio_vs_best_grid\": 0.01000}},\n    \
             {{\"size\": 4096, \"similarity\": 0.99, \"distance\": 80, \
             \"osed_millis\": 1.0, \"allocs\": {allocs}, \
             \"ratio_vs_best_grid\": {ratio:.5}}},\n    \
             {{\"size\": 4096, \"similarity\": 0.999, \"distance\": 8, \
             \"osed_millis\": 0.9, \"allocs\": 999, \"ratio_vs_best_grid\": 0.90000}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn gate_osed_gates_the_largest_99_percent_row_only() {
        let base = osed_json(12, 0.05, true);
        assert!(gate_osed(&base, &base, 25.0, 10.0).is_empty());
        // The 0.999 row's terrible ratio and alloc count never gate.
        let problems = gate_osed(&osed_json(20, 0.05, true), &base, 25.0, 10.0);
        assert!(
            problems.iter().any(|p| p.contains("allocs at size 4096 sim 0.99")),
            "{problems:?}"
        );
        let problems = gate_osed(&osed_json(12, 0.08, true), &base, 25.0, 10.0);
        assert!(problems.iter().any(|p| p.contains("ratio at size 4096 sim 0.99")), "{problems:?}");
    }

    #[test]
    fn gate_osed_fails_outright_past_the_five_x_floor() {
        // Doctoring the baseline to match cannot save a ratio above the
        // absolute ceiling: the 5× claim is part of the contract.
        let slow = osed_json(12, 0.3, true);
        let problems = gate_osed(&slow, &slow, 25.0, 10.0);
        assert!(problems.iter().any(|p| p.contains("no longer ≥ 5× faster")), "{problems:?}");
    }

    #[test]
    fn gate_osed_requires_instrumented_allocator_and_matching_config() {
        let good = osed_json(12, 0.05, true);
        let problems = gate_osed(&osed_json(12, 0.05, false), &good, 25.0, 10.0);
        assert!(problems.iter().any(|p| p.contains("allocator_installed")), "{problems:?}");
        let drifted = good.replace("\"sigma\": 4", "\"sigma\": 26");
        let problems = gate_osed(&drifted, &good, 25.0, 10.0);
        assert!(problems.iter().any(|p| p.contains("config drift: sigma")), "{problems:?}");
        let resized = good.replace("\"size\": 4096, \"similarity\": 0.99,", "");
        let problems = gate_osed(&resized, &good, 25.0, 10.0);
        assert!(problems.iter().any(|p| p.contains("largest 99%-similarity row")), "{problems:?}");
    }
}
