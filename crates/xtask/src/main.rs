//! Workspace automation (`cargo xtask <command>`), dependency-free.
//!
//! * `lint` — the concurrency audit: every `unsafe` site carries a
//!   `// SAFETY:` justification (or `# Safety` doc for declarations),
//!   every `Ordering::Relaxed` carries an `// ORDERING:` note, library
//!   code does not `unwrap()`/`expect()` without a `// PANIC:`
//!   justification (lock-poisoning unwraps are auto-allowed), the
//!   metrics counters stick to their ordering allowlist, and every crate
//!   containing `unsafe` denies `unsafe_op_in_unsafe_fn`.
//! * `model-check` — builds the workspace with `--cfg slcs_model_check`
//!   (swapping the sync facades to the instrumented shim-loom
//!   primitives) and runs the model-check harnesses, plus the plain-mode
//!   regression models. See docs/SAFETY.md.
//! * `trace-check FILE` — validates a Chrome-tracing JSON emitted by
//!   `slcs trace` / the `--trace` bench flags: structural JSON sanity
//!   plus presence of the three instrumentation layers (an
//!   `engine.request` span, a `pool.job` span, a `wavefront.diag`
//!   span). CI runs it against a traced quick benchmark.
//!
//! The lint is a line-based scan with a small lexer that tracks strings,
//! char literals, nested block comments and `#[cfg(test)]` regions — not
//! a full parser, but precise enough to audit this workspace with zero
//! false positives, and it fails *loud* (a violation lists file:line and
//! the rule).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("model-check") => model_check(&args[1..]),
        Some("trace-check") => trace_check(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint | model-check [--bound N] [--schedules N] [--seed N] \
                 | trace-check FILE>"
            );
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------
// trace-check: validate an emitted Chrome-tracing JSON
// ---------------------------------------------------------------------

/// Span names that prove all three instrumented layers made it into a
/// traced benchmark run: the engine request lifecycle, the executor
/// pool, and the wavefront drivers.
const REQUIRED_SPANS: &[&str] = &["engine.request", "pool.job", "wavefront.diag"];

fn trace_check(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("trace-check: usage: cargo xtask trace-check <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("trace-check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut problems = Vec::new();
    let t = text.trim();
    if !t.starts_with("{\"traceEvents\":[") {
        problems.push("missing `{\"traceEvents\":[` header".to_string());
    }
    if !t.ends_with('}') {
        problems.push("does not end with `}`".to_string());
    }
    // Structural sanity without a JSON parser: braces and brackets must
    // balance outside string literals and never go negative.
    let (mut braces, mut brackets) = (0i64, 0i64);
    let mut in_str = false;
    let mut chars = t.chars();
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    let _ = chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => braces += 1,
            '}' => braces -= 1,
            '[' => brackets += 1,
            ']' => brackets -= 1,
            _ => {}
        }
        if braces < 0 || brackets < 0 {
            problems.push("unbalanced braces/brackets (closed before opened)".to_string());
            break;
        }
    }
    if in_str {
        problems.push("unterminated string literal".to_string());
    }
    if braces != 0 || brackets != 0 {
        problems.push(format!("unbalanced nesting (braces {braces:+}, brackets {brackets:+})"));
    }
    for name in REQUIRED_SPANS {
        if !t.contains(&format!("\"name\":\"{name}\"")) {
            problems.push(format!("no `{name}` event — that layer is missing from the trace"));
        }
    }
    let count = |needle: &str| t.matches(needle).count();
    let (begins, ends) = (count("\"ph\":\"B\""), count("\"ph\":\"E\""));
    if problems.is_empty() {
        println!(
            "trace-check: {path} ok — {begins} span begins / {ends} ends, \
             {} instants, {} counter samples; all {} required layers present",
            count("\"ph\":\"i\""),
            count("\"ph\":\"C\""),
            REQUIRED_SPANS.len(),
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("trace-check: {path}: {p}");
        }
        eprintln!("trace-check: {} problem(s)", problems.len());
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------
// model-check runner
// ---------------------------------------------------------------------

fn model_check(args: &[String]) -> ExitCode {
    let mut bound: Option<String> = None;
    let mut schedules: Option<String> = None;
    let mut seed: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut grab = |slot: &mut Option<String>| match it.next() {
            Some(v) => {
                *slot = Some(v.clone());
                true
            }
            None => false,
        };
        let ok = match arg.as_str() {
            "--bound" => grab(&mut bound),
            "--schedules" => grab(&mut schedules),
            "--seed" => grab(&mut seed),
            _ => false,
        };
        if !ok {
            eprintln!("model-check: bad argument {arg:?}");
            return ExitCode::FAILURE;
        }
    }

    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("slcs_model_check") {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg slcs_model_check");
    }

    let stages: &[(&str, &[&str], bool)] = &[
        // (label, cargo args, needs the model-check cfg)
        ("checker self-tests", &["test", "-p", "shim-loom", "--lib", "-q"], false),
        ("protocol regression models", &["test", "--test", "model_check", "-q"], false),
        (
            "pool/team harnesses (instrumented build)",
            &["test", "-p", "rayon", "--test", "model", "--", "--nocapture"],
            true,
        ),
        (
            "engine queue harnesses (instrumented build)",
            &["test", "-p", "slcs-engine", "--lib", "model_", "--", "--nocapture"],
            true,
        ),
    ];

    for (label, cargo_args, instrumented) in stages {
        println!("==> model-check: {label}");
        let mut cmd = Command::new("cargo");
        cmd.args(*cargo_args);
        if *instrumented {
            cmd.env("RUSTFLAGS", &rustflags);
        }
        if let Some(b) = &bound {
            cmd.env("SLCS_MODEL_PREEMPTIONS", b);
        }
        if let Some(s) = &schedules {
            cmd.env("SLCS_MODEL_SCHEDULES", s);
        }
        if let Some(s) = &seed {
            cmd.env("SLCS_MODEL_SEED", s);
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("model-check: {label} failed ({status})");
                return ExitCode::FAILURE;
            }
            Err(err) => {
                eprintln!("model-check: cannot run cargo: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("model-check: all stages green");
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------
// lint: file collection
// ---------------------------------------------------------------------

/// Crates under audit: everything first-party plus the vendored crates
/// that hold scheduler or lock-free code. The other vendored shims
/// (rand, proptest, criterion) mirror external APIs and hold no
/// concurrency code; `xtask` itself is a dev tool, not library code.
const AUDIT_ROOTS: &[&str] = &["crates", "vendor/rayon", "vendor/shim-loom", "vendor/shim-trace"];
const SKIP_DIRS: &[&str] = &["crates/xtask", "target"];

fn lint() -> ExitCode {
    let repo = repo_root();
    let mut files = Vec::new();
    for root in AUDIT_ROOTS {
        collect_rs_files(&repo, &repo.join(root), &mut files);
    }
    files.sort();

    let mut violations: Vec<String> = Vec::new();
    let mut stats = Stats::default();
    // crate src dir → (has unsafe, lib.rs denies unsafe_op_in_unsafe_fn)
    let mut crates: std::collections::BTreeMap<PathBuf, (bool, bool)> = Default::default();

    for path in &files {
        let rel = path.strip_prefix(&repo).unwrap_or(path).to_path_buf();
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(err) => {
                violations.push(format!("{}: unreadable: {err}", rel.display()));
                continue;
            }
        };
        let lines = lex_file(&source);
        audit_file(&rel, &lines, &mut violations, &mut stats);

        if let Some(src_dir) = crate_src_dir(&rel) {
            let entry = crates.entry(src_dir).or_insert((false, false));
            let file_has_unsafe = lines.iter().enumerate().any(|(i, l)| {
                !l.in_test
                    && !is_attr(&l.code)
                    && has_word(&l.code, "unsafe")
                    && !lines[i].code.trim().is_empty()
            });
            entry.0 |= file_has_unsafe;
            if rel.file_name().is_some_and(|n| n == "lib.rs") {
                entry.1 = source.contains("#![deny(unsafe_op_in_unsafe_fn)]");
            }
        }
    }

    for (src_dir, (has_unsafe, denies)) in &crates {
        if *has_unsafe && !denies {
            violations.push(format!(
                "{}/lib.rs: crate contains unsafe code but does not declare \
                 #![deny(unsafe_op_in_unsafe_fn)]",
                src_dir.display()
            ));
        }
    }

    if violations.is_empty() {
        println!(
            "lint clean: {} files; {} unsafe sites justified, {} Relaxed orderings annotated, \
             {} panic sites allowed ({} via PANIC:, rest lock-poisoning)",
            files.len(),
            stats.unsafe_sites,
            stats.relaxed_sites,
            stats.panic_allowed + stats.panic_justified,
            stats.panic_justified,
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("lint: {v}");
        }
        eprintln!("lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn repo_root() -> PathBuf {
    // cargo runs xtask from the workspace root via the alias; fall back
    // to walking up to the directory holding the workspace Cargo.toml.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn collect_rs_files(repo: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path.strip_prefix(repo).unwrap_or(&path);
        if SKIP_DIRS.iter().any(|s| rel == Path::new(s)) {
            continue;
        }
        if path.is_dir() {
            // Only library/binary sources are audited; tests/ and
            // benches/ trees are exercised code, not exercised-by code.
            let name = entry.file_name();
            if dir.parent().is_some_and(|p| p.ends_with("crates") || p.ends_with("vendor"))
                && (name == "tests" || name == "benches")
            {
                continue;
            }
            collect_rs_files(repo, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn crate_src_dir(rel: &Path) -> Option<PathBuf> {
    let mut dir = rel.parent()?;
    loop {
        if dir.file_name().is_some_and(|n| n == "src") {
            return Some(dir.to_path_buf());
        }
        dir = dir.parent()?;
    }
}

// ---------------------------------------------------------------------
// lint: the lexer
// ---------------------------------------------------------------------

/// One source line, split into its code text (string/char contents
/// blanked out) and its comment text, with test-region membership.
struct Line {
    code: String,
    comment: String,
    in_test: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum Lex {
    Code,
    /// Inside a `"…"` (escapes honored) — may span lines.
    Str,
    /// Inside an `r##"…"##` raw string with this many hashes.
    RawStr(u8),
    /// Inside a (nested) block comment at this depth.
    Block(u32),
}

fn lex_file(source: &str) -> Vec<Line> {
    let mut state = Lex::Code;
    let mut depth: i64 = 0; // brace depth of code
    let mut pending_test_attr = false;
    let mut test_region_base: Option<i64> = None;
    let mut out = Vec::new();

    for raw in source.lines() {
        let (code, comment, next_state) = lex_line(raw, state);
        state = next_state;

        let trimmed = code.trim();
        // `#[cfg(test)]` / `#[cfg(all(test, …))]` start a test region at
        // the next brace-opening item (a `;`-terminated item cancels).
        if trimmed.starts_with('#') && (code.contains("cfg(test") || code.contains("cfg(all(test"))
        {
            pending_test_attr = true;
        }

        // Depth reached by closing braces on this line; a `}` returning
        // to the region's base depth ends the test region.
        let mut close_min = i64::MAX;
        for ch in code.chars() {
            match ch {
                '{' => {
                    if pending_test_attr && test_region_base.is_none() {
                        test_region_base = Some(depth);
                        pending_test_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    close_min = close_min.min(depth);
                }
                _ => {}
            }
        }
        if pending_test_attr && !trimmed.starts_with('#') && trimmed.ends_with(';') {
            pending_test_attr = false;
        }

        let in_test = test_region_base.is_some() || pending_test_attr;
        if let Some(base) = test_region_base {
            if close_min <= base {
                test_region_base = None;
            }
        }
        out.push(Line { code, comment, in_test });
    }
    out
}

/// Splits one line into (code, comment) given the carry-over lexer
/// state; string/char contents become spaces in the code text.
fn lex_line(line: &str, mut state: Lex) -> (String, String, Lex) {
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match state {
            Lex::Block(d) => {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    state = if d > 1 { Lex::Block(d - 1) } else { Lex::Code };
                    i += 2;
                    continue;
                }
                if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    state = Lex::Block(d + 1);
                    i += 2;
                    continue;
                }
                comment.push(c);
                i += 1;
            }
            Lex::Str => {
                if c == '\\' {
                    i += 2; // escape (incl. \" and \\); lost at EOL is fine
                    continue;
                }
                if c == '"' {
                    state = Lex::Code;
                }
                code.push(' ');
                i += 1;
            }
            Lex::RawStr(h) => {
                if c == '"' {
                    let hashes = bytes[i + 1..].iter().take_while(|&&x| x == '#').count();
                    if hashes >= h as usize {
                        state = Lex::Code;
                        i += 1 + h as usize;
                        for _ in 0..=h {
                            code.push(' ');
                        }
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
            Lex::Code => {
                if c == '/' && bytes.get(i + 1) == Some(&'/') {
                    comment.extend(&bytes[i..]);
                    break;
                }
                if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    state = Lex::Block(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = Lex::Str;
                    code.push(' ');
                    i += 1;
                    continue;
                }
                // Raw (and byte) string openers: r"  r#"  br"  b"
                if (c == 'r' || c == 'b') && !prev_is_ident(&bytes, i) {
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let hashes = bytes[j..].iter().take_while(|&&x| x == '#').count();
                    if bytes.get(j + hashes) == Some(&'"')
                        && (hashes > 0 || bytes.get(j) == Some(&'"'))
                    {
                        state = if hashes > 0 { Lex::RawStr(hashes as u8) } else { Lex::Str };
                        for _ in i..=(j + hashes) {
                            code.push(' ');
                        }
                        i = j + hashes + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime: a literal closes within a
                    // few chars; a lifetime never has a closing quote.
                    if let Some(len) = char_literal_len(&bytes[i..]) {
                        for _ in 0..len {
                            code.push(' ');
                        }
                        i += len;
                        continue;
                    }
                }
                code.push(c);
                i += 1;
            }
        }
    }
    (code, comment, state)
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// Length of a char literal starting at `s[0] == '\''`, or `None` for a
/// lifetime.
fn char_literal_len(s: &[char]) -> Option<usize> {
    match s.get(1)? {
        '\\' => {
            // `'\n'`, `'\\'`, `'\u{…}'`, `'\x7f'`
            let close = s.iter().skip(2).position(|&c| c == '\'')?;
            Some(close + 3)
        }
        _ => (s.get(2) == Some(&'\'')).then_some(3),
    }
}

// ---------------------------------------------------------------------
// lint: the rules
// ---------------------------------------------------------------------

#[derive(Default)]
struct Stats {
    unsafe_sites: usize,
    relaxed_sites: usize,
    panic_allowed: usize,
    panic_justified: usize,
}

fn is_attr(code: &str) -> bool {
    let t = code.trim();
    t.starts_with("#[") || t.starts_with("#![")
}

fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok =
            code[after..].chars().next().is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// The contiguous comment/attribute block directly above line `i`,
/// concatenated (doc and plain comments both count).
fn justification_above(lines: &[Line], i: usize) -> String {
    let mut text = String::new();
    let mut j = i;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        let code_t = l.code.trim();
        if code_t.is_empty() && !l.comment.is_empty() {
            let _ = write!(text, " {}", l.comment);
        } else if is_attr(&l.code) {
            continue; // attributes sit between a comment and its item
        } else {
            break;
        }
    }
    text
}

/// Files whose atomics are, by design, nothing but independent
/// monotonic counters — rule 4 pins them to `Ordering::Relaxed` only,
/// so a "quick fix" cannot quietly smuggle cross-field consistency
/// assumptions into code documented not to have any.
const RELAXED_ONLY_FILES: &[&str] = &["crates/engine/src/metrics.rs", "vendor/rayon/src/stats.rs"];

fn audit_file(rel: &Path, lines: &[Line], violations: &mut Vec<String>, stats: &mut Stats) {
    let relaxed_only = RELAXED_ONLY_FILES.iter().any(|f| rel == Path::new(f) || rel.ends_with(f));
    let mut relaxed_run_justified: std::collections::HashSet<usize> = Default::default();
    let mut unsafe_run_justified: std::collections::HashSet<usize> = Default::default();

    for (i, line) in lines.iter().enumerate() {
        if line.in_test || line.code.trim().is_empty() {
            continue;
        }
        let here = format!("{}:{}", rel.display(), i + 1);
        let code = &line.code;
        let own_comment = &line.comment;

        // Rule 1 — unsafe needs SAFETY: (declarations may use `# Safety`).
        // `unsafe fn(` is a fn-pointer *type*, not an unsafe operation;
        // the unsafety lives at the call sites.
        let unsafe_code = code.replace("unsafe fn(", "");
        if !is_attr(code) && has_word(&unsafe_code, "unsafe") {
            stats.unsafe_sites += 1;
            let above = justification_above(lines, i);
            let is_decl = unsafe_code.contains("unsafe fn")
                || unsafe_code.contains("unsafe impl")
                || unsafe_code.contains("unsafe trait");
            // A justification covers an unbroken run of consecutive
            // unsafe lines (e.g. paired raw-slice reconstructions).
            let justified = own_comment.contains("SAFETY:")
                || above.contains("SAFETY:")
                || (is_decl && above.contains("# Safety"))
                || (i > 0
                    && has_word(&lines[i - 1].code.replace("unsafe fn(", ""), "unsafe")
                    && unsafe_run_justified.contains(&(i - 1)));
            if justified {
                unsafe_run_justified.insert(i);
            } else {
                violations.push(format!(
                    "{here}: unsafe without a `// SAFETY:` justification{}",
                    if is_decl { " (or a `# Safety` doc section)" } else { "" }
                ));
            }
        }

        // Rule 2 — Ordering::Relaxed needs ORDERING:. A note covers an
        // unbroken run of consecutive Relaxed lines (e.g. a snapshot
        // struct literal loading a dozen counters under one argument).
        if code.contains("Ordering::Relaxed") {
            stats.relaxed_sites += 1;
            let justified = own_comment.contains("ORDERING:")
                || justification_above(lines, i).contains("ORDERING:")
                || (i > 0
                    && lines[i - 1].code.contains("Ordering::Relaxed")
                    && relaxed_run_justified.contains(&(i - 1)));
            if justified {
                relaxed_run_justified.insert(i);
            } else {
                violations
                    .push(format!("{here}: Ordering::Relaxed without an `// ORDERING:` note"));
            }
        }

        // Rule 3 — no unwrap/expect in library code, unless it is a
        // lock-poisoning unwrap or carries a PANIC: justification.
        for needle in [".unwrap()", ".expect("] {
            let mut start = 0;
            while let Some(pos) = code[start..].find(needle) {
                let at = start + pos;
                start = at + needle.len();
                let chain = code[..at].trim_end();
                // Lock-poisoning results: `.lock()`, RwLock guards, and
                // `Condvar::wait{,_timeout}(…)` — the final call before
                // the unwrap is a wait when no further `.` follows it.
                let is_poisoning_chain = |chain: &str| {
                    [".lock()", ".read()", ".write()"].iter().any(|p| chain.ends_with(p))
                        || (chain.ends_with(')')
                            && chain.rfind(".wait").is_some_and(|p| {
                                let rest = &chain[p + ".wait".len()..];
                                // Condvar waits always pass the guard;
                                // an argument-less `.wait()` is some
                                // other API and stays flagged.
                                !rest.contains('.') && !rest.contains("()")
                            }))
                };
                let poisoning = is_poisoning_chain(chain)
                    || (chain.is_empty()
                        && i > 0
                        && is_poisoning_chain(lines[i - 1].code.trim_end()));
                if poisoning {
                    stats.panic_allowed += 1;
                    continue;
                }
                if own_comment.contains("PANIC:")
                    || justification_above(lines, i).contains("PANIC:")
                {
                    stats.panic_justified += 1;
                    continue;
                }
                violations.push(format!(
                    "{here}: `{needle}…` in library code without a `// PANIC:` justification"
                ));
            }
        }

        // Rule 4 — counter-only files use only the allowlisted ordering.
        if relaxed_only {
            let mut start = 0;
            while let Some(pos) = code[start..].find("Ordering::") {
                let at = start + pos + "Ordering::".len();
                let variant: String =
                    code[at..].chars().take_while(|c| c.is_alphanumeric()).collect();
                start = at;
                if variant != "Relaxed" {
                    violations.push(format!(
                        "{here}: this file must use Ordering::Relaxed only \
                         (independent monotonic counters, no cross-field consistency), \
                         found {variant}"
                    ));
                }
            }
        }
    }
}
