//! Classical LCS baselines: everything the paper compares against.
//!
//! * [`prefix_rowmajor`] — linear-space Wagner–Fischer DP (the paper's
//!   `prefix_rowmajor`).
//! * [`prefix_antidiag`] / [`par_prefix_antidiag`] — anti-diagonal,
//!   branchless, optionally thread-parallel DP (`prefix_antidiag_SIMD`).
//! * [`hirschberg_lcs`] — linear-space LCS *string* recovery.
//! * [`cipr_lcs`] / [`hyyro_lcs`] — the adder-based bit-parallel LCS
//!   algorithms of Crochemore et al. (2001) and Hyyrö (2004), the
//!   related work contrasted with the paper's carry-free algorithm.
//! * [`lcs_table`], [`lcs_traceback`], [`edit_distance`],
//!   [`is_subsequence`] — supporting DP utilities.

pub mod antidiag;
pub mod bitvector;
pub mod dp;
pub mod hirschberg;

pub use antidiag::{par_prefix_antidiag, prefix_antidiag};
pub use bitvector::{cipr_lcs, hyyro_lcs, MatchMasks};
pub use dp::{edit_distance, is_subsequence, lcs_table, lcs_traceback, prefix_rowmajor};
pub use hirschberg::hirschberg_lcs;
