//! Anti-diagonal prefix LCS (the paper's `prefix_antidiag_SIMD`).
//!
//! The standard LCS DP iterated in anti-diagonals: cell `(i,j)` needs
//! `(i−1,j)`, `(i,j−1)` **and** `(i−1,j−1)`, so three diagonals are live
//! (one more dependency than combing — the data-locality disadvantage the
//! paper calls out in §5.2). The inner loop is branchless `max`
//! arithmetic, auto-vectorizable, with an optional rayon split per
//! diagonal.

use rayon::prelude::*;

/// Storage for the three rolling anti-diagonals. `diag[k]` holds
/// `D(i, j)` for cells with `i + j = d`, indexed by `i`.
struct Diags {
    prev2: Vec<u32>,
    prev: Vec<u32>,
    cur: Vec<u32>,
}

/// Sequential anti-diagonal prefix LCS, branchless inner loop.
pub fn prefix_antidiag<T: Eq + Sync>(a: &[T], b: &[T]) -> usize {
    antidiag_impl(a, b, false)
}

/// Thread-parallel anti-diagonal prefix LCS on the current rayon pool
/// (one barrier per diagonal).
pub fn par_prefix_antidiag<T: Eq + Sync>(a: &[T], b: &[T]) -> usize {
    antidiag_impl(a, b, true)
}

fn antidiag_impl<T: Eq + Sync>(a: &[T], b: &[T], parallel: bool) -> usize {
    let m = a.len();
    let n = b.len();
    if m == 0 || n == 0 {
        return 0;
    }
    // Diagonal d covers cells (i, j = d − i) with
    // i ∈ [max(0, d−n+1), min(m−1, d)]. We index the rolling arrays by i.
    let mut d3 =
        Diags { prev2: vec![0u32; m + 1], prev: vec![0u32; m + 1], cur: vec![0u32; m + 1] };
    for d in 0..(m + n - 1) {
        let i_lo = d.saturating_sub(n - 1);
        let i_hi = (m - 1).min(d);
        {
            let Diags { prev2, prev, cur } = &mut d3;
            let body = |i: usize, slot: &mut u32| {
                let j = d - i;
                // D(i−1, j): diagonal d−1 at index i−1 (0 at borders)
                let up = if i > 0 { prev[i - 1] } else { 0 };
                // D(i, j−1): diagonal d−1 at index i
                let left = if j > 0 { prev[i] } else { 0 };
                // D(i−1, j−1): diagonal d−2 at index i−1
                let diag = if i > 0 && j > 0 { prev2[i - 1] } else { 0 };
                let mval = diag + u32::from(a[i] == b[j]);
                *slot = mval.max(up).max(left);
            };
            if parallel {
                cur[i_lo..=i_hi]
                    .par_iter_mut()
                    .with_min_len(8 * 1024)
                    .enumerate()
                    .for_each(|(k, slot)| body(i_lo + k, slot));
            } else {
                for (k, slot) in cur[i_lo..=i_hi].iter_mut().enumerate() {
                    body(i_lo + k, slot);
                }
            }
        }
        let Diags { prev2, prev, cur } = &mut d3;
        std::mem::swap(prev2, prev);
        std::mem::swap(prev, cur);
    }
    // The final cell (m−1, n−1) lives on the last diagonal, now in `prev`.
    d3.prev[m - 1] as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::prefix_rowmajor;
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xAD1A)
    }

    #[test]
    fn matches_rowmajor_on_random_inputs() {
        let mut rng = rng();
        for _ in 0..40 {
            let m = rng.random_range(0..50);
            let n = rng.random_range(0..50);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..4)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..4)).collect();
            assert_eq!(prefix_antidiag(&a, &b), prefix_rowmajor(&a, &b), "a={a:?} b={b:?}");
            assert_eq!(par_prefix_antidiag(&a, &b), prefix_rowmajor(&a, &b));
        }
    }

    #[test]
    fn degenerate_shapes() {
        assert_eq!(prefix_antidiag(b"a", b"a"), 1);
        assert_eq!(prefix_antidiag(b"a", b"b"), 0);
        assert_eq!(prefix_antidiag(b"abc", b"c"), 1);
        assert_eq!(prefix_antidiag(b"c", b"abc"), 1);
        assert_eq!(prefix_antidiag(b"", b"abc"), 0);
    }
}
