//! Hirschberg's linear-space LCS recovery (Hirschberg 1975) — a classical
//! divide-and-conquer baseline referenced in §2 of the paper, and the tool
//! the examples use to *display* an optimal alignment once the semi-local
//! machinery has located the interesting window.

/// Recovers one LCS string of `a` and `b` in O(mn) time and O(m+n)
/// memory.
///
/// # Examples
///
/// ```
/// use slcs_baselines::hirschberg_lcs;
/// let lcs = hirschberg_lcs(b"nematode knowledge", b"empty bottle");
/// assert_eq!(lcs, b"emt ole".to_vec());
/// ```
pub fn hirschberg_lcs<T: Eq + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::new();
    rec(a, b, &mut out);
    out
}

/// Forward DP row: `row[j] = LCS(a, b[..j])` for all `j`.
fn dp_row<T: Eq>(a: &[T], b: &[T]) -> Vec<u32> {
    let n = b.len();
    let mut prev = vec![0u32; n + 1];
    let mut cur = vec![0u32; n + 1];
    for ac in a {
        cur[0] = 0;
        let mut diag = prev[0];
        for (j, bc) in b.iter().enumerate() {
            let up = prev[j + 1];
            cur[j + 1] = if ac == bc { diag + 1 } else { up.max(cur[j]) };
            diag = up;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

fn rec<T: Eq + Clone>(a: &[T], b: &[T], out: &mut Vec<T>) {
    let m = a.len();
    if m == 0 || b.is_empty() {
        return;
    }
    if m == 1 {
        if b.contains(&a[0]) {
            out.push(a[0].clone());
        }
        return;
    }
    let mid = m / 2;
    let (a_top, a_bot) = a.split_at(mid);
    // score(j) = LCS(a_top, b[..j]) + LCS(a_bot, b[j..]) is maximised at
    // the optimal split point of b.
    let fwd = dp_row(a_top, b);
    let rev_a: Vec<T> = a_bot.iter().rev().cloned().collect();
    let rev_b: Vec<T> = b.iter().rev().cloned().collect();
    let bwd = dp_row(&rev_a, &rev_b);
    let n = b.len();
    // PANIC: 0..=n is never empty.
    let split = (0..=n).max_by_key(|&j| fwd[j] + bwd[n - j]).expect("non-empty range");
    rec(a_top, &b[..split], out);
    rec(a_bot, &b[split..], out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{is_subsequence, lcs_traceback, prefix_rowmajor};
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x412C)
    }

    #[test]
    fn recovers_optimal_length_subsequences() {
        let mut rng = rng();
        for _ in 0..30 {
            let m = rng.random_range(0..40);
            let n = rng.random_range(0..40);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(b'a'..b'e')).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(b'a'..b'e')).collect();
            let lcs = hirschberg_lcs(&a, &b);
            assert_eq!(lcs.len(), prefix_rowmajor(&a, &b), "a={a:?} b={b:?}");
            assert!(is_subsequence(&lcs, &a));
            assert!(is_subsequence(&lcs, &b));
        }
    }

    #[test]
    fn agrees_in_length_with_quadratic_traceback() {
        let a = b"the quick brown fox jumps over the lazy dog";
        let b = b"pack my box with five dozen liquor jugs";
        assert_eq!(hirschberg_lcs(a, b).len(), lcs_traceback(a, b).len());
    }

    #[test]
    fn identical_strings_recover_themselves() {
        let a = b"abracadabra";
        assert_eq!(hirschberg_lcs(a, a), a.to_vec());
    }

    #[test]
    fn disjoint_alphabets_recover_empty() {
        assert_eq!(hirschberg_lcs(b"aaa", b"bbb"), Vec::<u8>::new());
    }
}
