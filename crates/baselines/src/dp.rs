//! Classical dynamic-programming LCS baselines.
//!
//! `prefix_rowmajor` is the paper's name for the linear-space
//! Wagner–Fischer sweep — the yardstick every semi-local algorithm is
//! compared against in Figure 5.

/// Linear-space LCS score, row-major order (the paper's
/// `prefix_rowmajor`). O(mn) time, O(n) memory.
///
/// # Examples
///
/// ```
/// use slcs_baselines::prefix_rowmajor;
/// assert_eq!(prefix_rowmajor(b"XMJYAUZ", b"MZJAWXU"), 4);
/// ```
pub fn prefix_rowmajor<T: Eq>(a: &[T], b: &[T]) -> usize {
    let n = b.len();
    let mut prev = vec![0u32; n + 1];
    let mut cur = vec![0u32; n + 1];
    for ac in a {
        cur[0] = 0;
        let mut diag = prev[0];
        for (j, bc) in b.iter().enumerate() {
            let up = prev[j + 1];
            let val = if ac == bc { diag + 1 } else { up.max(cur[j]) };
            cur[j + 1] = val;
            diag = up;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n] as usize
}

/// Full O(mn)-memory LCS table; `table[i][j] = LCS(a[..i], b[..j])`,
/// row-major with stride `n + 1`. Building block for traceback-based
/// tools and tests.
pub fn lcs_table<T: Eq>(a: &[T], b: &[T]) -> Vec<u32> {
    let (m, n) = (a.len(), b.len());
    let stride = n + 1;
    let mut t = vec![0u32; (m + 1) * stride];
    for (i, ac) in a.iter().enumerate() {
        for (j, bc) in b.iter().enumerate() {
            t[(i + 1) * stride + j + 1] = if ac == bc {
                t[i * stride + j] + 1
            } else {
                t[i * stride + j + 1].max(t[(i + 1) * stride + j])
            };
        }
    }
    t
}

/// One LCS string (not just its length), recovered from the full table.
/// O(mn) memory; see [`crate::hirschberg::hirschberg_lcs`] for the
/// linear-space version.
pub fn lcs_traceback<T: Eq + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    let (m, n) = (a.len(), b.len());
    let stride = n + 1;
    let t = lcs_table(a, b);
    let mut out = Vec::new();
    let (mut i, mut j) = (m, n);
    while i > 0 && j > 0 {
        if a[i - 1] == b[j - 1] {
            out.push(a[i - 1].clone());
            i -= 1;
            j -= 1;
        } else if t[(i - 1) * stride + j] >= t[i * stride + j - 1] {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    out.reverse();
    out
}

/// Levenshtein edit distance (unit costs), linear space. Included because
/// semi-local comparison generalises approximate matching by edit
/// distance (§2 of the paper); used by the genome example.
pub fn edit_distance<T: Eq>(a: &[T], b: &[T]) -> usize {
    let n = b.len();
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut cur = vec![0u32; n + 1];
    for (i, ac) in a.iter().enumerate() {
        cur[0] = i as u32 + 1;
        for (j, bc) in b.iter().enumerate() {
            let sub = prev[j] + u32::from(ac != bc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n] as usize
}

/// `true` iff `sub` is a subsequence of `sup` — a cheap validity check
/// for recovered LCS strings.
pub fn is_subsequence<T: Eq>(sub: &[T], sup: &[T]) -> bool {
    let mut it = sup.iter();
    sub.iter().all(|s| it.any(|x| x == s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowmajor_matches_known_values() {
        assert_eq!(prefix_rowmajor(b"ABCBDAB", b"BDCABA"), 4);
        assert_eq!(prefix_rowmajor(b"", b""), 0);
        assert_eq!(prefix_rowmajor(b"A", b"A"), 1);
        assert_eq!(prefix_rowmajor(b"AAAA", b"AAAA"), 4);
        assert_eq!(prefix_rowmajor(b"ABC", b"DEF"), 0);
    }

    #[test]
    fn traceback_is_a_common_subsequence_of_right_length() {
        let a = b"pineapple";
        let b = b"palindrome";
        let lcs = lcs_traceback(a, b);
        assert_eq!(lcs.len(), prefix_rowmajor(a, b));
        assert!(is_subsequence(&lcs, a));
        assert!(is_subsequence(&lcs, b));
    }

    #[test]
    fn edit_distance_known_values() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"", b"abc"), 3);
        assert_eq!(edit_distance(b"abc", b"abc"), 0);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
    }

    #[test]
    fn edit_distance_lcs_relation_for_binary() {
        // For unit-cost edit distance: d >= (m+n) - 2*LCS, with equality
        // when substitutions are never beneficial… not in general, but
        // d <= m + n - 2*LCS always holds (delete+insert around the LCS).
        let a = b"10110100";
        let b = b"00101101";
        let d = edit_distance(a, b);
        let l = prefix_rowmajor(a, b);
        assert!(d <= a.len() + b.len() - 2 * l);
    }

    #[test]
    fn is_subsequence_edges() {
        assert!(is_subsequence(b"", b""));
        assert!(is_subsequence(b"", b"abc"));
        assert!(!is_subsequence(b"a", b""));
        assert!(is_subsequence(b"ace", b"abcde"));
        assert!(!is_subsequence(b"aec", b"abcde"));
    }
}
