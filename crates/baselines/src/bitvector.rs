//! Adder-based bit-parallel LCS baselines: Crochemore–Iliopoulos–
//! Pinzon–Reid (2001) and Hyyrö (2004).
//!
//! Both iterate over the grid in **vertical tiles** (one column of the DP
//! per input character of `b`) and encode the DP column as a difference
//! bit-vector `V` (bit `i` set ⇔ the column value does *not* step between
//! rows `i` and `i+1`). A column update is a handful of Boolean
//! operations plus one **integer addition**, whose carry chain is what
//! propagates a match across the tile. These are exactly the
//! "existing bit-parallel LCS algorithms" the paper's carry-free
//! anti-diagonal algorithm (crate `slcs-bitpar`) is contrasted with.
//!
//! Update rule (derived from the column DP; both published variants are
//! algebraically identical because `U = V & M ⊆ V` implies
//! `V − U = V & !M`):
//!
//! ```text
//! U  = V & M[c]             M[c]: match mask of column character c
//! V' = (V + U) | (V & !M[c])        (CIPR form)
//! V' = (V + U) | (V − U)            (Hyyrö form)
//! ```
//!
//! The LCS score is the number of zero bits of `V` in positions `0..m`.

const W: usize = 64;

/// Match masks `M[c]` for a byte string `a`: bit `i` of `M[c]` is set iff
/// `a[i] == c`. Sparse over the 256 byte values.
pub struct MatchMasks {
    words: usize,
    masks: Vec<Vec<u64>>, // indexed by byte value; empty ⇒ no occurrences
}

impl MatchMasks {
    /// Builds the masks in O(m + σ) where σ is the alphabet size.
    pub fn new(a: &[u8]) -> Self {
        let words = a.len().div_ceil(W);
        let mut masks: Vec<Vec<u64>> = vec![Vec::new(); 256];
        for (i, &c) in a.iter().enumerate() {
            let m = &mut masks[c as usize];
            if m.is_empty() {
                m.resize(words, 0);
            }
            m[i / W] |= 1u64 << (i % W);
        }
        MatchMasks { words, masks }
    }

    #[inline]
    fn get(&self, c: u8) -> Option<&[u64]> {
        let m = &self.masks[c as usize];
        (!m.is_empty()).then_some(m.as_slice())
    }
}

/// CIPR (2001) bit-parallel LCS score: `O(⌈m/w⌉ · n)` word operations,
/// one adder carry chain per column.
pub fn cipr_lcs(a: &[u8], b: &[u8]) -> usize {
    bitvector_lcs(a, b, false)
}

/// Hyyrö (2004) bit-parallel LCS score — the `(V + U) | (V − U)` form,
/// with an explicit borrow chain instead of the mask re-use.
pub fn hyyro_lcs(a: &[u8], b: &[u8]) -> usize {
    bitvector_lcs(a, b, true)
}

fn bitvector_lcs(a: &[u8], b: &[u8], subtract_form: bool) -> usize {
    let m = a.len();
    if m == 0 || b.is_empty() {
        return 0;
    }
    let masks = MatchMasks::new(a);
    let words = masks.words;
    let mut v = vec![u64::MAX; words];
    let mut u = vec![0u64; words];
    for &c in b {
        let Some(mask) = masks.get(c) else {
            continue; // no match anywhere in a: the column is unchanged
        };
        for k in 0..words {
            u[k] = v[k] & mask[k];
        }
        if subtract_form {
            // V' = (V + U) | (V − U), multiword add and subtract
            let mut carry = false;
            let mut borrow = false;
            for k in 0..words {
                let (s1, c1) = v[k].overflowing_add(u[k]);
                let (sum, c2) = s1.overflowing_add(carry as u64);
                let (d1, b1) = v[k].overflowing_sub(u[k]);
                let (diff, b2) = d1.overflowing_sub(borrow as u64);
                v[k] = sum | diff;
                carry = c1 | c2;
                borrow = b1 | b2;
            }
        } else {
            // V' = (V + U) | (V & !M)
            let mut carry = false;
            for k in 0..words {
                let (s1, c1) = v[k].overflowing_add(u[k]);
                let (sum, c2) = s1.overflowing_add(carry as u64);
                v[k] = sum | (v[k] & !mask[k]);
                carry = c1 | c2;
            }
        }
    }
    // LCS = number of zero bits among positions 0..m.
    let mut zeros = 0usize;
    for (k, &word) in v.iter().enumerate() {
        let bits_here = if (k + 1) * W <= m { W } else { m - k * W };
        let mask = if bits_here == W { u64::MAX } else { (1u64 << bits_here) - 1 };
        zeros += bits_here - (word & mask).count_ones() as usize;
    }
    zeros
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::prefix_rowmajor;
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xB17)
    }

    #[test]
    fn both_variants_match_dp_on_random_strings() {
        let mut rng = rng();
        for sigma in [2u8, 4, 26] {
            for _ in 0..20 {
                let m = rng.random_range(0..200);
                let n = rng.random_range(0..200);
                let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..sigma)).collect();
                let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..sigma)).collect();
                let want = prefix_rowmajor(&a, &b);
                assert_eq!(cipr_lcs(&a, &b), want, "cipr σ={sigma} a={a:?} b={b:?}");
                assert_eq!(hyyro_lcs(&a, &b), want, "hyyro σ={sigma}");
            }
        }
    }

    #[test]
    fn multiword_carry_crosses_word_boundaries() {
        // A long run of matches forces the adder carry to propagate
        // through several 64-bit words.
        let a = vec![b'x'; 200];
        let b = vec![b'x'; 200];
        assert_eq!(cipr_lcs(&a, &b), 200);
        assert_eq!(hyyro_lcs(&a, &b), 200);
    }

    #[test]
    fn absent_characters_short_circuit() {
        let a = b"aaaa";
        let b = b"bbbbbbbb";
        assert_eq!(cipr_lcs(a, b), 0);
        assert_eq!(hyyro_lcs(a, b), 0);
    }

    #[test]
    fn exact_word_length_boundaries() {
        let mut rng = rng();
        for m in [63usize, 64, 65, 127, 128, 129] {
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..2)).collect();
            let b: Vec<u8> = (0..m).map(|_| rng.random_range(0..2)).collect();
            let want = prefix_rowmajor(&a, &b);
            assert_eq!(cipr_lcs(&a, &b), want, "m={m}");
            assert_eq!(hyyro_lcs(&a, &b), want, "m={m}");
        }
    }
}
