//! Shared infrastructure for the figure-reproduction harness (`repro`
//! binary) and the criterion micro-benchmarks: timing, thread pools,
//! table/CSV output, and the paper's workloads with fixed seeds.

use std::time::{Duration, Instant};

pub mod ablations;
pub mod figures;

/// Benchmark scale, selecting input sizes.
///
/// * `Quick` — smoke-test sizes (seconds total), used by `cargo bench`
///   smoke runs and CI;
/// * `Default` — minutes total on one core, preserves every comparison's
///   shape;
/// * `Full` — the paper's sizes (strings up to 10⁶, permutations up to
///   10⁷); hours on one core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Default,
    Full,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Picks the size list for this scale.
    pub fn pick<T: Clone>(&self, quick: &[T], default: &[T], full: &[T]) -> Vec<T> {
        match self {
            Scale::Quick => quick.to_vec(),
            Scale::Default => default.to_vec(),
            Scale::Full => full.to_vec(),
        }
    }
}

/// Median wall-clock time of `runs` executions after one warmup, with a
/// black-box guard on the result.
pub fn measure<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut out = Vec::with_capacity(runs);
    std::hint::black_box(f()); // warmup
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        out.push(t.elapsed());
    }
    out.sort();
    out[out.len() / 2]
}

/// One measurement, for expensive configurations.
pub fn measure_once<R>(mut f: impl FnMut() -> R) -> Duration {
    let t = Instant::now();
    std::hint::black_box(f());
    t.elapsed()
}

/// Runs `f` inside a rayon pool of exactly `threads` workers.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        // PANIC: the builder is configured with a valid thread count; build cannot fail.
        .expect("pool construction")
        .install(f)
}

/// Thread counts to sweep, bounded by scale (the container has few
/// cores, but the sweep still exercises the code paths; EXPERIMENTS.md
/// documents the 1-vCPU caveat).
pub fn thread_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 2],
        Scale::Default => vec![1, 2, 4],
        Scale::Full => vec![1, 2, 4, 8, 16],
    }
}

/// A result table that prints aligned to stdout and serializes to CSV.
pub struct Table {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Pretty-prints the table.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let header: Vec<String> =
            self.columns.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
        println!("  {}", header.join("  "));
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            println!("  {}", line.join("  "));
        }
    }

    /// Writes `results/<name>.csv` relative to the workspace root.
    pub fn write_csv(&self, name: &str) -> std::io::Result<()> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut text = self.columns.join(",") + "\n";
        for row in &self.rows {
            text.push_str(&row.join(","));
            text.push('\n');
        }
        std::fs::write(&path, text)?;
        println!("  [written {}]", path.display());
        Ok(())
    }
}

/// Formats a duration in engineering units with 3 significant figures.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.3}us", s * 1e6)
    }
}

/// Formats a speedup/ratio.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn measure_returns_positive_time() {
        let d = measure(3, || (0..10_000).sum::<u64>());
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn with_threads_runs_in_sized_pool() {
        let n = with_threads(2, rayon::current_num_threads);
        assert_eq!(n, 2);
    }

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.000us");
    }
}
