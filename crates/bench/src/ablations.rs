//! Ablation studies for the design choices DESIGN.md calls out — not
//! figures of the paper, but measurements justifying implementation
//! decisions: the precalc cut-off order, the rayon grain size of the
//! anti-diagonal inner loop, and the kernel-query data structure.

use slcs_braid::{steady_ant, steady_ant_precalc_capped};
use slcs_datagen::{normal_string, seeded_rng};
use slcs_perm::{DominanceTable, MergeSortTree, Permutation};
use slcs_semilocal::antidiag::par_antidiag_combing_branchless_grain;
use slcs_semilocal::iterative_combing;

use crate::{fmt_duration, fmt_ratio, measure, Scale, Table};

/// All ablation ids.
pub const ALL_ABLATIONS: &[&str] = &["abl-precalc", "abl-grain", "abl-query", "abl-bsp"];

/// Dispatch by ablation id.
pub fn run(id: &str, scale: Scale) -> bool {
    match id {
        "abl-precalc" => precalc_order(scale),
        "abl-grain" => grain_size(scale),
        "abl-query" => query_structure(scale),
        "abl-bsp" => bsp_tradeoff(scale),
        _ => return false,
    }
    true
}

/// How deep should the precalc tables cut the steady-ant recursion?
/// The paper fixes order 5 (footnote 6); this sweeps 1..=5.
fn precalc_order(scale: Scale) {
    let n = match scale {
        Scale::Quick => 50_000,
        Scale::Default => 1_000_000,
        Scale::Full => 10_000_000,
    };
    let mut rng = seeded_rng(0xAB1);
    let p = Permutation::random(n, &mut rng);
    let q = Permutation::random(n, &mut rng);
    let mut table = Table::new(
        &format!("Ablation: precalc cut-off order (steady ant, size {n})"),
        &["cutoff", "time", "vs_no_precalc"],
    );
    let base = measure(3, || steady_ant(&p, &q));
    table.row(vec!["none".into(), fmt_duration(base), fmt_ratio(1.0)]);
    for cutoff in 1..=5usize {
        let t = measure(3, || steady_ant_precalc_capped(&p, &q, cutoff));
        table.row(vec![
            cutoff.to_string(),
            fmt_duration(t),
            fmt_ratio(base.as_secs_f64() / t.as_secs_f64()),
        ]);
    }
    table.print();
    let _ = table.write_csv("abl_precalc");
    println!("  each extra order halves the remaining recursion leaves; gains saturate");
    println!("  once leaf work stops dominating (the paper stops at 5! = 120 per side).");
}

/// Rayon grain size (minimum cells per task) in the anti-diagonal
/// combing inner loop: too small → fork/sync overhead per diagonal;
/// too large → no parallelism at all.
fn grain_size(scale: Scale) {
    let n = match scale {
        Scale::Quick => 4_000,
        Scale::Default => 10_000,
        Scale::Full => 50_000,
    };
    let mut rng = seeded_rng(0xAB2);
    let a = normal_string(&mut rng, n, 1.0);
    let b = normal_string(&mut rng, n, 1.0);
    let mut table = Table::new(
        &format!("Ablation: rayon grain size for anti-diagonal combing (n = {n})"),
        &["grain_cells", "time"],
    );
    for grain in [256usize, 1024, 4096, 8192, 32768, usize::MAX / 2] {
        let t = measure(3, || par_antidiag_combing_branchless_grain(&a, &b, grain));
        let label = if grain >= usize::MAX / 2 {
            "∞ (sequential)".to_string()
        } else {
            grain.to_string()
        };
        table.row(vec![label, fmt_duration(t)]);
    }
    table.print();
    let _ = table.write_csv("abl_grain");
    println!("  the suite default is 8192 cells per task.");
}

/// The communication-vs-synchronisation picture (Tiskin, SPAA 2020):
/// predicted BSP times of the fine-grained wavefront comb vs the
/// coarse-grained strip-plus-braid-multiplication algorithm, across
/// machines of increasing barrier latency. Constants calibrated against
/// this repository's implementations on the running CPU.
fn bsp_tradeoff(scale: Scale) {
    use slcs_bsp::{sweep_machines, BspMachine, Calibration};
    let n = match scale {
        Scale::Quick => 10_000,
        Scale::Default => 100_000,
        Scale::Full => 1_000_000,
    };
    let cal = Calibration::measure();
    println!(
        "\ncalibrated: {:.2} ns/cell (combing), {:.2} ns/element/level (steady ant)",
        cal.ns_per_cell, cal.ns_per_ant_element
    );
    let mut table = Table::new(
        &format!("Ablation: BSP predicted times, m = n = {n}, p = 8 (units: cell ops)"),
        &["g", "l", "wavefront", "strip+braid", "winner"],
    );
    for &(g, l) in
        &[(1.0f64, 1e2f64), (1.0, 1e4), (1.0, 1e6), (1.0, 1e8), (10.0, 1e4), (100.0, 1e4)]
    {
        let machine = BspMachine { p: 8, g, l };
        let rows = sweep_machines(n, n, &[machine], &cal, 64 * 64);
        let r = &rows[0];
        let winner = if r.wavefront <= r.strip { "wavefront" } else { "strip" };
        table.row(vec![
            format!("{g}"),
            format!("{l:.0e}"),
            format!("{:.3e}", r.wavefront),
            format!("{:.3e}", r.strip),
            winner.to_string(),
        ]);
    }
    table.print();
    let _ = table.write_csv("abl_bsp");
    println!("  ref [25]: wavefront is work-optimal but pays Θ(n) barriers; the braid");
    println!("  algorithm pays Θ(log p) barriers plus log-linear multiplication work.");
}

/// Kernel score queries: merge-sort tree vs linear scan vs dense table,
/// as a function of kernel order and query count.
fn query_structure(scale: Scale) {
    let sizes = scale.pick(&[1_000usize], &[1_000, 10_000, 100_000], &[10_000, 1_000_000]);
    let mut table = Table::new(
        "Ablation: dominance-query structures (build + 1000 random queries)",
        &["order", "tree_build", "tree_1k_queries", "scan_1k_queries", "dense_build"],
    );
    let mut rng = seeded_rng(0xAB3);
    for &n in &sizes {
        let a = normal_string(&mut rng, n / 2, 1.0);
        let b = normal_string(&mut rng, n - n / 2, 1.0);
        let kernel = iterative_combing(&a, &b);
        let perm = kernel.permutation().clone();
        use rand::RngExt;
        let queries: Vec<(usize, usize)> =
            (0..1000).map(|_| (rng.random_range(0..=n), rng.random_range(0..=n))).collect();
        let t_build = measure(3, || MergeSortTree::new(&perm));
        let tree = MergeSortTree::new(&perm);
        let t_tree =
            measure(3, || queries.iter().map(|&(i, j)| tree.dominance_sum(i, j)).sum::<usize>());
        let t_scan = measure(1, || {
            queries.iter().map(|&(i, j)| perm.dominance_sum_scan(i, j)).sum::<usize>()
        });
        // dense table is quadratic memory — skip beyond 10k
        let t_dense = if n <= 10_000 {
            fmt_duration(measure(1, || DominanceTable::new(&perm)))
        } else {
            "(skipped: O(n²) memory)".to_string()
        };
        table.row(vec![
            n.to_string(),
            fmt_duration(t_build),
            fmt_duration(t_tree),
            fmt_duration(t_scan),
            t_dense,
        ]);
    }
    table.print();
    let _ = table.write_csv("abl_query");
    println!("  the tree wins once more than a handful of queries amortize its build;");
    println!("  traversal queries (windows_linear, h_row) bypass all three.");
}
