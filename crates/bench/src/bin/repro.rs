//! `repro` — regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p slcs-bench --bin repro -- all --scale default
//! cargo run --release -p slcs-bench --bin repro -- fig5 fig9e --scale quick
//! cargo run --release -p slcs-bench --bin repro -- --list
//! ```
//!
//! Results are printed as tables and written to `results/<fig>.csv`.
//! Scales: `quick` (seconds), `default` (minutes), `full` (paper sizes,
//! hours on one core).

use slcs_bench::ablations::{self, ALL_ABLATIONS};
use slcs_bench::figures::{run, ALL_FIGURES};
use slcs_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Default;
    let mut figs: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                // PANIC: CLI usage error; exiting with the message is the intended behavior.
                let v = it.next().expect("--scale needs a value (quick|default|full)");
                scale = Scale::parse(v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (quick|default|full)");
                    std::process::exit(2);
                });
            }
            "--list" => {
                println!("available figures:");
                for f in ALL_FIGURES {
                    println!("  {f}");
                }
                println!("available ablations:");
                for f in ALL_ABLATIONS {
                    println!("  {f}");
                }
                println!("  all (figures)   ablations (all ablations)");
                return;
            }
            "--help" | "-h" => {
                println!("usage: repro [FIG ...|all] [--scale quick|default|full] [--list]");
                return;
            }
            other => figs.push(other.to_string()),
        }
    }
    if figs.is_empty() || figs.iter().any(|f| f == "all") {
        figs = ALL_FIGURES.iter().map(|s| s.to_string()).collect();
    }
    if figs.iter().any(|f| f == "ablations") {
        figs.retain(|f| f != "ablations");
        figs.extend(ALL_ABLATIONS.iter().map(|s| s.to_string()));
    }
    println!(
        "reproducing {} figure(s) at scale {:?} on {} logical core(s)",
        figs.len(),
        scale,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let t0 = std::time::Instant::now();
    for fig in &figs {
        if !run(fig, scale) && !ablations::run(fig, scale) {
            eprintln!("unknown figure '{fig}' — use --list");
            std::process::exit(2);
        }
    }
    println!("\ntotal: {:?}", t0.elapsed());
}
