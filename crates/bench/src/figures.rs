//! One reproduction function per figure of the paper's evaluation
//! (Figures 4–9). Each prints an aligned table, writes a CSV under
//! `results/`, and states the paper's reference observation so the shape
//! can be compared at a glance. See EXPERIMENTS.md for recorded runs.

use std::time::Duration;

use slcs_baselines::{prefix_antidiag, prefix_rowmajor};
use slcs_bitpar::{
    bit_lcs_new1, bit_lcs_new2, par_bit_lcs_new1, par_bit_lcs_new2, par_bit_lcs_old,
};
use slcs_braid::{
    parallel_steady_ant, steady_ant, steady_ant_combined, steady_ant_memory, steady_ant_precalc,
};
use slcs_datagen::{binary_string, genome_pair, normal_string, seeded_rng};
use slcs_perm::Permutation;
use slcs_semilocal::antidiag::par_antidiag_combing_branchless;
use slcs_semilocal::hybrid::hybrid_combing_depth;
use slcs_semilocal::load_balanced::par_load_balanced_combing;
use slcs_semilocal::{
    antidiag_combing, antidiag_combing_branchless, antidiag_combing_simd, antidiag_combing_u16,
    grid_hybrid_combing, iterative_combing, load_balanced_combing, simd_support,
};

use crate::{fmt_duration, fmt_ratio, measure, thread_counts, with_threads, Scale, Table};

/// Number of timed repetitions per configuration, by scale.
fn reps(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 1,
        Scale::Default => 3,
        Scale::Full => 3,
    }
}

/// All figure ids, in paper order.
pub const ALL_FIGURES: &[&str] = &[
    "fig4a", "fig4b", "fig4c", "fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig9c", "fig9e",
];

/// Dispatch by figure id; returns false for unknown ids.
pub fn run(fig: &str, scale: Scale) -> bool {
    match fig {
        "fig4a" => fig4a(scale),
        "fig4b" => fig4b(scale),
        "fig4c" => fig4c(scale),
        "fig5" => fig5(scale),
        "fig6" => fig6(scale),
        "fig7" => fig7(scale),
        "fig8" => fig8(scale),
        "fig9a" => fig9a(scale),
        "fig9b" => fig9b(scale),
        "fig9c" | "fig9d" => fig9c(scale),
        "fig9e" => fig9e(scale),
        _ => return false,
    }
    true
}

// --------------------------------------------------------------------
// Figure 4(a): sequential braid multiplication optimization speedups.
// --------------------------------------------------------------------
fn fig4a(scale: Scale) {
    let sizes = scale.pick(
        &[10_000usize, 100_000],
        &[10_000, 100_000, 1_000_000, 3_000_000],
        &[100_000, 1_000_000, 10_000_000],
    );
    let mut table = Table::new(
        "Figure 4(a): braid multiplication — speedup of optimizations over basic",
        &["size", "base", "precalc", "memory", "combined", "precalc_x", "memory_x", "combined_x"],
    );
    let mut rng = seeded_rng(0x4A);
    for &n in &sizes {
        let p = Permutation::random(n, &mut rng);
        let q = Permutation::random(n, &mut rng);
        let r = reps(scale);
        let base = measure(r, || steady_ant(&p, &q));
        let precalc = measure(r, || steady_ant_precalc(&p, &q));
        let memory = measure(r, || steady_ant_memory(&p, &q));
        let combined = measure(r, || steady_ant_combined(&p, &q));
        let ratio = |d: Duration| base.as_secs_f64() / d.as_secs_f64();
        table.row(vec![
            n.to_string(),
            fmt_duration(base),
            fmt_duration(precalc),
            fmt_duration(memory),
            fmt_duration(combined),
            fmt_ratio(ratio(precalc)),
            fmt_ratio(ratio(memory)),
            fmt_ratio(ratio(combined)),
        ]);
    }
    table.print();
    let _ = table.write_csv("fig4a");
    println!("  paper: speedups decline with size and converge; combined ≈ 1.75x at 10^7.");
}

// --------------------------------------------------------------------
// Figure 4(b): parallel braid multiplication vs fork-depth threshold.
// --------------------------------------------------------------------
fn fig4b(scale: Scale) {
    let n = match scale {
        Scale::Quick => 100_000,
        Scale::Default => 2_000_000,
        Scale::Full => 10_000_000,
    };
    let mut rng = seeded_rng(0x4B);
    let p = Permutation::random(n, &mut rng);
    let q = Permutation::random(n, &mut rng);
    let mut table = Table::new(
        &format!("Figure 4(b): parallel steady ant, size {n}, threads = all cores"),
        &["fork_depth", "time", "speedup_vs_seq"],
    );
    let r = reps(scale);
    let seq = measure(r, || steady_ant_combined(&p, &q));
    for depth in 0..=6usize {
        let t = measure(r, || parallel_steady_ant(&p, &q, depth));
        table.row(vec![
            depth.to_string(),
            fmt_duration(t),
            fmt_ratio(seq.as_secs_f64() / t.as_secs_f64()),
        ]);
    }
    table.print();
    let _ = table.write_csv("fig4b");
    println!("  paper: optimal threshold 4 with speedup 3.7 on 8 cores (flat on 1 vCPU).");
}

// --------------------------------------------------------------------
// Figure 4(c): basic vs load-balanced sequential iterative combing.
// --------------------------------------------------------------------
fn fig4c(scale: Scale) {
    let sizes = scale.pick(&[1_000usize], &[2_000, 4_000, 8_000], &[10_000, 30_000, 100_000]);
    let mut table = Table::new(
        "Figure 4(c): sequential combing — basic vs load-balanced (plus braid-mult share)",
        &["n", "basic", "load_balanced", "braid_mult_alone", "lb_vs_basic"],
    );
    let mut rng = seeded_rng(0x4C);
    for &n in &sizes {
        let a = normal_string(&mut rng, n, 1.0);
        let b = normal_string(&mut rng, n, 1.0);
        let r = reps(scale);
        let basic = measure(r, || antidiag_combing_branchless(&a, &b));
        let lb = measure(r, || load_balanced_combing(&a, &b));
        // the braid-mult share: two products of order 2n, as load-balanced pays
        let p = Permutation::random(2 * n, &mut rng);
        let q = Permutation::random(2 * n, &mut rng);
        let mult = measure(r, || {
            let t = steady_ant_combined(&p, &q);
            steady_ant_combined(&t, &q)
        });
        table.row(vec![
            n.to_string(),
            fmt_duration(basic),
            fmt_duration(lb),
            fmt_duration(mult),
            fmt_ratio(lb.as_secs_f64() / basic.as_secs_f64()),
        ]);
    }
    table.print();
    let _ = table.write_csv("fig4c");
    println!("  paper: the two variants are close; braid multiplication is a small fraction.");
}

// --------------------------------------------------------------------
// Figure 5: semi-local vs prefix LCS, synthetic and genome data.
// --------------------------------------------------------------------
fn fig5(scale: Scale) {
    let sizes =
        scale.pick(&[500usize, 1_000], &[1_000, 2_000, 4_000, 8_000], &[10_000, 30_000, 100_000]);
    for (dataset, sigma) in [("synthetic σ=1", Some(1.0f64)), ("genome 5% divergence", None)] {
        let mut table = Table::new(
            &format!("Figure 5: running times on {dataset}"),
            &[
                "n",
                "prefix_rowmajor",
                "prefix_antidiag",
                "semi_rowmajor",
                "semi_antidiag",
                "semi_antidiag_SIMD",
                "semi_antidiag_u16",
                "SIMD_speedup",
            ],
        );
        let mut rng = seeded_rng(0x50);
        for &n in &sizes {
            let r = reps(scale);
            let (row, branching, simd) = match sigma {
                Some(s) => {
                    let a = normal_string(&mut rng, n, s);
                    let b = normal_string(&mut rng, n, s);
                    bench_fig5_row(&a, &b, n, r)
                }
                None => {
                    let (a, b) = genome_pair(&mut rng, n, 0.05);
                    bench_fig5_row(&a, &b, n, r)
                }
            };
            let mut row = row;
            row.push(fmt_ratio(branching.as_secs_f64() / simd.as_secs_f64()));
            table.row(row);
        }
        table.print();
        let suffix = if sigma.is_some() { "synthetic" } else { "genome" };
        let _ = table.write_csv(&format!("fig5_{suffix}"));
    }

    // Explicit-SIMD appendix: the paper's AVX2 inner loop (and its
    // future-work AVX-512 masked-min/max form) vs the autovectorized
    // branchless loop, on u32-encoded synthetic strings.
    let mut table = Table::new(
        &format!("Figure 5 appendix: explicit SIMD inner loop (isa = {})", simd_support()),
        &["n", "branchless_auto", "explicit_simd", "simd_speedup"],
    );
    let mut rng = seeded_rng(0x51);
    for &n in &sizes {
        let a: Vec<u32> =
            normal_string(&mut rng, n, 1.0).iter().map(|&v| (v + (1 << 20)) as u32).collect();
        let b: Vec<u32> =
            normal_string(&mut rng, n, 1.0).iter().map(|&v| (v + (1 << 20)) as u32).collect();
        let r = reps(scale);
        let t_auto = measure(r, || antidiag_combing_branchless(&a, &b));
        let t_simd = measure(r, || antidiag_combing_simd(&a, &b));
        table.row(vec![
            n.to_string(),
            fmt_duration(t_auto),
            fmt_duration(t_simd),
            fmt_ratio(t_auto.as_secs_f64() / t_simd.as_secs_f64()),
        ]);
    }
    table.print();
    let _ = table.write_csv("fig5_simd");
    println!("  paper: semi-local ≈ prefix LCS; branchless(SIMD) ≈ 5.5-6x over branching.");
}

fn bench_fig5_row<T: Eq + Clone + Sync>(
    a: &[T],
    b: &[T],
    n: usize,
    r: usize,
) -> (Vec<String>, Duration, Duration) {
    let t_prefix_rm = measure(r, || prefix_rowmajor(a, b));
    let t_prefix_ad = measure(r, || prefix_antidiag(a, b));
    let t_semi_rm = measure(r, || iterative_combing(a, b));
    let t_semi_ad = measure(r, || antidiag_combing(a, b));
    let t_semi_simd = measure(r, || antidiag_combing_branchless(a, b));
    // 16-bit strand indices exist only while m + n fits in u16
    let t_semi_u16 =
        (a.len() + b.len() <= 1 << 16).then(|| measure(r, || antidiag_combing_u16(a, b)));
    (
        vec![
            n.to_string(),
            fmt_duration(t_prefix_rm),
            fmt_duration(t_prefix_ad),
            fmt_duration(t_semi_rm),
            fmt_duration(t_semi_ad),
            fmt_duration(t_semi_simd),
            t_semi_u16.map_or_else(|| "n/a (m+n>2^16)".into(), fmt_duration),
        ],
        t_semi_ad,
        t_semi_simd,
    )
}

// --------------------------------------------------------------------
// Figure 6: hybrid threshold-depth tradeoff per string length.
// --------------------------------------------------------------------
fn fig6(scale: Scale) {
    let sizes = scale.pick(&[1_000usize], &[2_000, 8_000, 32_000], &[10_000, 100_000]);
    let mut table = Table::new(
        "Figure 6: hybrid combing — sequential time vs recursion depth",
        &["n", "d=0", "d=1", "d=2", "d=3", "d=4", "d=5", "d=6", "best_depth"],
    );
    let mut rng = seeded_rng(0x60);
    for &n in &sizes {
        let a = normal_string(&mut rng, n, 1.0);
        let b = normal_string(&mut rng, n, 1.0);
        let r = reps(scale);
        let times: Vec<Duration> =
            (0..=6).map(|d| measure(r, || hybrid_combing_depth(&a, &b, d))).collect();
        // PANIC: the depth sweep 0..=6 is non-empty.
        let best = times.iter().enumerate().min_by_key(|(_, t)| **t).unwrap().0;
        let mut row = vec![n.to_string()];
        row.extend(times.iter().map(|t| fmt_duration(*t)));
        row.push(best.to_string());
        table.row(row);
    }
    table.print();
    let _ = table.write_csv("fig6");
    println!("  paper: sequential cost grows with depth; under 10^5 keep depth ≤ 3; longer");
    println!("         strings tolerate deeper thresholds (more parallel slack per leaf).");
}

// --------------------------------------------------------------------
// Figure 7: running time vs thread count.
// --------------------------------------------------------------------
fn fig7(scale: Scale) {
    let n = match scale {
        Scale::Quick => 2_000,
        Scale::Default => 10_000,
        Scale::Full => 50_000,
    };
    let mut rng = seeded_rng(0x70);
    let a = normal_string(&mut rng, n, 1.0);
    let b = normal_string(&mut rng, n, 1.0);
    let mut table = Table::new(
        &format!("Figure 7: running time vs threads (synthetic σ=1, n = {n})"),
        &["threads", "semi_antidiag_SIMD", "semi_load_balanced", "semi_hybrid_iterative"],
    );
    for &t in &thread_counts(scale) {
        let r = reps(scale);
        let t_ad = with_threads(t, || measure(r, || par_antidiag_combing_branchless(&a, &b)));
        let t_lb = with_threads(t, || measure(r, || par_load_balanced_combing(&a, &b)));
        let t_gh = with_threads(t, || measure(r, || grid_hybrid_combing(&a, &b, t.max(2))));
        table.row(vec![t.to_string(), fmt_duration(t_ad), fmt_duration(t_lb), fmt_duration(t_gh)]);
    }
    table.print();
    let _ = table.write_csv("fig7");
    println!("  paper: load-balancing is counterproductive (sync is cheaper than braid mult);");
    println!("         the hybrid beats plain iterative combing.");
}

// --------------------------------------------------------------------
// Figure 8: parallel speedup of semi-local algorithms.
// --------------------------------------------------------------------
fn fig8(scale: Scale) {
    let n = match scale {
        Scale::Quick => 2_000,
        Scale::Default => 20_000,
        Scale::Full => 100_000,
    };
    for (dataset, genome) in [("synthetic σ=1", false), ("genome 5%", true)] {
        let mut rng = seeded_rng(0x80);
        let (a, b): (Vec<i64>, Vec<i64>) = if genome {
            let (x, y) = genome_pair(&mut rng, n, 0.05);
            (x.iter().map(|&v| v as i64).collect(), y.iter().map(|&v| v as i64).collect())
        } else {
            (normal_string(&mut rng, n, 1.0), normal_string(&mut rng, n, 1.0))
        };
        let mut table = Table::new(
            &format!("Figure 8: speedup vs threads on {dataset} (n = {n})"),
            &["threads", "antidiag_SIMD_x", "hybrid_x"],
        );
        let r = reps(scale);
        let base_ad = with_threads(1, || measure(r, || par_antidiag_combing_branchless(&a, &b)));
        let base_gh = with_threads(1, || measure(r, || grid_hybrid_combing(&a, &b, 2)));
        for &t in &thread_counts(scale) {
            let t_ad = with_threads(t, || measure(r, || par_antidiag_combing_branchless(&a, &b)));
            let t_gh = with_threads(t, || measure(r, || grid_hybrid_combing(&a, &b, t.max(2))));
            table.row(vec![
                t.to_string(),
                fmt_ratio(base_ad.as_secs_f64() / t_ad.as_secs_f64()),
                fmt_ratio(base_gh.as_secs_f64() / t_gh.as_secs_f64()),
            ]);
        }
        table.print();
        let suffix = if genome { "genome" } else { "synthetic" };
        let _ = table.write_csv(&format!("fig8_{suffix}"));
    }
    println!("  paper: ≈4x at 7 threads (synthetic 10^5), ≈5x on genomes, on 8 cores —");
    println!("         expect ≈1x on this container's single vCPU.");
}

// --------------------------------------------------------------------
// Figure 9(a): bit-parallel memory-access optimization, multithreaded.
// --------------------------------------------------------------------
fn fig9a(scale: Scale) {
    let n = match scale {
        Scale::Quick => 50_000,
        Scale::Default => 200_000,
        Scale::Full => 1_000_000,
    };
    let mut rng = seeded_rng(0x9A);
    let a = binary_string(&mut rng, n);
    let b = binary_string(&mut rng, n);
    let mut table = Table::new(
        &format!("Figure 9(a): bit_old vs bit_new_1 across threads (binary, n = {n})"),
        &["threads", "bit_old", "bit_new_1", "new1_vs_old"],
    );
    for &t in &thread_counts(scale) {
        let r = reps(scale);
        let t_old = with_threads(t, || measure(r, || par_bit_lcs_old(&a, &b)));
        let t_new = with_threads(t, || measure(r, || par_bit_lcs_new1(&a, &b)));
        table.row(vec![
            t.to_string(),
            fmt_duration(t_old),
            fmt_duration(t_new),
            fmt_ratio(t_old.as_secs_f64() / t_new.as_secs_f64()),
        ]);
    }
    table.print();
    let _ = table.write_csv("fig9a");
    println!("  paper: the register-residency optimization grows with threads (4.5x at 16).");
}

// --------------------------------------------------------------------
// Figure 9(b): optimized Boolean formula.
// --------------------------------------------------------------------
fn fig9b(scale: Scale) {
    let sizes = scale.pick(&[50_000usize], &[100_000, 200_000, 400_000], &[1_000_000, 2_000_000]);
    let mut table = Table::new(
        "Figure 9(b): original vs optimized Boolean formula (sequential)",
        &["n", "bit_new_1", "bit_new_2", "new2_vs_new1"],
    );
    let mut rng = seeded_rng(0x9B);
    for &n in &sizes {
        let a = binary_string(&mut rng, n);
        let b = binary_string(&mut rng, n);
        let r = reps(scale);
        let t1 = measure(r, || bit_lcs_new1(&a, &b));
        let t2 = measure(r, || bit_lcs_new2(&a, &b));
        table.row(vec![
            n.to_string(),
            fmt_duration(t1),
            fmt_duration(t2),
            fmt_ratio(t1.as_secs_f64() / t2.as_secs_f64()),
        ]);
    }
    table.print();
    let _ = table.write_csv("fig9b");
    println!("  paper: the optimized formula gives ≈1.48x.");
}

// --------------------------------------------------------------------
// Figure 9(c,d): parallel speedup of hybrid and bit-parallel, binary.
// --------------------------------------------------------------------
fn fig9c(scale: Scale) {
    let n = match scale {
        Scale::Quick => 50_000,
        Scale::Default => 100_000,
        Scale::Full => 1_000_000,
    };
    let mut rng = seeded_rng(0x9C);
    let a = binary_string(&mut rng, n);
    let b = binary_string(&mut rng, n);
    let mut table = Table::new(
        &format!("Figure 9(c,d): parallel speedup on binary strings (n = {n})"),
        &["threads", "hybrid", "hybrid_x", "bit_new_2", "bit_x"],
    );
    let r = reps(scale);
    let base_h = with_threads(1, || measure(r, || grid_hybrid_combing(&a, &b, 2)));
    let base_b = with_threads(1, || measure(r, || par_bit_lcs_new2(&a, &b)));
    for &t in &thread_counts(scale) {
        let t_h = with_threads(t, || measure(r, || grid_hybrid_combing(&a, &b, t.max(2))));
        let t_b = with_threads(t, || measure(r, || par_bit_lcs_new2(&a, &b)));
        table.row(vec![
            t.to_string(),
            fmt_duration(t_h),
            fmt_ratio(base_h.as_secs_f64() / t_h.as_secs_f64()),
            fmt_duration(t_b),
            fmt_ratio(base_b.as_secs_f64() / t_b.as_secs_f64()),
        ]);
    }
    table.print();
    let _ = table.write_csv("fig9c");
    println!("  paper: both near-optimal ≈8x on 8 cores at 10^6 (hybrid 7.95x).");
}

// --------------------------------------------------------------------
// Figure 9(e): bit-parallel vs hybrid vs iterative combing.
// --------------------------------------------------------------------
fn fig9e(scale: Scale) {
    // The paper's headline factors (16x / 29x) are at n = 10^6, where one
    // sequential comb takes ~7 minutes on this 1-vCPU box; `full` instead
    // sweeps sizes with single measurements to exhibit the factor *growth*
    // toward the paper's regime.
    let (sizes, r) = match scale {
        Scale::Quick => (vec![20_000usize], 1),
        Scale::Default => (vec![100_000usize], reps(scale)),
        Scale::Full => (vec![50_000usize, 100_000, 200_000, 400_000], 1),
    };
    let mut table = Table::new(
        "Figure 9(e): algorithm classes on binary strings",
        &["n", "iterative_SIMD", "hybrid", "bit_new_2", "bit_vs_iter", "bit_vs_hybrid"],
    );
    let mut rng = seeded_rng(0x9E);
    for &n in &sizes {
        let a = binary_string(&mut rng, n);
        let b = binary_string(&mut rng, n);
        let t_iter = measure(r, || antidiag_combing_branchless(&a, &b));
        let t_hybrid = measure(r, || grid_hybrid_combing(&a, &b, 4));
        let t_bit = measure(r, || bit_lcs_new2(&a, &b));
        table.row(vec![
            n.to_string(),
            fmt_duration(t_iter),
            fmt_duration(t_hybrid),
            fmt_duration(t_bit),
            fmt_ratio(t_iter.as_secs_f64() / t_bit.as_secs_f64()),
            fmt_ratio(t_hybrid.as_secs_f64() / t_bit.as_secs_f64()),
        ]);
    }
    table.print();
    let _ = table.write_csv("fig9e");
    println!("  paper: bit-parallel ≈16x faster than hybrid and ≈29x than iterative at 10^6;");
    println!("  the factors grow with n as combing leaves cache while bit stays compute-bound.");
}
