//! Criterion bench for Figure 4(a)/(b): steady-ant braid multiplication
//! variants on random permutations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slcs_braid::{
    parallel_steady_ant, steady_ant, steady_ant_combined, steady_ant_memory, steady_ant_precalc,
    BraidMulWorkspace, PrecalcTables,
};
use slcs_datagen::seeded_rng;
use slcs_perm::Permutation;

fn braid_mult(c: &mut Criterion) {
    let mut rng = seeded_rng(0xBEEF);
    let mut group = c.benchmark_group("braid_mult");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let p = Permutation::random(n, &mut rng);
        let q = Permutation::random(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("base", n), &n, |b, _| {
            b.iter(|| steady_ant(&p, &q))
        });
        group.bench_with_input(BenchmarkId::new("precalc", n), &n, |b, _| {
            b.iter(|| steady_ant_precalc(&p, &q))
        });
        group.bench_with_input(BenchmarkId::new("memory", n), &n, |b, _| {
            b.iter(|| steady_ant_memory(&p, &q))
        });
        group.bench_with_input(BenchmarkId::new("combined", n), &n, |b, _| {
            b.iter(|| steady_ant_combined(&p, &q))
        });
        group.bench_with_input(BenchmarkId::new("combined_reused_ws", n), &n, |b, _| {
            let mut ws = BraidMulWorkspace::new(n);
            let tables = PrecalcTables::global();
            b.iter(|| ws.multiply(&p, &q, Some(tables)))
        });
        group.bench_with_input(BenchmarkId::new("parallel_d4", n), &n, |b, _| {
            b.iter(|| parallel_steady_ant(&p, &q, 4))
        });
    }
    group.finish();
}

criterion_group!(benches, braid_mult);
criterion_main!(benches);
