//! Criterion bench for Figure 9: the carry-free bit-parallel LCS variants
//! against each other, the adder-based baselines, and plain DP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slcs_baselines::{cipr_lcs, hyyro_lcs, prefix_rowmajor};
use slcs_bitpar::{bit_lcs_alphabet, bit_lcs_new1, bit_lcs_new2, bit_lcs_old};
use slcs_datagen::{binary_string, seeded_rng, uniform_string};

fn bitparallel(c: &mut Criterion) {
    let mut rng = seeded_rng(0x916);
    let n = 50_000usize;
    let a = binary_string(&mut rng, n);
    let b = binary_string(&mut rng, n);
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n) as u64));
    group.bench_with_input(BenchmarkId::new("bit_old", n), &n, |bn, _| {
        bn.iter(|| bit_lcs_old(&a, &b))
    });
    group.bench_with_input(BenchmarkId::new("bit_new_1", n), &n, |bn, _| {
        bn.iter(|| bit_lcs_new1(&a, &b))
    });
    group.bench_with_input(BenchmarkId::new("bit_new_2", n), &n, |bn, _| {
        bn.iter(|| bit_lcs_new2(&a, &b))
    });
    group.bench_with_input(BenchmarkId::new("cipr_adder", n), &n, |bn, _| {
        bn.iter(|| cipr_lcs(&a, &b))
    });
    group.bench_with_input(BenchmarkId::new("hyyro_adder", n), &n, |bn, _| {
        bn.iter(|| hyyro_lcs(&a, &b))
    });
    // DP at this size is ~50x slower; bench it smaller to keep runtime sane.
    let small = 5_000usize;
    group.bench_with_input(BenchmarkId::new("prefix_rowmajor", small), &small, |bn, _| {
        bn.iter(|| prefix_rowmajor(&a[..small], &b[..small]))
    });
    // the future-work alphabet extension, on DNA-sized symbols
    let da = uniform_string(&mut rng, n, 4);
    let db = uniform_string(&mut rng, n, 4);
    group.bench_with_input(BenchmarkId::new("bit_alphabet_dna", n), &n, |bn, _| {
        bn.iter(|| bit_lcs_alphabet(&da, &db))
    });
    group.finish();
}

criterion_group!(benches, bitparallel);
criterion_main!(benches);
