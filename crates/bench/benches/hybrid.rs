//! Criterion bench for Figures 6–7: the hybrid combing family — depth
//! sweep (Listing 6) and the optimized grid hybrid (Listing 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slcs_datagen::{normal_string, seeded_rng};
use slcs_semilocal::hybrid::hybrid_combing_depth;
use slcs_semilocal::{antidiag_combing_branchless, grid_hybrid_combing};

fn hybrid(c: &mut Criterion) {
    let mut rng = seeded_rng(0x4B1);
    let n = 4_000usize;
    let a = normal_string(&mut rng, n, 1.0);
    let b = normal_string(&mut rng, n, 1.0);
    let mut group = c.benchmark_group("fig6_fig7");
    group.sample_size(10);
    for depth in [0usize, 1, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("hybrid_depth", depth), &depth, |bn, &d| {
            bn.iter(|| hybrid_combing_depth(&a, &b, d))
        });
    }
    for tasks in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("grid_hybrid_tasks", tasks), &tasks, |bn, &t| {
            bn.iter(|| grid_hybrid_combing(&a, &b, t))
        });
    }
    group.bench_function("iterative_SIMD_reference", |bn| {
        bn.iter(|| antidiag_combing_branchless(&a, &b))
    });
    group.finish();
}

criterion_group!(benches, hybrid);
criterion_main!(benches);
