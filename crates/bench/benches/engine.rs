//! Criterion bench for the comparison engine: end-to-end request
//! throughput through the queue/worker/cache pipeline, contrasted with
//! calling the algorithms directly. The interesting ratios are
//! (a) engine overhead on a cold cache vs the bare algorithm, and
//! (b) the speedup a warm kernel cache buys on repeat traffic.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slcs_datagen::{seeded_rng, uniform_string};
use slcs_engine::{CompareRequest, Engine, EngineConfig, Operation};
use slcs_semilocal::iterative_combing;

fn engine_throughput(c: &mut Criterion) {
    let mut rng = seeded_rng(0xE61);
    let n = 1_000usize;
    let a: Arc<[u8]> = uniform_string(&mut rng, n, 4).into();
    let b: Arc<[u8]> = uniform_string(&mut rng, n, 4).into();
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n) as u64));

    group.bench_with_input(BenchmarkId::new("direct_comb", n), &n, |bn, _| {
        bn.iter(|| iterative_combing(&a[..], &b[..]).index().windows_linear(n / 2))
    });

    // Cold cache: every iteration gets a fresh engine, so the request
    // pays queueing + combing + index build.
    group.bench_with_input(BenchmarkId::new("engine_cold", n), &n, |bn, _| {
        bn.iter(|| {
            let engine = Engine::new(EngineConfig {
                workers: 1,
                threads_per_request: 1,
                ..EngineConfig::default()
            });
            engine
                .submit_wait(CompareRequest::new(
                    a.clone(),
                    b.clone(),
                    Operation::Windows { w: n / 2 },
                ))
                .unwrap()
        })
    });

    // Warm cache: one engine across iterations; after the first, every
    // request is a cache hit answered from the kernel index.
    let engine =
        Engine::new(EngineConfig { workers: 1, threads_per_request: 1, ..EngineConfig::default() });
    group.bench_with_input(BenchmarkId::new("engine_warm", n), &n, |bn, _| {
        bn.iter(|| {
            engine
                .submit_wait(CompareRequest::new(
                    a.clone(),
                    b.clone(),
                    Operation::Windows { w: n / 2 },
                ))
                .unwrap()
        })
    });

    // Score-only fast path: a pair the cache has never seen stays on
    // the bit-parallel bypass (Lcs never inserts a kernel).
    let c: Arc<[u8]> = uniform_string(&mut rng, n, 4).into();
    let d: Arc<[u8]> = uniform_string(&mut rng, n, 4).into();
    group.bench_with_input(BenchmarkId::new("engine_lcs_bitpar", n), &n, |bn, _| {
        bn.iter(|| {
            engine.submit_wait(CompareRequest::new(c.clone(), d.clone(), Operation::Lcs)).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
