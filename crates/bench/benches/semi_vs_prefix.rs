//! Criterion bench for Figure 5: semi-local combing vs classical prefix
//! LCS on synthetic σ=1 strings and synthetic genomes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slcs_baselines::{prefix_antidiag, prefix_rowmajor};
use slcs_datagen::{genome_pair, normal_string, seeded_rng};
use slcs_semilocal::{
    antidiag_combing, antidiag_combing_branchless, antidiag_combing_u16, iterative_combing,
    load_balanced_combing,
};

fn run_set<T: Eq + Clone + Sync>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    tag: &str,
    a: &[T],
    b: &[T],
) {
    let n = a.len();
    group.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    group.bench_with_input(BenchmarkId::new(format!("{tag}/prefix_rowmajor"), n), &n, |bn, _| {
        bn.iter(|| prefix_rowmajor(a, b))
    });
    group.bench_with_input(BenchmarkId::new(format!("{tag}/prefix_antidiag"), n), &n, |bn, _| {
        bn.iter(|| prefix_antidiag(a, b))
    });
    group.bench_with_input(BenchmarkId::new(format!("{tag}/semi_rowmajor"), n), &n, |bn, _| {
        bn.iter(|| iterative_combing(a, b))
    });
    group.bench_with_input(BenchmarkId::new(format!("{tag}/semi_antidiag"), n), &n, |bn, _| {
        bn.iter(|| antidiag_combing(a, b))
    });
    group.bench_with_input(
        BenchmarkId::new(format!("{tag}/semi_antidiag_SIMD"), n),
        &n,
        |bn, _| bn.iter(|| antidiag_combing_branchless(a, b)),
    );
    group.bench_with_input(BenchmarkId::new(format!("{tag}/semi_antidiag_u16"), n), &n, |bn, _| {
        bn.iter(|| antidiag_combing_u16(a, b))
    });
    group.bench_with_input(
        BenchmarkId::new(format!("{tag}/semi_load_balanced"), n),
        &n,
        |bn, _| bn.iter(|| load_balanced_combing(a, b)),
    );
}

fn semi_vs_prefix(c: &mut Criterion) {
    let mut rng = seeded_rng(0xF16);
    let n = 3_000usize;
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    let a = normal_string(&mut rng, n, 1.0);
    let b = normal_string(&mut rng, n, 1.0);
    run_set(&mut group, "sigma1", &a, &b);
    let (ga, gb) = genome_pair(&mut rng, n, 0.05);
    run_set(&mut group, "genome", &ga, &gb);
    group.finish();
}

criterion_group!(benches, semi_vs_prefix);
criterion_main!(benches);
