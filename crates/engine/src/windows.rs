//! Rolling-window latency quantiles per request class.
//!
//! Cumulative-since-start histograms cannot answer "what is p99 *right
//! now*" — after a day of traffic a latency spike vanishes into the
//! denominator. This module keeps, per request class, a rotated ring
//! of the engine's power-of-two [`Histogram`]s: time is divided into
//! fixed slices, each slice owns one histogram, and a window quantile
//! merges the youngest 1/6/30 slices (10s/1m/5m at the default 10s
//! slice). Merging log₂ histograms is exact (bucketwise sum), so a
//! window quantile has the same bucket resolution as the cumulative
//! ones.
//!
//! Slices are recycled in place: a recorder landing in a slot whose
//! tag is stale CASes the tag to the current slice number and clears
//! the histogram. Readers include only slots whose tag falls inside
//! the queried window, so an idle engine's windows drain to empty by
//! construction — no background thread rotates anything. The design
//! is lock-free and approximately consistent: a reader racing a slice
//! recycle can observe a partially-cleared histogram, which costs at
//! most one slice of one window for one scrape.

use std::time::Instant;

use crate::metrics::{Histogram, HistogramSnapshot};
use crate::request::Operation;
use crate::sync::atomic::{AtomicU64, Ordering};

/// Window labels, youngest-first. With the default 10-second slice the
/// windows span 10s, 1m and 5m; a custom
/// [`EngineConfig::window_slice_millis`](crate::EngineConfig) scales
/// all three (labels are stable vocabulary, sized for the default).
pub const WINDOW_TOKENS: [&str; 3] = ["10s", "1m", "5m"];

/// How many slices each window merges, index-aligned with
/// [`WINDOW_TOKENS`].
pub const WINDOW_SLICES: [usize; 3] = [1, 6, 30];

/// Quantile labels exported per `{class, window}` pair.
pub const QUANTILE_TOKENS: [&str; 4] = ["p50", "p90", "p99", "p999"];

/// Quantile ranks, index-aligned with [`QUANTILE_TOKENS`].
pub const QUANTILE_RANKS: [f64; 4] = [0.50, 0.90, 0.99, 0.999];

/// Default slice duration: 10 seconds, making the largest window 5
/// minutes deep.
pub const DEFAULT_SLICE_MILLIS: u64 = 10_000;

/// Ring length — the largest window, so every window's slices are
/// resident at once.
const RING: usize = 30;

struct SliceSlot {
    /// Slice number this slot currently holds samples for (0 = never
    /// used). Doubles as the recycle claim: the recorder that CASes the
    /// tag forward owns the clear.
    tag: AtomicU64,
    hist: Histogram,
}

/// The per-class rings. Shared by workers (record) and any snapshot
/// reader; all operations are lock-free.
pub struct RollingWindows {
    slice_millis: u64,
    started: Instant,
    classes: [[SliceSlot; RING]; Operation::CLASS_COUNT],
}

impl RollingWindows {
    /// A ring with the given slice duration; `slice_millis == 0`
    /// disables windowing entirely (record is a no-op, snapshots are
    /// empty).
    pub fn new(slice_millis: u64) -> RollingWindows {
        RollingWindows {
            slice_millis,
            started: Instant::now(),
            classes: std::array::from_fn(|_| {
                std::array::from_fn(|_| SliceSlot {
                    tag: AtomicU64::new(0),
                    hist: Histogram::default(),
                })
            }),
        }
    }

    /// Current slice number, starting at 1 so the never-used tag 0 is
    /// unambiguous.
    fn current_slice(&self) -> u64 {
        (self.started.elapsed().as_millis() as u64 / self.slice_millis) + 1
    }

    /// Records one service-time sample (µs) for a request class.
    pub fn record(&self, class: usize, micros: u64) {
        if self.slice_millis == 0 {
            return;
        }
        let slice = self.current_slice();
        let slot = &self.classes[class][(slice % RING as u64) as usize];
        // ORDERING: Acquire — pairs with the releasing CAS below so a
        // recorder that sees the current tag also sees the cleared
        // histogram.
        let tag = slot.tag.load(Ordering::Acquire);
        if tag != slice {
            // ORDERING: AcqRel — claims the recycled slot: exactly one
            // racing recorder wins and clears; the release publishes the
            // clear to recorders that acquire the new tag.
            if slot.tag.compare_exchange(tag, slice, Ordering::AcqRel, Ordering::Relaxed).is_ok() {
                slot.hist.clear();
            }
        }
        slot.hist.record(micros);
    }

    /// Merged histograms for every `{class, window}` pair. Only slots
    /// whose slice falls inside a window contribute, so idle windows
    /// drain to empty without any rotation thread.
    pub fn snapshot(&self) -> WindowsSnapshot {
        let mut out = WindowsSnapshot::default();
        if self.slice_millis == 0 {
            return out;
        }
        let current = self.current_slice();
        for (ci, ring) in self.classes.iter().enumerate() {
            for slot in ring {
                // ORDERING: Acquire — pairs with the recycling CAS; a
                // stale or torn view costs one slice of one scrape.
                let tag = slot.tag.load(Ordering::Acquire);
                if tag == 0 || tag > current {
                    continue;
                }
                let age = current - tag;
                if age >= RING as u64 {
                    continue;
                }
                let h = slot.hist.snapshot();
                for (wi, &slices) in WINDOW_SLICES.iter().enumerate() {
                    if age < slices as u64 {
                        out.hists[ci][wi].merge(&h);
                    }
                }
            }
        }
        out
    }
}

/// A point-in-time copy of every `{class, window}` merged histogram.
#[derive(Clone, Debug)]
pub struct WindowsSnapshot {
    /// Class-major: `hists[class][window]`, index-aligned with
    /// [`Operation::CLASS_TOKENS`] and [`WINDOW_TOKENS`].
    pub hists: [[HistogramSnapshot; WINDOW_TOKENS.len()]; Operation::CLASS_COUNT],
}

impl Default for WindowsSnapshot {
    fn default() -> WindowsSnapshot {
        WindowsSnapshot {
            hists: std::array::from_fn(|_| {
                std::array::from_fn(|_| HistogramSnapshot {
                    buckets: [0; HistogramSnapshot::LEN],
                    sum: 0,
                })
            }),
        }
    }
}

impl WindowsSnapshot {
    /// The merged histogram of one `{class, window}` pair.
    pub fn hist(&self, class: usize, window: usize) -> &HistogramSnapshot {
        &self.hists[class][window]
    }

    /// Appends the `slcs_latency_window{class,window,quantile}` gauge
    /// series (µs; 0 when the window is empty). Every label triple is
    /// emitted even at zero so scrapers see a stable set.
    pub fn write_prometheus(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE slcs_latency_window gauge");
        for (ci, class) in Operation::CLASS_TOKENS.iter().enumerate() {
            for (wi, window) in WINDOW_TOKENS.iter().enumerate() {
                let h = &self.hists[ci][wi];
                for (qi, quantile) in QUANTILE_TOKENS.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "slcs_latency_window{{class=\"{class}\",window=\"{window}\",\
                         quantile=\"{quantile}\"}} {}",
                        h.quantile(QUANTILE_RANKS[qi]),
                    );
                }
            }
        }
    }

    /// The STATS `latency_windows=` field: comma-separated
    /// `class:window:p50/p90/p99/p999` entries (µs).
    pub fn stats_field(&self) -> String {
        let mut parts = Vec::with_capacity(Operation::CLASS_COUNT * WINDOW_TOKENS.len());
        for (ci, class) in Operation::CLASS_TOKENS.iter().enumerate() {
            for (wi, window) in WINDOW_TOKENS.iter().enumerate() {
                let h = &self.hists[ci][wi];
                parts.push(format!(
                    "{class}:{window}:{}/{}/{}/{}",
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.quantile(0.999),
                ));
            }
        }
        parts.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_records_nothing() {
        let w = RollingWindows::new(0);
        w.record(0, 100);
        let s = w.snapshot();
        assert_eq!(s.hist(0, 0).count(), 0);
        assert_eq!(s.hist(0, 2).count(), 0);
    }

    #[test]
    fn samples_land_in_every_window_and_quantiles_are_monotone() {
        let w = RollingWindows::new(10_000);
        for micros in [10, 20, 40, 80, 5000] {
            w.record(2, micros);
        }
        let s = w.snapshot();
        for wi in 0..WINDOW_TOKENS.len() {
            let h = s.hist(2, wi);
            assert_eq!(h.count(), 5, "window {wi} sees the current slice");
            let qs: Vec<u64> = QUANTILE_RANKS.iter().map(|&q| h.quantile(q)).collect();
            for pair in qs.windows(2) {
                assert!(pair[0] <= pair[1], "quantiles must be monotone: {qs:?}");
            }
        }
        // Other classes stay empty.
        assert_eq!(s.hist(0, 0).count(), 0);
    }

    #[test]
    fn windows_drain_after_idle() {
        let w = RollingWindows::new(5);
        w.record(1, 77);
        assert_eq!(w.snapshot().hist(1, 0).count(), 1);
        // Sleep past the largest window (30 slices × 5ms = 150ms).
        std::thread::sleep(std::time::Duration::from_millis(200));
        let s = w.snapshot();
        for wi in 0..WINDOW_TOKENS.len() {
            assert_eq!(s.hist(1, wi).count(), 0, "window {wi} must drain when idle");
        }
    }

    #[test]
    fn short_window_drains_before_long_window() {
        let w = RollingWindows::new(20);
        w.record(0, 50);
        // Sleep past the 1-slice window but well inside the 6-slice one.
        std::thread::sleep(std::time::Duration::from_millis(50));
        w.record(0, 60); // fresh slice, re-arms the short window with 1 sample
        let s = w.snapshot();
        assert_eq!(s.hist(0, 0).count(), 1, "10s window holds only the fresh slice");
        assert_eq!(s.hist(0, 1).count(), 2, "1m window still holds both");
    }

    #[test]
    fn slot_recycling_clears_old_samples() {
        let w = RollingWindows::new(1);
        w.record(3, 99);
        // Sleep enough that the ring wraps (RING slices × 1ms), then
        // record again: the recycled slot must not resurrect the old
        // sample into the short window.
        std::thread::sleep(std::time::Duration::from_millis(RING as u64 + 5));
        w.record(3, 11);
        let h = w.snapshot().hist(3, 0).clone();
        assert_eq!(h.count(), 1, "recycled slot was cleared");
    }

    #[test]
    fn prometheus_and_stats_field_have_stable_label_sets() {
        let w = RollingWindows::new(10_000);
        w.record(0, 1000);
        let s = w.snapshot();
        let mut out = String::new();
        s.write_prometheus(&mut out);
        for class in Operation::CLASS_TOKENS {
            for window in WINDOW_TOKENS {
                for quantile in QUANTILE_TOKENS {
                    let needle = format!(
                        "slcs_latency_window{{class=\"{class}\",window=\"{window}\",\
                         quantile=\"{quantile}\"}}"
                    );
                    assert!(out.contains(&needle), "missing {needle}:\n{out}");
                }
            }
        }
        let field = s.stats_field();
        assert!(field.contains("lcs:10s:"), "{field}");
        assert!(field.contains("edit_bounded:5m:"), "{field}");
        assert_eq!(field.split(',').count(), Operation::CLASS_COUNT * WINDOW_TOKENS.len());
    }
}
