//! Request and response types of the comparison engine.

use std::sync::Arc;

/// What to compute over a `(pattern, text)` pair.
///
/// `pattern` is the paper's string `a`, `text` its string `b`; window
/// operations slide over the text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Operation {
    /// Global LCS score `LCS(a, b)`.
    Lcs,
    /// Semi-local window scan: `LCS(a, b[i..i+w))` for every window
    /// start `i`, plus the best window.
    Windows { w: usize },
    /// Global edit distance, plus (optionally) the closest window of
    /// length `w` in the text.
    Edit { w: Option<usize> },
    /// Thresholded edit distance: the exact distance if it is `≤ k`,
    /// else just "greater than `k`". Always served by the
    /// output-sensitive BFS, which exits after `k + 1` rounds instead
    /// of filling a grid.
    EditBounded { k: usize },
}

impl Operation {
    /// Request-class vocabulary, in [`Self::class_index`] order. Each
    /// operation is one "request class" for SLOs, rolling-window
    /// quantiles and the flight recorder — different classes have
    /// wildly different latency envelopes, so they are tracked apart.
    pub const CLASS_TOKENS: [&'static str; 4] = ["lcs", "windows", "edit", "edit_bounded"];

    /// Number of request classes (length of [`Self::CLASS_TOKENS`]).
    pub const CLASS_COUNT: usize = Self::CLASS_TOKENS.len();

    /// Stable lowercase wire/trace token for this operation.
    pub fn token(&self) -> &'static str {
        match self {
            Operation::Lcs => "lcs",
            Operation::Windows { .. } => "windows",
            Operation::Edit { .. } => "edit",
            Operation::EditBounded { .. } => "edit_bounded",
        }
    }

    /// Position of this operation's class in [`Self::CLASS_TOKENS`].
    pub fn class_index(&self) -> usize {
        match self {
            Operation::Lcs => 0,
            Operation::Windows { .. } => 1,
            Operation::Edit { .. } => 2,
            Operation::EditBounded { .. } => 3,
        }
    }
}

/// A unit of work submitted to the engine.
///
/// Inputs are `Arc<[u8]>` so a client can submit the same pattern or
/// text many times (or to many operations) without copying; the engine
/// also keys its kernel cache and batch coalescing off these bytes.
#[derive(Clone, Debug)]
pub struct CompareRequest {
    pub pattern: Arc<[u8]>,
    pub text: Arc<[u8]>,
    pub op: Operation,
}

impl CompareRequest {
    pub fn new(pattern: impl Into<Arc<[u8]>>, text: impl Into<Arc<[u8]>>, op: Operation) -> Self {
        CompareRequest { pattern: pattern.into(), text: text.into(), op }
    }

    /// Checks operation bounds against the input lengths; the engine
    /// rejects invalid requests at submission so worker threads never
    /// hit an algorithm's assertions.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.text.len();
        match self.op {
            Operation::Lcs => Ok(()),
            Operation::Windows { w } => {
                if w == 0 {
                    Err("window length must be positive".into())
                } else if w > n {
                    Err(format!("window {w} longer than text ({n})"))
                } else {
                    Ok(())
                }
            }
            Operation::Edit { w } => match w {
                Some(0) => Err("window length must be positive".into()),
                Some(w) if w > n => Err(format!("window {w} longer than text ({n})")),
                _ => Ok(()),
            },
            // Any bound is meaningful: k = 0 asks "are these equal?".
            Operation::EditBounded { .. } => Ok(()),
        }
    }
}

/// Which algorithm served a request (observable for tests and ops).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoChoice {
    /// Carry-free bit-parallel LCS (score only, no kernel built).
    BitParallel,
    /// Sequential iterative combing → semi-local kernel.
    IterativeCombing,
    /// Grid-parallel combing under this thread budget. The concrete
    /// schedule (barrier team, per-diagonal fork/join, work stealing —
    /// historically Listing 7's hybrid) is resolved per request by the
    /// measured cost model (`slcs_semilocal::tuning`); the `tasks` field
    /// and the `"grid"` token name the route, not one fixed kernel.
    GridHybridCombing { tasks: usize },
    /// Blown-up combing behind the edit-distance index.
    EditIndex,
    /// Output-sensitive Landau–Vishkin BFS (`slcs-osed`): O(n + d²),
    /// chosen for high-similarity and thresholded edit requests.
    OutputSensitive,
    /// Served straight from the kernel cache — no combing at all.
    CachedKernel,
}

impl AlgoChoice {
    /// Stable lowercase wire/trace token (the server's `<algo>` field
    /// and the `algo` span field share this vocabulary).
    pub fn token(&self) -> &'static str {
        match self {
            AlgoChoice::BitParallel => "bitpar",
            AlgoChoice::IterativeCombing => "comb",
            AlgoChoice::GridHybridCombing { .. } => "grid",
            AlgoChoice::EditIndex => "edit",
            AlgoChoice::OutputSensitive => "osed",
            AlgoChoice::CachedKernel => "cached",
        }
    }
}

/// Why the dispatcher picked the algorithm it picked — one stable
/// label per decision branch, so osed routing (and every other path)
/// is observable in STATS/METRICS as `slcs_dispatch_total{algo,reason}`
/// and in the `engine.dispatch` trace instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchReason {
    /// Score-only request on an alphabet the bit-parallel path covers.
    SmallAlphabet,
    /// Kernel-building grid served by sequential combing.
    GridSequential,
    /// Kernel-building grid large enough for the parallel comb.
    GridParallel,
    /// Windowed edit request: needs the full edit-distance index.
    EditWindowed,
    /// Global edit request whose similarity probe says "nearly equal" —
    /// routed to the output-sensitive BFS.
    EditSimilar,
    /// Global edit request that failed the similarity probe (or is too
    /// short to probe) — full edit-distance index.
    EditDissimilar,
    /// Thresholded edit request: the d-capped BFS is built for it.
    EditBoundedK,
    /// Degenerate empty input answered directly.
    EmptyInput,
    /// A cached index overrode the plan.
    CacheHit,
}

impl DispatchReason {
    /// Every reason, in counter-index order (see [`Self::index`]).
    pub const ALL: [DispatchReason; 9] = [
        DispatchReason::SmallAlphabet,
        DispatchReason::GridSequential,
        DispatchReason::GridParallel,
        DispatchReason::EditWindowed,
        DispatchReason::EditSimilar,
        DispatchReason::EditDissimilar,
        DispatchReason::EditBoundedK,
        DispatchReason::EmptyInput,
        DispatchReason::CacheHit,
    ];

    /// Number of reasons (length of [`Self::ALL`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Position of this reason in [`Self::ALL`] — the index of its
    /// metrics counter.
    pub fn index(&self) -> usize {
        match self {
            DispatchReason::SmallAlphabet => 0,
            DispatchReason::GridSequential => 1,
            DispatchReason::GridParallel => 2,
            DispatchReason::EditWindowed => 3,
            DispatchReason::EditSimilar => 4,
            DispatchReason::EditDissimilar => 5,
            DispatchReason::EditBoundedK => 6,
            DispatchReason::EmptyInput => 7,
            DispatchReason::CacheHit => 8,
        }
    }

    /// Stable lowercase label — the `reason` value of the
    /// `slcs_dispatch_total` series and the STATS `dispatch=` field.
    pub fn token(&self) -> &'static str {
        match self {
            DispatchReason::SmallAlphabet => "small_alphabet",
            DispatchReason::GridSequential => "grid_seq",
            DispatchReason::GridParallel => "grid_par",
            DispatchReason::EditWindowed => "edit_windowed",
            DispatchReason::EditSimilar => "edit_similar",
            DispatchReason::EditDissimilar => "edit_dissimilar",
            DispatchReason::EditBoundedK => "edit_bounded",
            DispatchReason::EmptyInput => "empty_input",
            DispatchReason::CacheHit => "cache_hit",
        }
    }

    /// The algorithm token this reason routes to (the `algo` label of
    /// the `slcs_dispatch_total` series; same vocabulary as
    /// [`AlgoChoice::token`]).
    pub fn algo_token(&self) -> &'static str {
        match self {
            DispatchReason::SmallAlphabet | DispatchReason::EmptyInput => "bitpar",
            DispatchReason::GridSequential => "comb",
            DispatchReason::GridParallel => "grid",
            DispatchReason::EditWindowed | DispatchReason::EditDissimilar => "edit",
            DispatchReason::EditSimilar | DispatchReason::EditBoundedK => "osed",
            DispatchReason::CacheHit => "cached",
        }
    }
}

/// The dispatcher's pure routing verdict: which algorithm, and why.
/// Produced by [`decide`](crate::dispatch::decide) before the cache is
/// consulted (a hit then overrides both fields).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchDecision {
    pub algo: AlgoChoice,
    pub reason: DispatchReason,
}

/// Whether the kernel cache could help this request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Answered from a cached kernel index.
    Hit,
    /// Kernel computed (and inserted) by this request.
    Miss,
    /// The request never consulted the cache (score-only fast path).
    Bypass,
}

impl CacheStatus {
    /// Stable lowercase wire/trace token.
    pub fn token(&self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Bypass => "bypass",
        }
    }
}

/// Operation-specific result data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// `Operation::Lcs`.
    Score(usize),
    /// `Operation::Windows`: `scores[i] = LCS(a, b[i..i+w))`, plus the
    /// `(start, score)` of the best window (smallest start on ties).
    Windows { scores: Vec<usize>, best: (usize, usize) },
    /// `Operation::Edit`: global distance plus the optional
    /// `(start, end, distance)` of the closest window.
    Edit { global: usize, best: Option<(usize, usize, usize)> },
    /// `Operation::EditBounded`: the exact distance when it is `≤ k`,
    /// `None` when the BFS proved it exceeds the bound.
    EditBounded { distance: Option<usize>, k: usize },
}

/// A served request.
#[derive(Clone, Debug)]
pub struct CompareOutcome {
    pub payload: Payload,
    pub algo: AlgoChoice,
    pub cache: CacheStatus,
    /// Service time (compute only, excluding queue wait), in microseconds.
    pub service_micros: u64,
    /// Time spent queued before a worker picked the request up, in
    /// microseconds. Together with `service_micros` this attributes the
    /// full accept-to-answer latency per request: end-to-end ≈ wait +
    /// service, so a caller can tell backpressure from slow compute.
    pub wait_micros: u64,
}

/// Terminal failure of a submitted request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The engine is shutting down; the request was not served.
    ShuttingDown,
    /// The computation panicked; the worker survived and the panic
    /// message is surfaced to the one caller it affected.
    Internal(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_bounds_windows() {
        let req = |op| CompareRequest::new(&b"abc"[..], &b"abcdef"[..], op);
        assert!(req(Operation::Lcs).validate().is_ok());
        assert!(req(Operation::Windows { w: 6 }).validate().is_ok());
        assert!(req(Operation::Windows { w: 0 }).validate().is_err());
        assert!(req(Operation::Windows { w: 7 }).validate().is_err());
        assert!(req(Operation::Edit { w: None }).validate().is_ok());
        assert!(req(Operation::Edit { w: Some(7) }).validate().is_err());
    }
}
