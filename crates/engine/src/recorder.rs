//! The flight recorder: a lock-free ring of per-request audit records,
//! plus bounded slow-request trace exemplars.
//!
//! Aggregate metrics answer "how is the engine doing"; the flight
//! recorder answers "which requests were slow, and what did dispatch
//! choose for them" *after the fact*. Every completed request writes
//! one fixed-size audit record (request id, class, input bytes,
//! dispatch decision, scheduling mode, cache status, queue-wait ns,
//! service ns, worker-thread alloc-bytes delta, outcome) into a
//! fixed-capacity ring; the newest `capacity` records are always
//! available through the AUDIT protocol command and `slcs audit`.
//!
//! Records are written seqlock-style over plain atomics: the writer
//! claims a slot by ticket, zeroes the slot's token, stores the fields,
//! then publishes the new token with `Release`. A reader validates the
//! token before and after reading the fields and discards the slot on
//! mismatch, so a scrape racing a wrap loses that one slot rather than
//! reporting a spliced record. (Fields are atomics — a theoretical torn
//! read is stale data, never undefined behaviour.)
//!
//! Slow-request *exemplars* ride on `slcs_trace::capture`: the worker
//! arms a speculative span capture per request and, when the request
//! breaches its class SLO, retains the rendered span tree here (newest
//! [`SLOW_EXEMPLARS`], behind a mutex — strictly the cold path).

use std::collections::VecDeque;

use crate::metrics::SCHED_MODE_TOKENS;
use crate::request::{CacheStatus, DispatchReason, Operation};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;

/// Default audit-ring capacity (records).
pub const DEFAULT_CAPACITY: usize = 1024;

/// How many slow-request trace exemplars are retained (newest win).
pub const SLOW_EXEMPLARS: usize = 8;

/// Per-request speculative capture budget: the bounded number of trace
/// events buffered while a request runs, kept only if it breaches its
/// SLO (see [`slcs_trace::capture`]).
pub const CAPTURE_EVENTS: usize = 256;

/// Sentinel token for "not recorded" enum fields (a panicked request
/// never reached dispatch, so it has no reason/sched/cache).
const UNKNOWN: u8 = 0xff;

/// What the worker learned about one completed request.
pub struct AuditEvent {
    /// Engine-assigned request id (also the `req` span field).
    pub id: u64,
    /// [`Operation::class_index`] of the request.
    pub class: usize,
    /// Total input size, `pattern.len() + text.len()`.
    pub bytes: u64,
    /// Dispatch branch taken; `None` when the request failed before
    /// dispatch finished.
    pub reason: Option<DispatchReason>,
    /// Scheduling-mode token (`"seq"` or a [`SCHED_MODE_TOKENS`] value).
    pub sched: Option<&'static str>,
    pub cache: Option<CacheStatus>,
    pub wait_ns: u64,
    pub service_ns: u64,
    /// Bytes allocated on the worker thread while serving the request.
    pub alloc_bytes: u64,
    /// Whether the request produced a payload (false = panicked).
    pub ok: bool,
}

/// One decoded audit record, token fields resolved to the shared
/// vocabularies ("?" where the event never recorded them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditRecord {
    pub id: u64,
    pub class: &'static str,
    pub bytes: u64,
    pub algo: &'static str,
    pub reason: &'static str,
    pub sched: &'static str,
    pub cache: &'static str,
    pub wait_ns: u64,
    pub service_ns: u64,
    pub alloc_bytes: u64,
    pub ok: bool,
}

impl AuditRecord {
    /// The AUDIT wire line for this record (single line, `key=value`).
    pub fn to_line(&self) -> String {
        format!(
            "id={} class={} algo={} reason={} sched={} cache={} bytes={} \
             wait_ns={} service_ns={} alloc_bytes={} ok={}",
            self.id,
            self.class,
            self.algo,
            self.reason,
            self.sched,
            self.cache,
            self.bytes,
            self.wait_ns,
            self.service_ns,
            self.alloc_bytes,
            u8::from(self.ok),
        )
    }
}

/// A retained slow-request exemplar: the audit facts plus the rendered
/// worker-thread span tree captured while the request ran.
#[derive(Clone, Debug)]
pub struct SlowCapture {
    pub id: u64,
    pub class: &'static str,
    pub service_ns: u64,
    /// The class SLO (µs) the request breached.
    pub slo_micros: u64,
    /// `slcs_trace::Timeline::to_text_tree` output of the capture.
    pub tree: String,
}

struct Slot {
    /// Validation token: 0 = empty or mid-write, else ticket + 1.
    token: AtomicU64,
    id: AtomicU64,
    /// Packs class:8 | reason:8 | sched:8 | cache:8 | ok:8 (low bits).
    meta: AtomicU64,
    bytes: AtomicU64,
    wait_ns: AtomicU64,
    service_ns: AtomicU64,
    alloc_bytes: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            token: AtomicU64::new(0),
            id: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            service_ns: AtomicU64::new(0),
            alloc_bytes: AtomicU64::new(0),
        }
    }
}

fn encode_meta(ev: &AuditEvent) -> u64 {
    let class = ev.class.min(Operation::CLASS_COUNT - 1) as u64;
    let reason = ev.reason.map(|r| r.index() as u64).unwrap_or(UNKNOWN as u64);
    let sched = ev
        .sched
        .map(|token| {
            if token == "seq" {
                0u64
            } else {
                SCHED_MODE_TOKENS
                    .iter()
                    .position(|t| *t == token)
                    .map(|i| i as u64 + 1)
                    .unwrap_or(UNKNOWN as u64)
            }
        })
        .unwrap_or(UNKNOWN as u64);
    let cache = ev
        .cache
        .map(|c| match c {
            CacheStatus::Hit => 0u64,
            CacheStatus::Miss => 1,
            CacheStatus::Bypass => 2,
        })
        .unwrap_or(UNKNOWN as u64);
    (class << 32) | (reason << 24) | (sched << 16) | (cache << 8) | u64::from(ev.ok)
}

fn decode_meta(
    meta: u64,
) -> (&'static str, &'static str, &'static str, &'static str, &'static str, bool) {
    let class_ix = ((meta >> 32) & 0xff) as usize;
    let class = Operation::CLASS_TOKENS.get(class_ix).copied().unwrap_or("?");
    let reason_ix = ((meta >> 24) & 0xff) as usize;
    let (algo, reason) = DispatchReason::ALL
        .get(reason_ix)
        .map(|r| (r.algo_token(), r.token()))
        .unwrap_or(("?", "?"));
    let sched = match ((meta >> 16) & 0xff) as usize {
        0 => "seq",
        i => SCHED_MODE_TOKENS.get(i - 1).copied().unwrap_or("?"),
    };
    let cache = match (meta >> 8) & 0xff {
        0 => "hit",
        1 => "miss",
        2 => "bypass",
        _ => "?",
    };
    (class, algo, reason, sched, cache, meta & 1 == 1)
}

/// The fixed-capacity audit ring plus the slow-exemplar store.
pub struct FlightRecorder {
    /// Request-id source; ids start at 1 and never repeat.
    ids: AtomicU64,
    /// Ring write tickets; ticket % capacity is the slot index.
    tickets: AtomicU64,
    slots: Box<[Slot]>,
    slow: Mutex<VecDeque<SlowCapture>>,
}

impl FlightRecorder {
    /// A recorder retaining the newest `capacity` records; capacity 0
    /// disables the whole audit path (the engine then skips recording).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ids: AtomicU64::new(0),
            tickets: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            slow: Mutex::new(VecDeque::with_capacity(SLOW_EXEMPLARS)),
        }
    }

    /// Is the audit path on? (Capacity was non-zero.)
    pub fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The next request id (1-based, process-unique per engine).
    pub fn next_id(&self) -> u64 {
        // ORDERING: Relaxed — a unique-id counter; no data is published
        // through it.
        self.ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Appends one audit record, overwriting the oldest when full.
    pub fn record(&self, ev: &AuditEvent) {
        if self.slots.is_empty() {
            return;
        }
        // ORDERING: Relaxed — tickets only need uniqueness; the slot
        // token below carries the publish ordering.
        let ticket = self.tickets.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // ORDERING: Release — readers that saw the old token and then
        // see 0 know the slot is mid-write and discard it.
        slot.token.store(0, Ordering::Release);
        // ORDERING: Relaxed (all field stores) — published by the
        // token's Release store below.
        slot.id.store(ev.id, Ordering::Relaxed);
        slot.meta.store(encode_meta(ev), Ordering::Relaxed);
        slot.bytes.store(ev.bytes, Ordering::Relaxed);
        slot.wait_ns.store(ev.wait_ns, Ordering::Relaxed);
        slot.service_ns.store(ev.service_ns, Ordering::Relaxed);
        slot.alloc_bytes.store(ev.alloc_bytes, Ordering::Relaxed);
        // ORDERING: Release — publishes the field stores to readers
        // that Acquire-load this token.
        slot.token.store(ticket + 1, Ordering::Release);
    }

    /// The ring's current records, oldest first (write order). A slot
    /// being overwritten during the scrape is skipped, not spliced.
    pub fn snapshot(&self) -> Vec<AuditRecord> {
        let mut out: Vec<(u64, AuditRecord)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            // ORDERING: Acquire — pairs with the writer's Release so the
            // field loads below see that write's values.
            let before = slot.token.load(Ordering::Acquire);
            if before == 0 {
                continue;
            }
            // ORDERING: Relaxed (all field loads) — ordered after the
            // Acquire above; validated by the re-read below.
            let id = slot.id.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let bytes = slot.bytes.load(Ordering::Relaxed);
            let wait_ns = slot.wait_ns.load(Ordering::Relaxed);
            let service_ns = slot.service_ns.load(Ordering::Relaxed);
            let alloc_bytes = slot.alloc_bytes.load(Ordering::Relaxed);
            // ORDERING: Acquire — the token re-read must not be hoisted
            // above the field loads it validates.
            let after = slot.token.load(Ordering::Acquire);
            if after != before {
                continue;
            }
            let (class, algo, reason, sched, cache, ok) = decode_meta(meta);
            out.push((
                before,
                AuditRecord {
                    id,
                    class,
                    bytes,
                    algo,
                    reason,
                    sched,
                    cache,
                    wait_ns,
                    service_ns,
                    alloc_bytes,
                    ok,
                },
            ));
        }
        out.sort_by_key(|(ticket, _)| *ticket);
        out.into_iter().map(|(_, rec)| rec).collect()
    }

    /// Retains one slow-request exemplar, evicting the oldest past
    /// [`SLOW_EXEMPLARS`].
    pub fn note_slow(&self, capture: SlowCapture) {
        let mut slow = self.slow.lock().unwrap();
        if slow.len() >= SLOW_EXEMPLARS {
            slow.pop_front();
        }
        slow.push_back(capture);
    }

    /// The retained slow-request exemplars, oldest first.
    pub fn captures(&self) -> Vec<SlowCapture> {
        self.slow.lock().unwrap().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(id: u64, service_ns: u64) -> AuditEvent {
        AuditEvent {
            id,
            class: 0,
            bytes: 10,
            reason: Some(DispatchReason::SmallAlphabet),
            sched: Some("seq"),
            cache: Some(CacheStatus::Bypass),
            wait_ns: 500,
            service_ns,
            alloc_bytes: 64,
            ok: true,
        }
    }

    #[test]
    fn records_decode_with_shared_vocabulary() {
        let r = FlightRecorder::new(8);
        r.record(&AuditEvent {
            id: 1,
            class: 2,
            bytes: 4096,
            reason: Some(DispatchReason::EditSimilar),
            sched: Some("work_steal"),
            cache: Some(CacheStatus::Miss),
            wait_ns: 1_000,
            service_ns: 2_000_000,
            alloc_bytes: 12_345,
            ok: true,
        });
        let recs = r.snapshot();
        assert_eq!(recs.len(), 1);
        let rec = &recs[0];
        assert_eq!(rec.class, "edit");
        assert_eq!(rec.algo, "osed");
        assert_eq!(rec.reason, "edit_similar");
        assert_eq!(rec.sched, "work_steal");
        assert_eq!(rec.cache, "miss");
        assert!(rec.ok);
        let line = rec.to_line();
        assert!(line.contains("id=1"), "{line}");
        assert!(line.contains("reason=edit_similar"), "{line}");
        assert!(line.contains("service_ns=2000000"), "{line}");
        assert!(line.contains("ok=1"), "{line}");
    }

    #[test]
    fn failed_requests_record_unknown_dispatch_fields() {
        let r = FlightRecorder::new(4);
        r.record(&AuditEvent {
            id: 9,
            class: 1,
            bytes: 100,
            reason: None,
            sched: None,
            cache: None,
            wait_ns: 1,
            service_ns: 2,
            alloc_bytes: 0,
            ok: false,
        });
        let rec = &r.snapshot()[0];
        assert_eq!(rec.class, "windows");
        assert_eq!((rec.algo, rec.reason, rec.sched, rec.cache), ("?", "?", "?", "?"));
        assert!(!rec.ok);
        assert!(rec.to_line().contains("ok=0"));
    }

    #[test]
    fn ring_wraps_keeping_the_newest_records_in_order() {
        let r = FlightRecorder::new(4);
        for i in 1..=10u64 {
            r.record(&event(i, i * 100));
        }
        let recs = r.snapshot();
        assert_eq!(recs.len(), 4, "capacity bounds retention");
        let ids: Vec<u64> = recs.iter().map(|r| r.id).collect();
        assert_eq!(ids, [7, 8, 9, 10], "oldest-first, newest retained");
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let r = FlightRecorder::new(0);
        assert!(!r.enabled());
        r.record(&event(1, 100));
        assert!(r.snapshot().is_empty());
        assert!(r.next_id() >= 1, "ids still flow for span args");
    }

    #[test]
    fn slow_captures_are_bounded_newest_win() {
        let r = FlightRecorder::new(4);
        for i in 0..(SLOW_EXEMPLARS as u64 + 3) {
            r.note_slow(SlowCapture {
                id: i,
                class: "lcs",
                service_ns: 1,
                slo_micros: 0,
                tree: String::new(),
            });
        }
        let caps = r.captures();
        assert_eq!(caps.len(), SLOW_EXEMPLARS);
        assert_eq!(caps.first().map(|c| c.id), Some(3), "oldest evicted");
        assert_eq!(caps.last().map(|c| c.id), Some(SLOW_EXEMPLARS as u64 + 2));
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let r = FlightRecorder::new(2);
        let a = r.next_id();
        let b = r.next_id();
        assert!(b > a);
    }
}
