//! Synchronization facade for the engine's queueing layer.
//!
//! Mirrors `vendor/rayon/src/sync.rs`: a normal build resolves to `std`
//! (same types, zero overhead); built with
//! `RUSTFLAGS="--cfg slcs_model_check"` it resolves to the instrumented
//! `shim_loom` primitives so the model checker can explore the real
//! queue/ticket protocols (see `docs/SAFETY.md`).

#[cfg(not(slcs_model_check))]
pub(crate) use std::sync::{Condvar, Mutex};

#[cfg(slcs_model_check)]
pub(crate) use shim_loom::sync::{Condvar, Mutex};
