//! Synchronization facade for the engine's queueing layer.
//!
//! Mirrors `vendor/rayon/src/sync.rs`: a normal build resolves to `std`
//! (same types, zero overhead); built with
//! `RUSTFLAGS="--cfg slcs_model_check"` it resolves to the instrumented
//! `shim_loom` primitives so the model checker can explore the real
//! queue/ticket protocols (see `docs/SAFETY.md`).

#[cfg(not(slcs_model_check))]
pub(crate) use std::sync::{Condvar, Mutex};

#[cfg(slcs_model_check)]
pub(crate) use shim_loom::sync::{Condvar, Mutex};

/// Atomics facade: engine code outside this module and `metrics.rs` may
/// not import `std::sync::atomic` directly (`cargo xtask lint` enforces
/// this), so a model-check build instruments every atomic the engine's
/// coordination actually uses.
pub(crate) mod atomic {
    #[cfg(not(slcs_model_check))]
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(slcs_model_check)]
    pub(crate) use shim_loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Interior-mutability facade mirroring `vendor/rayon/src/sync.rs::cell`:
/// protocol-guarded non-atomic state goes through a tracked cell so the
/// model checker's race detector audits it; a normal build is a
/// zero-cost `std::cell::UnsafeCell` wrapper.
pub(crate) mod cell {
    #[cfg(slcs_model_check)]
    pub(crate) use shim_loom::cell::UnsafeCell;

    #[cfg(not(slcs_model_check))]
    #[derive(Debug, Default)]
    pub(crate) struct UnsafeCell<T: ?Sized> {
        inner: std::cell::UnsafeCell<T>,
    }

    #[cfg(not(slcs_model_check))]
    impl<T> UnsafeCell<T> {
        pub(crate) const fn new(data: T) -> UnsafeCell<T> {
            UnsafeCell { inner: std::cell::UnsafeCell::new(data) }
        }
    }

    #[cfg(not(slcs_model_check))]
    // Mirrors the shim's full API; not every crate uses every accessor
    // in the std build, and trimming would desync the two cfg arms.
    #[allow(dead_code)]
    impl<T: ?Sized> UnsafeCell<T> {
        /// Shared access; the closure receives `*const T`.
        #[inline(always)]
        pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.inner.get())
        }

        /// Exclusive access; the closure receives `*mut T`. Exclusivity
        /// is the caller's protocol invariant — exactly what the model
        /// build verifies.
        #[inline(always)]
        pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.inner.get())
        }

        #[inline(always)]
        pub(crate) fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }
}
