//! Sharded LRU cache of semi-local kernels and their query indexes.
//!
//! The expensive part of every engine operation is the O(mn) combing
//! pass; the kernel it produces answers *all* substring queries for the
//! pair, so caching it turns repeat comparisons into O(log² n) index
//! lookups. Entries are keyed by `(operation family, hash(a), hash(b),
//! |a|, |b|)` — hashing the bytes instead of storing them keeps keys
//! small; lengths are kept alongside the 64-bit hashes so a collision
//! additionally has to match both lengths.
//!
//! The map is split into [`SHARDS`] independently locked shards (shard =
//! key hash modulo), so concurrent workers on different pairs rarely
//! contend. Each shard runs an LRU policy on a logical clock: hits
//! restamp the entry, and insertion past capacity evicts the
//! least-recently-stamped entry of that shard (an O(shard len) scan —
//! shards are small and evictions rare, so this beats maintaining an
//! intrusive list under a lock).

use crate::sync::atomic::{AtomicU64, Ordering};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use slcs_semilocal::{EditDistances, SemiLocalKernel, SemiLocalScores};

pub const SHARDS: usize = 8;

/// FNV-1a over a byte string; the cache's content hash.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Which index family an entry belongs to. A plain LCS kernel and an
/// edit-distance index over the same pair are different objects.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq)]
pub enum IndexKind {
    Plain,
    Edit,
}

/// Cache key: operation family, content hashes and lengths of the pair.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq)]
pub struct CacheKey {
    pub kind: IndexKind,
    pub pattern_hash: u64,
    pub text_hash: u64,
    pub pattern_len: usize,
    pub text_len: usize,
}

impl CacheKey {
    pub fn new(kind: IndexKind, pattern: &[u8], text: &[u8]) -> Self {
        CacheKey {
            kind,
            pattern_hash: hash_bytes(pattern),
            text_hash: hash_bytes(text),
            pattern_len: pattern.len(),
            text_len: text.len(),
        }
    }

    fn shard(&self) -> usize {
        // Mix both hashes so pairs sharing a pattern still spread out.
        (self.pattern_hash.rotate_left(17).wrapping_add(self.text_hash).wrapping_add(matches!(
            self.kind,
            IndexKind::Edit
        )
            as u64)
            % SHARDS as u64) as usize
    }
}

/// A cached kernel with its lazily built query index.
///
/// Combing produces the kernel permutation; building the
/// dominance-counting index on top is a separate O(N log N) step that
/// only window/substring queries need, so it is deferred behind a
/// `OnceLock` — a global-LCS request that misses the cache never pays
/// for it, but the first window query on the entry builds it once for
/// every later hit.
pub struct PlainEntry {
    kernel: SemiLocalKernel,
    scores: OnceLock<SemiLocalScores>,
}

impl PlainEntry {
    pub fn new(kernel: SemiLocalKernel) -> Self {
        PlainEntry { kernel, scores: OnceLock::new() }
    }

    pub fn kernel(&self) -> &SemiLocalKernel {
        &self.kernel
    }

    pub fn scores(&self) -> &SemiLocalScores {
        self.scores.get_or_init(|| self.kernel.index())
    }
}

/// The two index families the engine caches.
#[derive(Clone)]
pub enum CachedIndex {
    Plain(Arc<PlainEntry>),
    Edit(Arc<EditDistances>),
}

struct Slot {
    value: CachedIndex,
    stamp: u64,
}

/// Sharded LRU keyed by [`CacheKey`].
pub struct KernelCache {
    shards: Vec<Mutex<HashMap<CacheKey, Slot>>>,
    capacity_per_shard: usize,
    clock: AtomicU64,
}

impl KernelCache {
    /// `capacity` is the total entry budget across all shards
    /// (rounded up to a multiple of [`SHARDS`], minimum one per shard).
    pub fn new(capacity: usize) -> Self {
        KernelCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity_per_shard: capacity.div_ceil(SHARDS).max(1),
            clock: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        // ORDERING: Relaxed — LRU clock tick; only monotonicity matters, and the
        // stamps it feeds are read under the shard lock.
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up `key`, restamping it on hit.
    pub fn get(&self, key: &CacheKey) -> Option<CachedIndex> {
        let mut shard = self.shards[key.shard()].lock().unwrap();
        let stamp = self.tick();
        shard.get_mut(key).map(|slot| {
            slot.stamp = stamp;
            slot.value.clone()
        })
    }

    /// Inserts `value` under `key`, evicting the shard's least recently
    /// used entry if the shard is at capacity. Returns the number of
    /// evictions (0 or 1).
    pub fn insert(&self, key: CacheKey, value: CachedIndex) -> u64 {
        let mut shard = self.shards[key.shard()].lock().unwrap();
        let stamp = self.tick();
        let mut evicted = 0;
        if shard.len() >= self.capacity_per_shard && !shard.contains_key(&key) {
            if let Some(oldest) = shard.iter().min_by_key(|(_, slot)| slot.stamp).map(|(k, _)| *k) {
                shard.remove(&oldest);
                evicted = 1;
            }
        }
        shard.insert(key, Slot { value, stamp });
        evicted
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slcs_semilocal::iterative_combing;

    fn entry(a: &[u8], b: &[u8]) -> CachedIndex {
        CachedIndex::Plain(Arc::new(PlainEntry::new(iterative_combing(a, b))))
    }

    #[test]
    fn hit_returns_same_index() {
        let cache = KernelCache::new(16);
        let key = CacheKey::new(IndexKind::Plain, b"abcab", b"bcaba");
        assert!(cache.get(&key).is_none());
        cache.insert(key, entry(b"abcab", b"bcaba"));
        let CachedIndex::Plain(e) = cache.get(&key).expect("hit") else { panic!("wrong family") };
        assert_eq!(e.kernel().lcs(), iterative_combing(b"abcab", b"bcaba").lcs());
        // The lazy index agrees with the kernel.
        assert_eq!(e.scores().lcs(), e.kernel().lcs());
    }

    #[test]
    fn kinds_do_not_collide() {
        let plain = CacheKey::new(IndexKind::Plain, b"xy", b"yx");
        let edit = CacheKey::new(IndexKind::Edit, b"xy", b"yx");
        assert_ne!(plain, edit);
        let cache = KernelCache::new(16);
        cache.insert(plain, entry(b"xy", b"yx"));
        assert!(cache.get(&edit).is_none());
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        // Capacity 8 → one slot per shard; two keys in the same shard
        // must evict each other, and the recently used one survives.
        let cache = KernelCache::new(SHARDS);
        let mut keys: Vec<CacheKey> = Vec::new();
        let mut texts = Vec::new();
        let mut i = 0u32;
        while keys.len() < 3 {
            let text = format!("t{i}");
            let key = CacheKey::new(IndexKind::Plain, b"ab", text.as_bytes());
            if keys.is_empty() || key.shard() == keys[0].shard() {
                keys.push(key);
                texts.push(text);
            }
            i += 1;
        }
        cache.insert(keys[0], entry(b"ab", texts[0].as_bytes()));
        cache.insert(keys[1], entry(b"ab", texts[1].as_bytes()));
        // keys[0] was evicted by keys[1] (shard capacity 1).
        assert!(cache.get(&keys[0]).is_none());
        assert!(cache.get(&keys[1]).is_some());
        let evicted = cache.insert(keys[2], entry(b"ab", texts[2].as_bytes()));
        assert_eq!(evicted, 1);
        assert!(cache.get(&keys[2]).is_some());
    }

    #[test]
    fn content_hash_distinguishes_strings() {
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ba"));
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
    }
}
