//! A minimal TCP line protocol in front of an [`Engine`].
//!
//! One request per line, one response line per request (`\n`
//! terminated, ASCII tokens separated by single spaces):
//!
//! ```text
//! LCS <pattern> <text>             → OK <score> <algo> <cache>
//! WINDOWS <w> <pattern> <text>     → OK <best_start> <best_score> <s0,s1,…>
//! EDIT <pattern> <text> [<w>]      → OK <global> [<start> <end> <dist>]
//! EDIT <pattern> <text> k=<K>      → OK <dist> | OK gt <K>   (bounded: exact iff ≤ K)
//! STATS                            → OK key=value … (incl. raw histogram buckets)
//! METRICS                          → Prometheus text exposition, `# EOF`-terminated
//! HEALTH                           → OK | DEGRADED <reason>; <reason>  (SLO verdict)
//! AUDIT [N|slowest|class|reason|captures] → flight-recorder dump, `# EOF`-terminated
//! TRACE on|off|dump                → tracing control (gated by ServerConfig)
//! PING                             → OK pong
//! QUIT                             → OK bye (server closes the connection)
//! ```
//!
//! Error responses: `ERR <reason>` for malformed or invalid requests,
//! `BUSY` when the engine's bounded queue rejects the submission —
//! backpressure is forwarded to the client verbatim rather than queued
//! invisibly, so a load balancer can react to it. Server-side failures
//! are counted by kind in `slcs_engine_errors_total{kind}` (malformed
//! lines, over-length lines, queue-full rejections, worker panics) and
//! the same counts feed the HEALTH error-budget check.
//!
//! `METRICS` and `AUDIT` are the two deliberate exceptions to one-line
//! responses: `METRICS` returns the standard multi-line Prometheus
//! exposition and `AUDIT` one line per audit record (or capture tree),
//! both terminated by a `# EOF` line clients read until (see
//! docs/OBSERVABILITY.md). `TRACE dump` stays single-line: the
//! Chrome-tracing JSON is emitted compact, after an `OK ` prefix.
//!
//! The accept loop polls a stop flag (non-blocking accept + short
//! sleeps) and per-connection reads carry a timeout, so
//! [`ServerHandle::stop`] shuts the whole thing down without help from
//! the clients.

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::Engine;
use crate::metrics::ErrorKind;
use crate::queue::Submit;
use crate::recorder::FlightRecorder;
use crate::request::{CompareRequest, DispatchReason, Operation, Payload};
use crate::slo::SloTable;

/// Longest request line the server will process; anything longer is
/// rejected (`ERR line too long`) and counted as an `oversize` error.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// How many audit records `AUDIT` returns when no count is given.
pub const AUDIT_DEFAULT_LIMIT: usize = 16;

/// Limits for one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connections handled concurrently; extra clients get `BUSY`.
    pub max_connections: usize,
    /// Whether clients may drive the `TRACE on|off|dump` command.
    /// Tracing is process-global and a dump reveals request timings, so
    /// operators can turn the surface off for untrusted networks
    /// (`ERR tracing disabled` is returned instead). `METRICS`/`STATS`
    /// stay available either way.
    pub allow_trace: bool,
    /// Per-class latency targets, queue bound and error budget that the
    /// `HEALTH` command evaluates. Independent from the engine's own
    /// [`EngineConfig::slo`](crate::EngineConfig) (which drives slow
    /// capture), so an operator can probe a tighter target than the one
    /// that triggers exemplars.
    pub slo: SloTable,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_connections: 64, allow_trace: true, slo: SloTable::default() }
    }
}

/// A running server: address, stop flag, accept-thread handle.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Signals the accept loop and all connection handlers to exit,
    /// then joins the accept thread.
    pub fn stop(mut self) {
        // ORDERING: Relaxed — stop flag; the accept loop only needs eventual visibility.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // ORDERING: Relaxed — stop flag; the accept loop only needs eventual visibility.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves the engine on a background thread. Bind to
/// port 0 to let the OS pick (the handle reports the real address).
pub fn spawn(
    addr: impl ToSocketAddrs,
    engine: Arc<Engine>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_for_loop = stop.clone();
    let thread = std::thread::Builder::new()
        .name("slcs-engine-accept".into())
        .spawn(move || accept_loop(listener, engine, config, stop_for_loop))?;
    Ok(ServerHandle { addr, stop, thread: Some(thread) })
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<Engine>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
) {
    // PANIC: a listener that cannot go nonblocking cannot serve; fail fast at startup.
    listener.set_nonblocking(true).expect("nonblocking listener");
    let live = Arc::new(AtomicUsize::new(0));
    let mut handlers = Vec::new();
    // ORDERING: Relaxed — pairs with the Relaxed stop stores; the accept
    // timeout bounds how stale the flag can be observed.
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Request-response protocol: Nagle + delayed ACK adds
                // ~40ms to every round trip, dwarfing sub-ms service
                // times. Best-effort — a failed setsockopt still serves.
                let _ = stream.set_nodelay(true);
                // ORDERING: Relaxed — best-effort connection cap; exactness is not required.
                if live.load(Ordering::Relaxed) >= config.max_connections {
                    let mut stream = stream;
                    let _ = stream.write_all(b"BUSY\n");
                    continue;
                }
                // ORDERING: Relaxed — plain live-handler count, see the cap check above.
                live.fetch_add(1, Ordering::Relaxed);
                let engine = engine.clone();
                let stop = stop.clone();
                let live = live.clone();
                let config = config.clone();
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_client(stream, &engine, &config, &stop);
                    // ORDERING: Relaxed — plain live-handler count, see the cap check above.
                    live.fetch_sub(1, Ordering::Relaxed);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_client(
    stream: TcpStream,
    engine: &Engine,
    config: &ServerConfig,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // ORDERING: Relaxed — same stop-flag polling as the accept loop.
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
        let response = respond(line.trim(), engine, config);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if line.trim().eq_ignore_ascii_case("QUIT") {
            return Ok(());
        }
    }
}

fn joined_buckets(buckets: &[u64]) -> String {
    buckets.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(",")
}

/// The multi-line `METRICS` response: engine counters/gauges/histograms
/// (from [`StatsSnapshot::to_prometheus`]) plus executor and tracing
/// sections, terminated by `# EOF`.
fn metrics_exposition(engine: &Engine) -> String {
    let mut out = engine.stats().to_prometheus();
    // Build identity + uptime: scrapers join on the version label and
    // detect restarts by the uptime gauge going backwards.
    out.push_str(&format!(
        "# TYPE slcs_build_info gauge\nslcs_build_info{{version=\"{}\"}} 1\n",
        env!("CARGO_PKG_VERSION")
    ));
    out.push_str(&format!(
        "# TYPE slcs_uptime_seconds gauge\nslcs_uptime_seconds {}\n",
        engine.uptime_seconds()
    ));
    let pool = rayon::pool_stats();
    for (name, value) in [
        ("slcs_pool_jobs_executed", pool.jobs_executed),
        ("slcs_pool_injector_pops", pool.injector_pops),
        ("slcs_pool_deque_pushes", pool.deque_pushes),
        ("slcs_pool_local_hits", pool.local_hits),
        ("slcs_pool_steals", pool.steals),
        ("slcs_pool_parks", pool.parks),
        ("slcs_pool_unparks", pool.unparks),
        ("slcs_pool_team_runs", pool.team_runs),
        ("slcs_pool_barrier_waits", pool.barrier_waits),
        ("slcs_pool_barrier_wait_micros", pool.barrier_wait_micros),
    ] {
        out.push_str(&format!("# TYPE {name}_total counter\n{name}_total {value}\n"));
    }
    let trace = slcs_trace::stats();
    for (name, value) in [
        ("slcs_trace_enabled", u64::from(slcs_trace::enabled())),
        ("slcs_trace_events_recorded", trace.recorded),
        ("slcs_trace_events_dropped", trace.dropped),
        ("slcs_trace_thread_buffers", trace.threads as u64),
    ] {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    out.push_str("# EOF");
    out
}

/// The multi-line `AUDIT` response: `OK <count>`, one line per
/// selected record (or capture), then `# EOF`.
fn audit_response(recorder: &FlightRecorder, args: &[String]) -> String {
    fn parse_limit(arg: Option<&String>) -> Result<usize, String> {
        match arg {
            None => Ok(AUDIT_DEFAULT_LIMIT),
            Some(s) => s.parse().map_err(|_| "ERR count must be an integer".to_string()),
        }
    }
    fn render(mut records: Vec<crate::recorder::AuditRecord>, limit: usize) -> String {
        records.truncate(limit);
        let mut out = format!("OK {}", records.len());
        for rec in &records {
            out.push('\n');
            out.push_str(&rec.to_line());
        }
        out.push_str("\n# EOF");
        out
    }
    // Snapshot order is oldest-first; dumps read best newest-first.
    let newest_first = || {
        let mut records = recorder.snapshot();
        records.reverse();
        records
    };
    match args.first().map(String::as_str) {
        None => render(newest_first(), AUDIT_DEFAULT_LIMIT),
        Some("slowest") => {
            let limit = match parse_limit(args.get(1)) {
                Ok(n) => n,
                Err(e) => return e,
            };
            let mut records = recorder.snapshot();
            records.sort_by_key(|r| std::cmp::Reverse(r.service_ns));
            render(records, limit)
        }
        Some(filter @ ("class" | "reason")) => {
            let Some(token) = args.get(1) else {
                return format!("ERR usage: AUDIT {filter} <token> [N]");
            };
            let limit = match parse_limit(args.get(2)) {
                Ok(n) => n,
                Err(e) => return e,
            };
            let records = newest_first()
                .into_iter()
                .filter(|r| if filter == "class" { r.class == token } else { r.reason == token })
                .collect();
            render(records, limit)
        }
        Some("captures") => {
            let captures = recorder.captures();
            let mut out = format!("OK {}", captures.len());
            for cap in &captures {
                out.push('\n');
                out.push_str(&format!(
                    "capture id={} class={} service_ns={} slo_us={}",
                    cap.id, cap.class, cap.service_ns, cap.slo_micros
                ));
                for line in cap.tree.lines() {
                    out.push('\n');
                    out.push_str(line);
                }
            }
            out.push_str("\n# EOF");
            out
        }
        Some(n) if n.parse::<usize>().is_ok() => {
            // PANIC: the guard above established the parse succeeds.
            render(newest_first(), n.parse().unwrap())
        }
        Some(_) => {
            "ERR usage: AUDIT [N | slowest [N] | class <c> [N] | reason <r> [N] | captures]".into()
        }
    }
}

/// Parses one request line and produces the response (no trailing
/// newline; only `METRICS` and `AUDIT` span multiple lines). Counts
/// protocol-level failures into `slcs_engine_errors_total{kind}`.
pub fn respond(line: &str, engine: &Engine, config: &ServerConfig) -> String {
    if line.len() > MAX_LINE_BYTES {
        engine.metrics().note_error(ErrorKind::Oversize);
        return format!("ERR line too long (max {MAX_LINE_BYTES} bytes)");
    }
    let response = respond_inner(line, engine, config);
    if response == "BUSY" {
        engine.metrics().note_error(ErrorKind::QueueFull);
    } else if response.starts_with("ERR")
        // Worker panics and shutdown races are engine-side failures:
        // panics were already counted as `internal` by the worker, and
        // neither is the client's line being malformed.
        && !response.starts_with("ERR internal engine error")
        && !response.starts_with("ERR engine is shutting down")
    {
        engine.metrics().note_error(ErrorKind::Malformed);
    }
    response
}

fn respond_inner(line: &str, engine: &Engine, config: &ServerConfig) -> String {
    let mut parts = line.split_ascii_whitespace();
    let Some(cmd) = parts.next() else {
        return "ERR empty request".into();
    };
    let req = match cmd.to_ascii_uppercase().as_str() {
        "PING" => return "OK pong".into(),
        "QUIT" => return "OK bye".into(),
        "STATS" => {
            let s = engine.stats();
            let dispatch = DispatchReason::ALL
                .iter()
                .map(|r| format!("{}:{}", r.token(), s.dispatch[r.index()]))
                .collect::<Vec<_>>()
                .join(",");
            let errors = ErrorKind::ALL
                .iter()
                .map(|k| format!("{}:{}", k.token(), s.errors[k.index()]))
                .collect::<Vec<_>>()
                .join(",");
            return format!(
                "OK submitted={} accepted={} completed={} queue_full={} invalid={} \
                 hits={} misses={} evictions={} batches={} coalesced={} \
                 depth={} max_depth={} par_grain={} simd={} dispatch={dispatch} \
                 errors={errors} \
                 wait_sum={} service_sum={} \
                 allocs={} frees={} live_bytes={} peak_live_bytes={} alloc_installed={} \
                 wait_buckets={} service_buckets={} latency_windows={}",
                s.submitted,
                s.accepted,
                s.completed,
                s.rejected_queue_full,
                s.rejected_invalid,
                s.cache_hits,
                s.cache_misses,
                s.cache_evictions,
                s.batches,
                s.coalesced,
                s.queue_depth,
                s.max_queue_depth,
                s.par_grain,
                s.simd,
                s.wait_micros.sum,
                s.service_micros.sum,
                s.alloc.allocs,
                s.alloc.frees,
                s.alloc.live_bytes,
                s.alloc.peak_live_bytes,
                u8::from(s.alloc_installed),
                joined_buckets(&s.wait_micros.buckets),
                joined_buckets(&s.service_micros.buckets),
                s.windows.stats_field(),
            );
        }
        "METRICS" => return metrics_exposition(engine),
        "HEALTH" => return engine.health(&config.slo).verdict_line(),
        "AUDIT" => {
            let recorder = engine.recorder();
            if !recorder.enabled() {
                return "ERR audit disabled (recorder capacity 0)".into();
            }
            let args: Vec<String> = parts.map(str::to_ascii_lowercase).collect();
            return audit_response(recorder, &args);
        }
        "TRACE" => {
            if !config.allow_trace {
                return "ERR tracing disabled".into();
            }
            return match (parts.next().map(str::to_ascii_lowercase).as_deref(), parts.next()) {
                (Some("on"), None) => {
                    slcs_trace::enable_fresh();
                    "OK tracing on".into()
                }
                (Some("off"), None) => {
                    slcs_trace::set_enabled(false);
                    "OK tracing off".into()
                }
                (Some("dump"), None) => {
                    format!("OK {}", slcs_trace::drain().to_chrome_json())
                }
                _ => "ERR usage: TRACE on|off|dump".into(),
            };
        }
        "LCS" => {
            let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
                return "ERR usage: LCS <pattern> <text>".into();
            };
            CompareRequest::new(a.as_bytes(), b.as_bytes(), Operation::Lcs)
        }
        "WINDOWS" => {
            let (Some(w), Some(a), Some(b), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return "ERR usage: WINDOWS <w> <pattern> <text>".into();
            };
            let Ok(w) = w.parse::<usize>() else {
                return "ERR window must be an integer".into();
            };
            CompareRequest::new(a.as_bytes(), b.as_bytes(), Operation::Windows { w })
        }
        "EDIT" => {
            let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
                return "ERR usage: EDIT <pattern> <text> [<w> | k=<K>]".into();
            };
            let op = match (parts.next(), parts.next()) {
                (None, _) => Operation::Edit { w: None },
                (Some(arg), None) => {
                    if let Some(k) = arg.strip_prefix("k=") {
                        match k.parse::<usize>() {
                            Ok(k) => Operation::EditBounded { k },
                            Err(_) => return "ERR bound must be an integer".into(),
                        }
                    } else {
                        match arg.parse::<usize>() {
                            Ok(w) => Operation::Edit { w: Some(w) },
                            Err(_) => return "ERR window must be an integer".into(),
                        }
                    }
                }
                _ => return "ERR usage: EDIT <pattern> <text> [<w> | k=<K>]".into(),
            };
            CompareRequest::new(a.as_bytes(), b.as_bytes(), op)
        }
        other => return format!("ERR unknown command {other}"),
    };
    match engine.submit(req) {
        Submit::QueueFull => "BUSY".into(),
        Submit::Invalid(why) => format!("ERR {why}"),
        Submit::Accepted(ticket) => match ticket.wait() {
            Err(e) => format!("ERR {e}"),
            Ok(outcome) => match outcome.payload {
                Payload::Score(s) => {
                    format!("OK {s} {} {}", outcome.algo.token(), outcome.cache.token())
                }
                Payload::Windows { scores, best } => {
                    let list = scores.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(",");
                    format!("OK {} {} {list}", best.0, best.1)
                }
                Payload::Edit { global, best } => match best {
                    None => format!("OK {global}"),
                    Some((start, end, dist)) => format!("OK {global} {start} {end} {dist}"),
                },
                Payload::EditBounded { distance, k } => match distance {
                    Some(d) => format!("OK {d}"),
                    None => format!("OK gt {k}"),
                },
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn engine() -> Arc<Engine> {
        Arc::new(Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 16,
            batch_limit: 4,
            threads_per_request: 1,
            ..EngineConfig::default()
        }))
    }

    #[test]
    fn respond_parses_and_serves() {
        let engine = engine();
        let cfg = ServerConfig::default();
        assert_eq!(respond("PING", &engine, &cfg), "OK pong");
        assert_eq!(respond("LCS abcabba cbabac", &engine, &cfg), "OK 4 bitpar bypass");
        // Same pair again via WINDOWS builds a kernel; LCS then hits it.
        let windows = respond("WINDOWS 6 abcabba cbabac", &engine, &cfg);
        assert!(windows.starts_with("OK "), "{windows}");
        assert_eq!(respond("LCS abcabba cbabac", &engine, &cfg), "OK 4 cached hit");
        assert_eq!(respond("EDIT kitten sitting", &engine, &cfg), "OK 3");
        let best = respond("EDIT kitten sitting 6", &engine, &cfg);
        assert!(best.starts_with("OK 3 "), "{best}");
        assert!(respond("WINDOWS x a b", &engine, &cfg).starts_with("ERR"));
        assert!(respond("EDIT kitten sitting k=x", &engine, &cfg).starts_with("ERR bound"));
        assert!(respond("WINDOWS 9 ab xy", &engine, &cfg).starts_with("ERR"));
        assert!(respond("NOPE", &engine, &cfg).starts_with("ERR unknown"));
        let stats = respond("STATS", &engine, &cfg);
        // Two hits: LCS reusing the WINDOWS kernel, EDIT reusing the
        // first EDIT's index.
        assert!(stats.contains(" hits=2"), "{stats}");
        assert!(stats.contains(" dispatch="), "{stats}");
        assert!(stats.contains("cache_hit:2"), "{stats}");
        assert!(stats.contains(" wait_buckets="), "{stats}");
        assert!(stats.contains(" service_buckets="), "{stats}");
        assert!(stats.contains(" wait_sum="), "{stats}");
        assert!(stats.contains(" service_sum="), "{stats}");
        assert!(stats.contains(" allocs="), "{stats}");
        assert!(stats.contains(" peak_live_bytes="), "{stats}");
        assert!(stats.contains(" alloc_installed="), "{stats}");
        assert!(stats.contains(" errors=malformed:"), "{stats}");
        assert!(stats.contains(" latency_windows=lcs:10s:"), "{stats}");
    }

    #[test]
    fn health_reports_ok_on_a_quiet_engine() {
        let engine = engine();
        let cfg = ServerConfig::default();
        let _ = respond("LCS abcabba cbabac", &engine, &cfg);
        assert_eq!(respond("HEALTH", &engine, &cfg), "OK");
        // A zero-target SLO table must flip the verdict immediately.
        let strict = ServerConfig {
            slo: SloTable { p99_micros: [0; 4], ..SloTable::default() },
            ..ServerConfig::default()
        };
        let verdict = respond("HEALTH", &engine, &strict);
        assert!(verdict.starts_with("DEGRADED"), "{verdict}");
        assert!(verdict.contains("class lcs"), "{verdict}");
    }

    #[test]
    fn audit_dumps_filter_and_terminate_with_eof() {
        let engine = engine();
        let cfg = ServerConfig::default();
        let _ = respond("LCS abcabba cbabac", &engine, &cfg);
        let _ = respond("EDIT kitten sitting", &engine, &cfg);
        let _ = respond("EDIT kitten sitting", &engine, &cfg);

        let dump = respond("AUDIT", &engine, &cfg);
        assert!(dump.starts_with("OK 3\n"), "{dump}");
        assert!(dump.ends_with("# EOF"), "{dump}");
        // Newest-first: the cache-hitting EDIT leads.
        let first = dump.lines().nth(1).unwrap();
        assert!(first.contains("class=edit"), "{first}");
        assert!(first.contains("cache=hit"), "{first}");
        for line in dump.lines().skip(1).take(3) {
            for key in [
                "id=",
                "class=",
                "algo=",
                "reason=",
                "sched=",
                "cache=",
                "bytes=",
                "wait_ns=",
                "service_ns=",
                "alloc_bytes=",
                "ok=",
            ] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
        }

        let limited = respond("AUDIT 1", &engine, &cfg);
        assert_eq!(limited.lines().count(), 3, "{limited}"); // OK 1, record, # EOF

        let by_class = respond("AUDIT class lcs", &engine, &cfg);
        assert!(by_class.starts_with("OK 1\n"), "{by_class}");
        assert!(by_class.contains("class=lcs"), "{by_class}");

        let slowest = respond("AUDIT slowest 2", &engine, &cfg);
        assert!(slowest.starts_with("OK 2\n"), "{slowest}");
        let times: Vec<u64> = slowest
            .lines()
            .skip(1)
            .take(2)
            .map(|l| {
                l.split_whitespace()
                    .find_map(|kv| kv.strip_prefix("service_ns="))
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(times[0] >= times[1], "slowest-first ordering: {times:?}");

        let captures = respond("AUDIT captures", &engine, &cfg);
        assert!(captures.starts_with("OK "), "{captures}");
        assert!(captures.ends_with("# EOF"), "{captures}");
        assert!(respond("AUDIT sideways", &engine, &cfg).starts_with("ERR usage"));
        assert!(respond("AUDIT class", &engine, &cfg).starts_with("ERR usage"));
    }

    #[test]
    fn protocol_failures_are_counted_by_kind() {
        let engine = engine();
        let cfg = ServerConfig::default();
        let long = format!("LCS {} b", "a".repeat(MAX_LINE_BYTES + 1));
        assert!(respond(&long, &engine, &cfg).starts_with("ERR line too long"));
        let _ = respond("NOPE", &engine, &cfg);
        let _ = respond("WINDOWS x a b", &engine, &cfg);
        let stats = engine.stats();
        assert_eq!(stats.errors[crate::metrics::ErrorKind::Oversize.index()], 1);
        assert_eq!(stats.errors[crate::metrics::ErrorKind::Malformed.index()], 2);
        let line = respond("STATS", &engine, &cfg);
        assert!(line.contains("errors=malformed:2,oversize:1,queue_full:0,internal:0"), "{line}");
    }

    #[test]
    fn bounded_edit_answers_exact_or_gt() {
        let engine = engine();
        let cfg = ServerConfig::default();
        // d(kitten, sitting) = 3: exact at k ≥ 3, "gt" below.
        assert_eq!(respond("EDIT kitten sitting k=3", &engine, &cfg), "OK 3");
        assert_eq!(respond("EDIT kitten sitting k=2", &engine, &cfg), "OK gt 2");
        assert_eq!(respond("EDIT kitten sitting k=0", &engine, &cfg), "OK gt 0");
        assert_eq!(respond("EDIT same same k=0", &engine, &cfg), "OK 0");
    }

    #[test]
    fn metrics_exposition_is_eof_terminated_prometheus_text() {
        let engine = engine();
        let cfg = ServerConfig::default();
        let _ = respond("LCS abcabba cbabac", &engine, &cfg);
        let body = respond("METRICS", &engine, &cfg);
        assert!(body.ends_with("# EOF"), "{body}");
        for needle in [
            "slcs_requests_submitted_total 1",
            "slcs_queue_depth ",
            "slcs_wait_micros_bucket{le=\"2\"}",
            "slcs_wait_micros_sum ",
            "slcs_service_micros_count 1",
            "slcs_service_micros_sum ",
            "slcs_pool_jobs_executed_total ",
            "slcs_trace_enabled ",
            "slcs_build_info{version=\"",
            "slcs_uptime_seconds ",
            "slcs_alloc_allocations_total ",
            "slcs_alloc_peak_live_bytes ",
            "slcs_alloc_size_bytes_bucket{le=\"+Inf\"}",
            "slcs_alloc_installed ",
        ] {
            assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in body.lines().filter(|l| !l.starts_with('#')) {
            let mut it = line.rsplitn(2, ' ');
            let value = it.next().unwrap();
            assert!(it.next().is_some(), "bad exposition line {line:?}");
            assert!(value.parse::<f64>().is_ok(), "bad value in line {line:?}");
        }
    }

    #[test]
    fn trace_command_respects_allow_trace_gate() {
        let engine = engine();
        let gated = ServerConfig { allow_trace: false, ..ServerConfig::default() };
        assert_eq!(respond("TRACE on", &engine, &gated), "ERR tracing disabled");

        let _guard = slcs_trace::test_support::hold();
        let cfg = ServerConfig::default();
        assert_eq!(respond("TRACE on", &engine, &cfg), "OK tracing on");
        let _ = respond("LCS abcabba cbabac", &engine, &cfg);
        assert_eq!(respond("TRACE off", &engine, &cfg), "OK tracing off");
        let dump = respond("TRACE dump", &engine, &cfg);
        assert!(dump.starts_with("OK {\"traceEvents\":["), "{dump}");
        assert!(dump.contains("engine.request"), "{dump}");
        assert!(respond("TRACE sideways", &engine, &cfg).starts_with("ERR usage"));
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let engine = engine();
        let handle = spawn("127.0.0.1:0", engine.clone(), ServerConfig::default()).expect("bind");
        let addr = handle.addr();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();

        writer.write_all(b"LCS acgtacgt gtacgtac\nSTATS\nQUIT\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK "), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK submitted="), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK bye");
        // Server closes our connection after QUIT.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
        handle.stop();
    }
}
