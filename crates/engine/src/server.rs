//! A minimal TCP line protocol in front of an [`Engine`].
//!
//! One request per line, one response line per request (`\n`
//! terminated, ASCII tokens separated by single spaces):
//!
//! ```text
//! LCS <pattern> <text>             → OK <score> <algo> <cache>
//! WINDOWS <w> <pattern> <text>     → OK <best_start> <best_score> <s0,s1,…>
//! EDIT <pattern> <text> [<w>]      → OK <global> [<start> <end> <dist>]
//! EDIT <pattern> <text> k=<K>      → OK <dist> | OK gt <K>   (bounded: exact iff ≤ K)
//! STATS                            → OK key=value … (incl. raw histogram buckets)
//! METRICS                          → Prometheus text exposition, `# EOF`-terminated
//! TRACE on|off|dump                → tracing control (gated by ServerConfig)
//! PING                             → OK pong
//! QUIT                             → OK bye (server closes the connection)
//! ```
//!
//! Error responses: `ERR <reason>` for malformed or invalid requests,
//! `BUSY` when the engine's bounded queue rejects the submission —
//! backpressure is forwarded to the client verbatim rather than queued
//! invisibly, so a load balancer can react to it.
//!
//! `METRICS` is the one deliberate exception to one-line responses: it
//! returns the standard multi-line Prometheus exposition, and clients
//! read until the `# EOF` terminator line (see docs/OBSERVABILITY.md).
//! `TRACE dump` stays single-line: the Chrome-tracing JSON is emitted
//! compact, after an `OK ` prefix.
//!
//! The accept loop polls a stop flag (non-blocking accept + short
//! sleeps) and per-connection reads carry a timeout, so
//! [`ServerHandle::stop`] shuts the whole thing down without help from
//! the clients.

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::Engine;
use crate::queue::Submit;
use crate::request::{CompareRequest, DispatchReason, Operation, Payload};

/// Limits for one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connections handled concurrently; extra clients get `BUSY`.
    pub max_connections: usize,
    /// Whether clients may drive the `TRACE on|off|dump` command.
    /// Tracing is process-global and a dump reveals request timings, so
    /// operators can turn the surface off for untrusted networks
    /// (`ERR tracing disabled` is returned instead). `METRICS`/`STATS`
    /// stay available either way.
    pub allow_trace: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_connections: 64, allow_trace: true }
    }
}

/// A running server: address, stop flag, accept-thread handle.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Signals the accept loop and all connection handlers to exit,
    /// then joins the accept thread.
    pub fn stop(mut self) {
        // ORDERING: Relaxed — stop flag; the accept loop only needs eventual visibility.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // ORDERING: Relaxed — stop flag; the accept loop only needs eventual visibility.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves the engine on a background thread. Bind to
/// port 0 to let the OS pick (the handle reports the real address).
pub fn spawn(
    addr: impl ToSocketAddrs,
    engine: Arc<Engine>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_for_loop = stop.clone();
    let thread = std::thread::Builder::new()
        .name("slcs-engine-accept".into())
        .spawn(move || accept_loop(listener, engine, config, stop_for_loop))?;
    Ok(ServerHandle { addr, stop, thread: Some(thread) })
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<Engine>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
) {
    // PANIC: a listener that cannot go nonblocking cannot serve; fail fast at startup.
    listener.set_nonblocking(true).expect("nonblocking listener");
    let live = Arc::new(AtomicUsize::new(0));
    let mut handlers = Vec::new();
    // ORDERING: Relaxed — pairs with the Relaxed stop stores; the accept
    // timeout bounds how stale the flag can be observed.
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // ORDERING: Relaxed — best-effort connection cap; exactness is not required.
                if live.load(Ordering::Relaxed) >= config.max_connections {
                    let mut stream = stream;
                    let _ = stream.write_all(b"BUSY\n");
                    continue;
                }
                // ORDERING: Relaxed — plain live-handler count, see the cap check above.
                live.fetch_add(1, Ordering::Relaxed);
                let engine = engine.clone();
                let stop = stop.clone();
                let live = live.clone();
                let config = config.clone();
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_client(stream, &engine, &config, &stop);
                    // ORDERING: Relaxed — plain live-handler count, see the cap check above.
                    live.fetch_sub(1, Ordering::Relaxed);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_client(
    stream: TcpStream,
    engine: &Engine,
    config: &ServerConfig,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // ORDERING: Relaxed — same stop-flag polling as the accept loop.
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
        let response = respond(line.trim(), engine, config);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if line.trim().eq_ignore_ascii_case("QUIT") {
            return Ok(());
        }
    }
}

fn joined_buckets(buckets: &[u64]) -> String {
    buckets.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(",")
}

/// The multi-line `METRICS` response: engine counters/gauges/histograms
/// (from [`StatsSnapshot::to_prometheus`]) plus executor and tracing
/// sections, terminated by `# EOF`.
fn metrics_exposition(engine: &Engine) -> String {
    let mut out = engine.stats().to_prometheus();
    // Build identity + uptime: scrapers join on the version label and
    // detect restarts by the uptime gauge going backwards.
    out.push_str(&format!(
        "# TYPE slcs_build_info gauge\nslcs_build_info{{version=\"{}\"}} 1\n",
        env!("CARGO_PKG_VERSION")
    ));
    out.push_str(&format!(
        "# TYPE slcs_uptime_seconds gauge\nslcs_uptime_seconds {}\n",
        engine.uptime_seconds()
    ));
    let pool = rayon::pool_stats();
    for (name, value) in [
        ("slcs_pool_jobs_executed", pool.jobs_executed),
        ("slcs_pool_injector_pops", pool.injector_pops),
        ("slcs_pool_deque_pushes", pool.deque_pushes),
        ("slcs_pool_local_hits", pool.local_hits),
        ("slcs_pool_steals", pool.steals),
        ("slcs_pool_parks", pool.parks),
        ("slcs_pool_unparks", pool.unparks),
        ("slcs_pool_team_runs", pool.team_runs),
        ("slcs_pool_barrier_waits", pool.barrier_waits),
        ("slcs_pool_barrier_wait_micros", pool.barrier_wait_micros),
    ] {
        out.push_str(&format!("# TYPE {name}_total counter\n{name}_total {value}\n"));
    }
    let trace = slcs_trace::stats();
    for (name, value) in [
        ("slcs_trace_enabled", u64::from(slcs_trace::enabled())),
        ("slcs_trace_events_recorded", trace.recorded),
        ("slcs_trace_events_dropped", trace.dropped),
        ("slcs_trace_thread_buffers", trace.threads as u64),
    ] {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    out.push_str("# EOF");
    out
}

/// Parses one request line and produces the response (no trailing
/// newline; only `METRICS` spans multiple lines).
pub fn respond(line: &str, engine: &Engine, config: &ServerConfig) -> String {
    let mut parts = line.split_ascii_whitespace();
    let Some(cmd) = parts.next() else {
        return "ERR empty request".into();
    };
    let req = match cmd.to_ascii_uppercase().as_str() {
        "PING" => return "OK pong".into(),
        "QUIT" => return "OK bye".into(),
        "STATS" => {
            let s = engine.stats();
            let dispatch = DispatchReason::ALL
                .iter()
                .map(|r| format!("{}:{}", r.token(), s.dispatch[r.index()]))
                .collect::<Vec<_>>()
                .join(",");
            return format!(
                "OK submitted={} accepted={} completed={} queue_full={} invalid={} \
                 hits={} misses={} evictions={} batches={} coalesced={} \
                 depth={} max_depth={} par_grain={} simd={} dispatch={dispatch} \
                 wait_sum={} service_sum={} \
                 allocs={} frees={} live_bytes={} peak_live_bytes={} alloc_installed={} \
                 wait_buckets={} service_buckets={}",
                s.submitted,
                s.accepted,
                s.completed,
                s.rejected_queue_full,
                s.rejected_invalid,
                s.cache_hits,
                s.cache_misses,
                s.cache_evictions,
                s.batches,
                s.coalesced,
                s.queue_depth,
                s.max_queue_depth,
                s.par_grain,
                s.simd,
                s.wait_micros.sum,
                s.service_micros.sum,
                s.alloc.allocs,
                s.alloc.frees,
                s.alloc.live_bytes,
                s.alloc.peak_live_bytes,
                u8::from(s.alloc_installed),
                joined_buckets(&s.wait_micros.buckets),
                joined_buckets(&s.service_micros.buckets),
            );
        }
        "METRICS" => return metrics_exposition(engine),
        "TRACE" => {
            if !config.allow_trace {
                return "ERR tracing disabled".into();
            }
            return match (parts.next().map(str::to_ascii_lowercase).as_deref(), parts.next()) {
                (Some("on"), None) => {
                    slcs_trace::enable_fresh();
                    "OK tracing on".into()
                }
                (Some("off"), None) => {
                    slcs_trace::set_enabled(false);
                    "OK tracing off".into()
                }
                (Some("dump"), None) => {
                    format!("OK {}", slcs_trace::drain().to_chrome_json())
                }
                _ => "ERR usage: TRACE on|off|dump".into(),
            };
        }
        "LCS" => {
            let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
                return "ERR usage: LCS <pattern> <text>".into();
            };
            CompareRequest::new(a.as_bytes(), b.as_bytes(), Operation::Lcs)
        }
        "WINDOWS" => {
            let (Some(w), Some(a), Some(b), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return "ERR usage: WINDOWS <w> <pattern> <text>".into();
            };
            let Ok(w) = w.parse::<usize>() else {
                return "ERR window must be an integer".into();
            };
            CompareRequest::new(a.as_bytes(), b.as_bytes(), Operation::Windows { w })
        }
        "EDIT" => {
            let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
                return "ERR usage: EDIT <pattern> <text> [<w> | k=<K>]".into();
            };
            let op = match (parts.next(), parts.next()) {
                (None, _) => Operation::Edit { w: None },
                (Some(arg), None) => {
                    if let Some(k) = arg.strip_prefix("k=") {
                        match k.parse::<usize>() {
                            Ok(k) => Operation::EditBounded { k },
                            Err(_) => return "ERR bound must be an integer".into(),
                        }
                    } else {
                        match arg.parse::<usize>() {
                            Ok(w) => Operation::Edit { w: Some(w) },
                            Err(_) => return "ERR window must be an integer".into(),
                        }
                    }
                }
                _ => return "ERR usage: EDIT <pattern> <text> [<w> | k=<K>]".into(),
            };
            CompareRequest::new(a.as_bytes(), b.as_bytes(), op)
        }
        other => return format!("ERR unknown command {other}"),
    };
    match engine.submit(req) {
        Submit::QueueFull => "BUSY".into(),
        Submit::Invalid(why) => format!("ERR {why}"),
        Submit::Accepted(ticket) => match ticket.wait() {
            Err(e) => format!("ERR {e}"),
            Ok(outcome) => match outcome.payload {
                Payload::Score(s) => {
                    format!("OK {s} {} {}", outcome.algo.token(), outcome.cache.token())
                }
                Payload::Windows { scores, best } => {
                    let list = scores.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(",");
                    format!("OK {} {} {list}", best.0, best.1)
                }
                Payload::Edit { global, best } => match best {
                    None => format!("OK {global}"),
                    Some((start, end, dist)) => format!("OK {global} {start} {end} {dist}"),
                },
                Payload::EditBounded { distance, k } => match distance {
                    Some(d) => format!("OK {d}"),
                    None => format!("OK gt {k}"),
                },
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn engine() -> Arc<Engine> {
        Arc::new(Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 16,
            batch_limit: 4,
            threads_per_request: 1,
        }))
    }

    #[test]
    fn respond_parses_and_serves() {
        let engine = engine();
        let cfg = ServerConfig::default();
        assert_eq!(respond("PING", &engine, &cfg), "OK pong");
        assert_eq!(respond("LCS abcabba cbabac", &engine, &cfg), "OK 4 bitpar bypass");
        // Same pair again via WINDOWS builds a kernel; LCS then hits it.
        let windows = respond("WINDOWS 6 abcabba cbabac", &engine, &cfg);
        assert!(windows.starts_with("OK "), "{windows}");
        assert_eq!(respond("LCS abcabba cbabac", &engine, &cfg), "OK 4 cached hit");
        assert_eq!(respond("EDIT kitten sitting", &engine, &cfg), "OK 3");
        let best = respond("EDIT kitten sitting 6", &engine, &cfg);
        assert!(best.starts_with("OK 3 "), "{best}");
        assert!(respond("WINDOWS x a b", &engine, &cfg).starts_with("ERR"));
        assert!(respond("EDIT kitten sitting k=x", &engine, &cfg).starts_with("ERR bound"));
        assert!(respond("WINDOWS 9 ab xy", &engine, &cfg).starts_with("ERR"));
        assert!(respond("NOPE", &engine, &cfg).starts_with("ERR unknown"));
        let stats = respond("STATS", &engine, &cfg);
        // Two hits: LCS reusing the WINDOWS kernel, EDIT reusing the
        // first EDIT's index.
        assert!(stats.contains(" hits=2"), "{stats}");
        assert!(stats.contains(" dispatch="), "{stats}");
        assert!(stats.contains("cache_hit:2"), "{stats}");
        assert!(stats.contains(" wait_buckets="), "{stats}");
        assert!(stats.contains(" service_buckets="), "{stats}");
        assert!(stats.contains(" wait_sum="), "{stats}");
        assert!(stats.contains(" service_sum="), "{stats}");
        assert!(stats.contains(" allocs="), "{stats}");
        assert!(stats.contains(" peak_live_bytes="), "{stats}");
        assert!(stats.contains(" alloc_installed="), "{stats}");
    }

    #[test]
    fn bounded_edit_answers_exact_or_gt() {
        let engine = engine();
        let cfg = ServerConfig::default();
        // d(kitten, sitting) = 3: exact at k ≥ 3, "gt" below.
        assert_eq!(respond("EDIT kitten sitting k=3", &engine, &cfg), "OK 3");
        assert_eq!(respond("EDIT kitten sitting k=2", &engine, &cfg), "OK gt 2");
        assert_eq!(respond("EDIT kitten sitting k=0", &engine, &cfg), "OK gt 0");
        assert_eq!(respond("EDIT same same k=0", &engine, &cfg), "OK 0");
    }

    #[test]
    fn metrics_exposition_is_eof_terminated_prometheus_text() {
        let engine = engine();
        let cfg = ServerConfig::default();
        let _ = respond("LCS abcabba cbabac", &engine, &cfg);
        let body = respond("METRICS", &engine, &cfg);
        assert!(body.ends_with("# EOF"), "{body}");
        for needle in [
            "slcs_requests_submitted_total 1",
            "slcs_queue_depth ",
            "slcs_wait_micros_bucket{le=\"2\"}",
            "slcs_wait_micros_sum ",
            "slcs_service_micros_count 1",
            "slcs_service_micros_sum ",
            "slcs_pool_jobs_executed_total ",
            "slcs_trace_enabled ",
            "slcs_build_info{version=\"",
            "slcs_uptime_seconds ",
            "slcs_alloc_allocations_total ",
            "slcs_alloc_peak_live_bytes ",
            "slcs_alloc_size_bytes_bucket{le=\"+Inf\"}",
            "slcs_alloc_installed ",
        ] {
            assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in body.lines().filter(|l| !l.starts_with('#')) {
            let mut it = line.rsplitn(2, ' ');
            let value = it.next().unwrap();
            assert!(it.next().is_some(), "bad exposition line {line:?}");
            assert!(value.parse::<f64>().is_ok(), "bad value in line {line:?}");
        }
    }

    #[test]
    fn trace_command_respects_allow_trace_gate() {
        let engine = engine();
        let gated = ServerConfig { allow_trace: false, ..ServerConfig::default() };
        assert_eq!(respond("TRACE on", &engine, &gated), "ERR tracing disabled");

        let _guard = slcs_trace::test_support::hold();
        let cfg = ServerConfig::default();
        assert_eq!(respond("TRACE on", &engine, &cfg), "OK tracing on");
        let _ = respond("LCS abcabba cbabac", &engine, &cfg);
        assert_eq!(respond("TRACE off", &engine, &cfg), "OK tracing off");
        let dump = respond("TRACE dump", &engine, &cfg);
        assert!(dump.starts_with("OK {\"traceEvents\":["), "{dump}");
        assert!(dump.contains("engine.request"), "{dump}");
        assert!(respond("TRACE sideways", &engine, &cfg).starts_with("ERR usage"));
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let engine = engine();
        let handle = spawn("127.0.0.1:0", engine.clone(), ServerConfig::default()).expect("bind");
        let addr = handle.addr();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();

        writer.write_all(b"LCS acgtacgt gtacgtac\nSTATS\nQUIT\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK "), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK submitted="), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK bye");
        // Server closes our connection after QUIT.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
        handle.stop();
    }
}
