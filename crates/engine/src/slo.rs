//! Per-class SLO targets and the HEALTH verdict.
//!
//! Different request classes have wildly different latency envelopes —
//! a bit-parallel LCS answers in microseconds while a windowed edit
//! scan builds an O(mn) index — so one global latency target would
//! either mask slow classes or permanently trip on the expensive ones.
//! The [`SloTable`] keeps one p99 target per request class, a queue
//! depth bound and an error budget; [`evaluate`] folds the engine's
//! rolling-window quantiles into an `OK`/`DEGRADED <reasons>` verdict.
//! The HEALTH protocol command serves that verdict, and it is the hook
//! deadline-based load-shedding will key off.
//!
//! The p99 check reads the *shortest* rolling window, so the verdict
//! reacts to current traffic and recovers within one window rotation
//! after load stops (an idle window drains to empty and is skipped).

use crate::metrics::StatsSnapshot;
use crate::request::Operation;

/// Per-class targets evaluated by HEALTH, and the slow-request capture
/// threshold of the flight recorder.
#[derive(Clone, Debug)]
pub struct SloTable {
    /// p99 service-time targets (µs), indexed by
    /// [`Operation::class_index`]. A request whose service time exceeds
    /// its class target is "slow" (triggers exemplar capture); a class
    /// whose *windowed* p99 exceeds its target degrades HEALTH.
    pub p99_micros: [u64; Operation::CLASS_COUNT],
    /// HEALTH degrades when the live queue depth exceeds this.
    pub max_queue_depth: u64,
    /// HEALTH degrades when lifetime errors exceed this percentage of
    /// submitted requests.
    pub error_budget_percent: f64,
}

impl Default for SloTable {
    fn default() -> SloTable {
        SloTable {
            // lcs / windows / edit / edit_bounded — the kernel-building
            // classes get room for an O(mn) comb on serving-size inputs.
            p99_micros: [50_000, 200_000, 200_000, 50_000],
            max_queue_depth: 192,
            error_budget_percent: 1.0,
        }
    }
}

impl SloTable {
    /// The p99 target (µs) of a request class.
    pub fn target_micros(&self, class: usize) -> u64 {
        self.p99_micros.get(class).copied().unwrap_or(u64::MAX)
    }

    /// Is one request's service time over its class target? (The
    /// flight recorder's slow-capture trigger; strictly greater, so a
    /// zero target marks every measurable request slow.)
    pub fn is_slow(&self, class: usize, service_ns: u64) -> bool {
        service_ns > self.target_micros(class).saturating_mul(1_000)
    }
}

/// The HEALTH verdict: empty reasons = OK.
#[derive(Clone, Debug, Default)]
pub struct HealthReport {
    pub reasons: Vec<String>,
}

impl HealthReport {
    pub fn is_ok(&self) -> bool {
        self.reasons.is_empty()
    }

    /// The HEALTH wire line: `OK` or `DEGRADED <reason>; <reason>`.
    pub fn verdict_line(&self) -> String {
        if self.is_ok() {
            "OK".to_string()
        } else {
            format!("DEGRADED {}", self.reasons.join("; "))
        }
    }
}

/// Folds a stats snapshot (with its rolling windows) into a verdict.
pub fn evaluate(slo: &SloTable, stats: &StatsSnapshot) -> HealthReport {
    let mut reasons = Vec::new();
    for (ci, class) in Operation::CLASS_TOKENS.iter().enumerate() {
        // The shortest window: the verdict tracks *current* traffic.
        let h = stats.windows.hist(ci, 0);
        if h.count() == 0 {
            continue;
        }
        let p99 = h.quantile(0.99);
        let target = slo.target_micros(ci);
        if p99 > target {
            reasons.push(format!("class {class} p99 {p99}us > slo {target}us"));
        }
    }
    if stats.queue_depth > slo.max_queue_depth {
        reasons.push(format!("queue depth {} > {}", stats.queue_depth, slo.max_queue_depth));
    }
    let errors: u64 = stats.errors.iter().sum();
    if errors > 0 && stats.submitted > 0 {
        let burn = errors as f64 * 100.0 / stats.submitted as f64;
        if burn > slo.error_budget_percent {
            reasons.push(format!(
                "error budget {burn:.2}% > {:.2}% ({errors} errors / {} submitted)",
                slo.error_budget_percent, stats.submitted
            ));
        }
    }
    HealthReport { reasons }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::windows::RollingWindows;

    fn stats_with_windows(w: &RollingWindows) -> StatsSnapshot {
        let m = Metrics::default();
        let mut s = m.snapshot(0);
        s.windows = w.snapshot();
        s
    }

    #[test]
    fn empty_engine_is_healthy() {
        let w = RollingWindows::new(10_000);
        let report = evaluate(&SloTable::default(), &stats_with_windows(&w));
        assert!(report.is_ok());
        assert_eq!(report.verdict_line(), "OK");
    }

    #[test]
    fn breaching_class_p99_names_the_class() {
        let mut slo = SloTable::default();
        slo.p99_micros[2] = 10; // edit: 10µs target
        let w = RollingWindows::new(10_000);
        for _ in 0..20 {
            w.record(2, 5_000); // 5ms samples, way over target
        }
        w.record(0, 1); // lcs is fine
        let report = evaluate(&slo, &stats_with_windows(&w));
        assert!(!report.is_ok());
        let line = report.verdict_line();
        assert!(line.starts_with("DEGRADED"), "{line}");
        assert!(line.contains("class edit"), "{line}");
        assert!(!line.contains("class lcs"), "{line}");
    }

    #[test]
    fn queue_depth_and_error_budget_degrade() {
        let slo = SloTable { max_queue_depth: 4, error_budget_percent: 1.0, ..SloTable::default() };
        let w = RollingWindows::new(10_000);
        let mut stats = stats_with_windows(&w);
        stats.queue_depth = 9;
        stats.submitted = 100;
        stats.errors[0] = 5; // 5% malformed
        let report = evaluate(&slo, &stats);
        let line = report.verdict_line();
        assert!(line.contains("queue depth 9 > 4"), "{line}");
        assert!(line.contains("error budget"), "{line}");
    }

    #[test]
    fn is_slow_compares_service_to_class_target() {
        let slo = SloTable { p99_micros: [100, 0, u64::MAX, 100], ..SloTable::default() };
        assert!(!slo.is_slow(0, 100_000)); // exactly at target
        assert!(slo.is_slow(0, 100_001));
        assert!(slo.is_slow(1, 1), "zero target: everything measurable is slow");
        assert!(!slo.is_slow(2, u64::MAX));
    }
}
