//! slcs-engine — a long-running, thread-safe string-comparison engine.
//!
//! The algorithm crates in this workspace answer one comparison at a
//! time; this crate turns them into a *service*. An [`Engine`] accepts
//! [`CompareRequest`]s (global LCS, semi-local window scans,
//! edit-distance scans) through a bounded queue with explicit
//! backpressure, serves them on a pool of worker threads, and caches
//! the semi-local kernels it builds — the paper's central object — in a
//! sharded LRU so repeat comparisons cost O(log² n) index lookups
//! instead of an O(mn) comb.
//!
//! Layered bottom-up:
//!
//! * [`request`] — request/outcome vocabulary shared by every layer.
//! * [`metrics`] — lock-free counters and latency histograms behind
//!   [`StatsSnapshot`].
//! * [`cache`] — the sharded LRU of kernels and edit-distance indexes.
//! * [`dispatch`] — adaptive algorithm choice (bit-parallel vs
//!   sequential vs parallel combing vs the output-sensitive
//!   edit-distance BFS, picked by a similarity probe) and request
//!   execution.
//! * [`queue`] — the bounded submission queue, [`Submit`] backpressure
//!   result and completion [`Ticket`]s.
//! * [`windows`] — rolling-window latency quantiles per request class
//!   (the "what is p99 *right now*" answer cumulative histograms can't
//!   give).
//! * [`recorder`] — the flight recorder: a lock-free audit ring of
//!   recent requests plus slow-request trace exemplars.
//! * [`slo`] — per-class latency targets and the HEALTH verdict.
//! * [`engine`] — the worker pool, batch coalescing and lifecycle.
//! * [`server`] — a TCP line protocol for remote clients.
//!
//! ```
//! use slcs_engine::{CompareRequest, Engine, Operation, Payload};
//!
//! let engine = Engine::with_defaults();
//! let outcome = engine
//!     .submit_wait(CompareRequest::new(
//!         &b"abcabba"[..],
//!         &b"cbabac"[..],
//!         Operation::Lcs,
//!     ))
//!     .unwrap();
//! assert_eq!(outcome.payload, Payload::Score(4));
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod dispatch;
pub mod engine;
pub mod metrics;
pub mod queue;
pub mod recorder;
pub mod request;
pub mod server;
pub mod slo;
pub(crate) mod sync;
pub mod windows;

pub use cache::{CacheKey, IndexKind, KernelCache};
pub use dispatch::{
    alphabet_size, choose, combing_choice, decide, execute, execute_request, similar_inputs,
    Executed, OSED_MIN_LEN,
};
pub use engine::{Engine, EngineConfig};
pub use metrics::{ErrorKind, HistogramSnapshot, Metrics, StatsSnapshot};
pub use queue::{Submit, Ticket};
pub use recorder::{AuditEvent, AuditRecord, FlightRecorder, SlowCapture};
pub use request::{
    AlgoChoice, CacheStatus, CompareOutcome, CompareRequest, DispatchDecision, DispatchReason,
    EngineError, Operation, Payload,
};
pub use server::{spawn as serve, ServerConfig, ServerHandle};
pub use slo::{HealthReport, SloTable};
pub use windows::{RollingWindows, WindowsSnapshot};
