//! slcs-engine — a long-running, thread-safe string-comparison engine.
//!
//! The algorithm crates in this workspace answer one comparison at a
//! time; this crate turns them into a *service*. An [`Engine`] accepts
//! [`CompareRequest`]s (global LCS, semi-local window scans,
//! edit-distance scans) through a bounded queue with explicit
//! backpressure, serves them on a pool of worker threads, and caches
//! the semi-local kernels it builds — the paper's central object — in a
//! sharded LRU so repeat comparisons cost O(log² n) index lookups
//! instead of an O(mn) comb.
//!
//! Layered bottom-up:
//!
//! * [`request`] — request/outcome vocabulary shared by every layer.
//! * [`metrics`] — lock-free counters and latency histograms behind
//!   [`StatsSnapshot`].
//! * [`cache`] — the sharded LRU of kernels and edit-distance indexes.
//! * [`dispatch`] — adaptive algorithm choice (bit-parallel vs
//!   sequential vs parallel combing vs the output-sensitive
//!   edit-distance BFS, picked by a similarity probe) and request
//!   execution.
//! * [`queue`] — the bounded submission queue, [`Submit`] backpressure
//!   result and completion [`Ticket`]s.
//! * [`engine`] — the worker pool, batch coalescing and lifecycle.
//! * [`server`] — a TCP line protocol for remote clients.
//!
//! ```
//! use slcs_engine::{CompareRequest, Engine, Operation, Payload};
//!
//! let engine = Engine::with_defaults();
//! let outcome = engine
//!     .submit_wait(CompareRequest::new(
//!         &b"abcabba"[..],
//!         &b"cbabac"[..],
//!         Operation::Lcs,
//!     ))
//!     .unwrap();
//! assert_eq!(outcome.payload, Payload::Score(4));
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod dispatch;
pub mod engine;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod server;
pub(crate) mod sync;

pub use cache::{CacheKey, IndexKind, KernelCache};
pub use dispatch::{
    alphabet_size, choose, combing_choice, decide, execute, similar_inputs, OSED_MIN_LEN,
};
pub use engine::{Engine, EngineConfig};
pub use metrics::{HistogramSnapshot, Metrics, StatsSnapshot};
pub use queue::{Submit, Ticket};
pub use request::{
    AlgoChoice, CacheStatus, CompareOutcome, CompareRequest, DispatchDecision, DispatchReason,
    EngineError, Operation, Payload,
};
pub use server::{spawn as serve, ServerConfig, ServerHandle};
