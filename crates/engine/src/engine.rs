//! The engine itself: worker pool, submission path, lifecycle.
//!
//! An [`Engine`] owns a bounded [`JobQueue`](crate::queue::JobQueue), a
//! sharded [`KernelCache`], shared [`Metrics`] and a fixed pool of
//! worker threads. Submitters never compute: they validate, hash, and
//! enqueue; workers pop *batches* of jobs sharing a pattern (so repeat
//! comparisons against a hot pattern stay cache- and core-local) and
//! serve each through [`dispatch::execute`].
//!
//! Shutdown is graceful: `shutdown()` (or `Drop`) closes the queue, lets
//! workers drain everything already accepted, and joins them. Requests
//! submitted after close get a ticket that resolves to
//! [`EngineError::ShuttingDown`] instead of blocking forever.

use crate::sync::atomic::Ordering;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::cache::{CacheKey, IndexKind, KernelCache};
use crate::dispatch;
use crate::metrics::{ErrorKind, Metrics, StatsSnapshot};
use crate::queue::{ticket_pair, Job, JobQueue, Push, Submit, Ticket};
use crate::recorder::{AuditEvent, FlightRecorder, SlowCapture, CAPTURE_EVENTS};
use crate::request::{CompareOutcome, CompareRequest, EngineError, Operation};
use crate::slo::{self, HealthReport, SloTable};
use crate::windows::RollingWindows;

/// Tunables for an [`Engine`]. `Default` sizes everything off the
/// machine's thread budget and is right for most uses; tests shrink the
/// queue and cache to force backpressure and eviction on purpose.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads serving requests.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it get
    /// [`Submit::QueueFull`].
    pub queue_capacity: usize,
    /// Total kernel-cache entries across all shards.
    pub cache_capacity: usize,
    /// Most jobs a worker pops per batch.
    pub batch_limit: usize,
    /// Thread budget assumed when choosing between sequential and
    /// parallel combing for a single request.
    pub threads_per_request: usize,
    /// Flight-recorder ring capacity (audit records). 0 disables the
    /// whole audit path: no per-request record, no speculative slow
    /// capture, no request-id span fields.
    pub recorder_capacity: usize,
    /// Rolling-window slice duration (ms); the three exported windows
    /// span 1/6/30 slices. 0 disables windowed quantiles.
    pub window_slice_millis: u64,
    /// Per-class SLO targets: drives the flight recorder's slow-request
    /// exemplar capture (and, via the server's own copy, HEALTH).
    pub slo: SloTable,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let threads = rayon::current_num_threads().max(1);
        EngineConfig {
            workers: threads,
            queue_capacity: 256,
            cache_capacity: 128,
            batch_limit: 32,
            threads_per_request: threads,
            recorder_capacity: crate::recorder::DEFAULT_CAPACITY,
            window_slice_millis: crate::windows::DEFAULT_SLICE_MILLIS,
            slo: SloTable::default(),
        }
    }
}

struct Shared {
    queue: JobQueue,
    cache: KernelCache,
    metrics: Metrics,
    recorder: FlightRecorder,
    windows: RollingWindows,
    config: EngineConfig,
    /// When this engine was constructed; the source of truth for the
    /// `slcs_uptime_seconds` gauge (scrapers detect restarts by the
    /// value going backwards).
    started: Instant,
}

/// A long-running, thread-safe comparison engine.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            cache: KernelCache::new(config.cache_capacity),
            metrics: Metrics::default(),
            recorder: FlightRecorder::new(config.recorder_capacity),
            windows: RollingWindows::new(config.window_slice_millis),
            config: config.clone(),
            started: Instant::now(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("slcs-engine-{i}"))
                    .spawn(move || worker_loop(shared))
                    // PANIC: failing to spawn workers at startup is unrecoverable.
                    .expect("spawn engine worker")
            })
            .collect();
        Engine { shared, workers }
    }

    pub fn with_defaults() -> Self {
        Engine::new(EngineConfig::default())
    }

    /// Offers a request. Never blocks: the result is either a ticket,
    /// an immediate [`Submit::QueueFull`], or [`Submit::Invalid`].
    pub fn submit(&self, req: CompareRequest) -> Submit {
        let metrics = &self.shared.metrics;
        slcs_trace::instant!("engine.submit", "op" => req.op.token());
        // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
        metrics.submitted.fetch_add(1, Ordering::Relaxed);
        if let Err(why) = req.validate() {
            // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
            metrics.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return Submit::Invalid(why);
        }
        let kind = match req.op {
            Operation::Edit { .. } | Operation::EditBounded { .. } => IndexKind::Edit,
            _ => IndexKind::Plain,
        };
        let key = CacheKey::new(kind, &req.pattern, &req.text);
        let (theirs, ours) = ticket_pair();
        let job = Job { req, ticket: ours, enqueued_at: Instant::now(), key };
        match self.shared.queue.push(job) {
            Push::Ok { depth } => {
                // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
                metrics.accepted.fetch_add(1, Ordering::Relaxed);
                metrics.note_depth(depth as u64);
                Submit::Accepted(theirs)
            }
            Push::Full => {
                // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
                metrics.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                Submit::QueueFull
            }
            Push::Closed => {
                // The job (and its ticket) were not queued; resolve the
                // caller's ticket so waiting on it cannot hang.
                let (theirs, ours) = ticket_pair();
                ours.fulfill(Err(EngineError::ShuttingDown));
                Submit::Accepted(theirs)
            }
        }
    }

    /// Submits and blocks for the outcome, retrying briefly on
    /// backpressure. Convenience for callers without their own retry
    /// policy (examples, CLI); returns `Err` on invalid requests.
    pub fn submit_wait(&self, req: CompareRequest) -> Result<CompareOutcome, EngineError> {
        loop {
            match self.submit(req.clone()) {
                Submit::Accepted(ticket) => return ticket.wait(),
                Submit::QueueFull => std::thread::yield_now(),
                Submit::Invalid(why) => return Err(EngineError::Internal(why)),
            }
        }
    }

    /// A point-in-time view of the counters and histograms. The queue
    /// depth is sampled live from the queue itself — [`Metrics`] keeps
    /// no depth gauge to go stale (see the `metrics` module docs on
    /// counters vs gauges) — and the rolling-window quantiles are
    /// merged from the window ring at the same moment.
    pub fn stats(&self) -> StatsSnapshot {
        let mut stats = self.shared.metrics.snapshot(self.shared.queue.depth() as u64);
        stats.windows = self.shared.windows.snapshot();
        stats
    }

    /// The flight recorder: per-request audit records and slow-request
    /// trace exemplars (see the `recorder` module docs).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.shared.recorder
    }

    /// Evaluates `slo` against the current stats (rolling p99s, queue
    /// depth, error budget) — the HEALTH protocol verdict.
    pub fn health(&self, slo: &SloTable) -> HealthReport {
        slo::evaluate(slo, &self.stats())
    }

    /// Shared-metrics access for the server's protocol-error counters.
    pub(crate) fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Seconds since this engine was constructed (monotonic clock).
    pub fn uptime_seconds(&self) -> u64 {
        self.shared.started.elapsed().as_secs()
    }

    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let metrics = &shared.metrics;
    while let Some((batch, _depth)) = shared.queue.pop_batch(shared.config.batch_limit) {
        // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        if batch.len() > 1 {
            // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
            metrics.coalesced.fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
        let _batch_span = slcs_trace::span!("engine.batch", "len" => batch.len());
        // Identical pairs inside the batch deduplicate through the
        // cache: the first job combs and inserts, the rest hit.
        for job in batch {
            let audit_on = shared.recorder.enabled();
            let req_id = shared.recorder.next_id();
            let wait_ns = job.enqueued_at.elapsed().as_nanos() as u64;
            let wait_us = wait_ns / 1_000;
            metrics.wait_micros.record(wait_us);
            let class = job.req.op.class_index();
            let bytes = (job.req.pattern.len() + job.req.text.len()) as u64;
            let alloc_before = if audit_on { slcs_alloc::thread_stats().alloc_bytes } else { 0 };
            if audit_on {
                // Speculative: slowness is only known at completion, so
                // every request captures and the fast ones discard.
                slcs_trace::capture::begin(CAPTURE_EVENTS);
            }
            // One span per served request: queue wait and the request id
            // as fields, the dispatch/compute/reply time as the span's
            // extent.
            let request_span = slcs_trace::span!("engine.request", "op" => job.req.op.token(), "wait_us" => wait_us, "req" => req_id);
            let started = Instant::now();
            let computed = catch_unwind(AssertUnwindSafe(|| {
                dispatch::execute_request(
                    &job.req,
                    &shared.cache,
                    metrics,
                    shared.config.threads_per_request,
                    req_id,
                )
            }));
            let service_ns = started.elapsed().as_nanos() as u64;
            let service_micros = service_ns / 1_000;
            metrics.service_micros.record(service_micros);
            shared.windows.record(class, service_micros);
            // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
            metrics.completed.fetch_add(1, Ordering::Relaxed);
            // The `engine.dispatch` instant (reason + sched + req id) is
            // emitted inside `execute_request`, next to the decision it
            // labels.
            let (result, reason, sched, cache_status, ok) = match computed {
                Ok(ex) => {
                    let dispatch::Executed { payload, algo, cache, reason, sched } = ex;
                    let outcome = CompareOutcome {
                        payload,
                        algo,
                        cache,
                        service_micros,
                        wait_micros: wait_us,
                    };
                    (Ok(outcome), Some(reason), Some(sched), Some(cache), true)
                }
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "computation panicked".into());
                    metrics.note_error(ErrorKind::Internal);
                    (Err(EngineError::Internal(msg)), None, None, None, false)
                }
            };
            // Close the request span before deciding the capture's fate
            // so the exemplar tree contains the span's End.
            drop(request_span);
            if audit_on {
                let alloc_bytes =
                    slcs_alloc::thread_stats().alloc_bytes.saturating_sub(alloc_before);
                shared.recorder.record(&AuditEvent {
                    id: req_id,
                    class,
                    bytes,
                    reason,
                    sched,
                    cache: cache_status,
                    wait_ns,
                    service_ns,
                    alloc_bytes,
                    ok,
                });
                if shared.config.slo.is_slow(class, service_ns) {
                    slcs_trace::instant!(
                        "engine.slow_capture",
                        "req" => req_id,
                        "class" => job.req.op.token(),
                        "service_us" => service_micros
                    );
                    let tree = slcs_trace::capture::take().to_text_tree();
                    shared.recorder.note_slow(SlowCapture {
                        id: req_id,
                        class: Operation::CLASS_TOKENS[class],
                        service_ns,
                        slo_micros: shared.config.slo.target_micros(class),
                        tree,
                    });
                } else {
                    slcs_trace::capture::discard();
                }
            }
            job.ticket.fulfill(result);
        }
    }
}

/// Blocks on a ticket, panicking on engine errors (test convenience).
pub fn redeem(ticket: Ticket) -> CompareOutcome {
    // PANIC: documented contract: redeem panics on engine errors (test convenience).
    ticket.wait().expect("engine request failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{CacheStatus, Operation, Payload};
    use slcs_baselines::prefix_rowmajor;

    fn small_engine() -> Engine {
        Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 16,
            batch_limit: 4,
            threads_per_request: 1,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn serves_lcs_and_reports_stats() {
        let engine = small_engine();
        let (a, b) = (&b"abcabba"[..], &b"cbabac"[..]);
        let outcome = engine
            .submit(CompareRequest::new(a, b, Operation::Lcs))
            .expect_accepted()
            .wait()
            .unwrap();
        assert_eq!(outcome.payload, Payload::Score(prefix_rowmajor(a, b)));
        let stats = engine.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let engine = small_engine();
        let (a, b) = (&b"abracadabra"[..], &b"alakazamabra"[..]);
        let first = engine
            .submit(CompareRequest::new(a, b, Operation::Windows { w: 6 }))
            .expect_accepted()
            .wait()
            .unwrap();
        assert_eq!(first.cache, CacheStatus::Miss);
        let second = engine
            .submit(CompareRequest::new(a, b, Operation::Windows { w: 6 }))
            .expect_accepted()
            .wait()
            .unwrap();
        assert_eq!(second.cache, CacheStatus::Hit);
        assert_eq!(first.payload, second.payload);
        let stats = engine.shutdown();
        assert!(stats.cache_hits >= 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn invalid_requests_bounce_at_submission() {
        let engine = small_engine();
        match engine.submit(CompareRequest::new(
            &b"ab"[..],
            &b"xy"[..],
            Operation::Windows { w: 9 },
        )) {
            Submit::Invalid(why) => assert!(why.contains("window")),
            _ => panic!("expected validation rejection"),
        }
        assert_eq!(engine.stats().rejected_invalid, 1);
    }

    #[test]
    fn shutdown_resolves_late_submissions() {
        let engine = small_engine();
        engine.shared.queue.close();
        let submit = engine.submit(CompareRequest::new(&b"a"[..], &b"a"[..], Operation::Lcs));
        let Submit::Accepted(ticket) = submit else { panic!("expected ticket") };
        assert!(matches!(ticket.wait(), Err(EngineError::ShuttingDown)));
    }

    #[test]
    fn submit_wait_round_trips() {
        let engine = small_engine();
        let outcome = engine
            .submit_wait(CompareRequest::new(&b"acgt"[..], &b"tgca"[..], Operation::Lcs))
            .unwrap();
        assert_eq!(outcome.payload, Payload::Score(1));
    }
}
