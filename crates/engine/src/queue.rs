//! Bounded submission queue with explicit backpressure and completion
//! tickets.
//!
//! The queue is the engine's only admission point: `submit` either
//! accepts a request (returning a [`Ticket`] the caller can block on) or
//! refuses it *immediately* with [`Submit::QueueFull`]. Nothing ever
//! blocks on the way in — backpressure is a value the caller can see and
//! react to (retry, shed load, or slow down), not an invisible stall.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::cell::UnsafeCell;
use crate::sync::{Condvar, Mutex};

use crate::cache::CacheKey;
use crate::request::{CompareOutcome, CompareRequest, EngineError};

/// Result of offering a request to the engine.
#[must_use]
pub enum Submit {
    /// Queued; redeem the ticket for the outcome.
    Accepted(Ticket),
    /// The bounded queue is at capacity — the request was *not* queued.
    QueueFull,
    /// The request failed validation and was never queued.
    Invalid(String),
}

impl Submit {
    /// Unwraps the ticket, panicking on rejection (test convenience).
    pub fn expect_accepted(self) -> Ticket {
        match self {
            Submit::Accepted(t) => t,
            Submit::QueueFull => panic!("request rejected: queue full"),
            Submit::Invalid(why) => panic!("request rejected: {why}"),
        }
    }
}

/// Shared half of a ticket: the result travels through a non-atomic
/// cell, *published* by the `ready` mutex/condvar handshake — the worker
/// writes the cell, then flips `ready` under the lock; the waiter reads
/// the cell only after observing `ready` under the same lock. The cell
/// goes through the sync facade so a model-check build's race detector
/// verifies that publication order on every explored schedule.
struct TicketShared {
    result: UnsafeCell<Option<Result<CompareOutcome, EngineError>>>,
    ready: Mutex<bool>,
    cv: Condvar,
}

// SAFETY: `result` is written by the single fulfiller before the
// release of the `ready` critical section and read by a waiter only
// after acquiring `ready == true` in its own critical section — the
// mutex edge orders the cell accesses (model-checked in `model_tests`).
unsafe impl Sync for TicketShared {}

/// A handle to one accepted request's eventual outcome.
pub struct Ticket {
    inner: Arc<TicketShared>,
}

impl Ticket {
    fn new() -> (Ticket, Ticket) {
        let inner = Arc::new(TicketShared {
            result: UnsafeCell::new(None),
            ready: Mutex::new(false),
            cv: Condvar::new(),
        });
        (Ticket { inner: inner.clone() }, Ticket { inner })
    }

    /// Takes the published result; call only with `ready` held and true,
    /// which the fulfiller set after writing the cell.
    fn take_result(&self, ready: &mut bool) -> Result<CompareOutcome, EngineError> {
        *ready = false; // consumed: later waits report pending again
                        // SAFETY: the caller holds the `ready` lock and observed `true`,
                        // so the fulfiller's cell write happened-before this read and no
                        // other reader can be here concurrently.
                        // PANIC: `ready == true` is set only after the cell was filled.
        self.inner.result.with_mut(|p| unsafe { (*p).take() }).expect("ready without a result")
    }

    /// Blocks until the request completes.
    pub fn wait(self) -> Result<CompareOutcome, EngineError> {
        let mut ready = self.inner.ready.lock().unwrap();
        loop {
            if *ready {
                return self.take_result(&mut ready);
            }
            ready = self.inner.cv.wait(ready).unwrap();
        }
    }

    /// Blocks up to `timeout`; `None` means still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<CompareOutcome, EngineError>> {
        let deadline = Instant::now() + timeout;
        let mut ready = self.inner.ready.lock().unwrap();
        loop {
            if *ready {
                return Some(self.take_result(&mut ready));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (next, timed_out) = self.inner.cv.wait_timeout(ready, left).unwrap();
            ready = next;
            if timed_out.timed_out() && !*ready {
                return None;
            }
        }
    }

    /// Fulfills the paired ticket (worker side).
    pub(crate) fn fulfill(&self, result: Result<CompareOutcome, EngineError>) {
        // The cell write is ordered before the waiter's read by the
        // `ready` critical section below (see `TicketShared`).
        self.inner.result.with_mut(|p| {
            // SAFETY: single fulfiller per ticket, and no waiter reads
            // until `ready` is true — this access is exclusive.
            unsafe { *p = Some(result) }
        });
        *self.inner.ready.lock().unwrap() = true;
        self.inner.cv.notify_all();
    }
}

/// A queued request together with its ticket and bookkeeping.
pub(crate) struct Job {
    pub req: CompareRequest,
    pub ticket: Ticket,
    pub enqueued_at: Instant,
    /// Precomputed cache key — also the coalescing identity.
    pub key: CacheKey,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded MPMC job queue.
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    capacity: usize,
}

pub(crate) enum Push {
    Ok { depth: usize },
    Full,
    Closed,
}

impl JobQueue {
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    pub fn push(&self, job: Job) -> Push {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Push::Closed;
        }
        if state.jobs.len() >= self.capacity {
            return Push::Full;
        }
        state.jobs.push_back(job);
        let depth = state.jobs.len();
        drop(state);
        self.not_empty.notify_one();
        Push::Ok { depth }
    }

    /// Pops the head job plus up to `batch_limit - 1` more jobs sharing
    /// its pattern hash (the coalescing rule: same-pattern requests are
    /// served together, and identical pairs among them comb only once).
    /// Returns `None` when the queue is closed and drained.
    ///
    /// The returned depth is the queue length after removal, for the
    /// caller's gauge.
    pub fn pop_batch(&self, batch_limit: usize) -> Option<(Vec<Job>, usize)> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(head) = state.jobs.pop_front() {
                let mut batch = vec![head];
                let pattern_hash = batch[0].key.pattern_hash;
                let mut i = 0;
                while i < state.jobs.len() && batch.len() < batch_limit.max(1) {
                    if state.jobs[i].key.pattern_hash == pattern_hash {
                        // PANIC: i < jobs.len() is the loop guard, so remove(i) is Some.
                        batch.push(state.jobs.remove(i).unwrap());
                    } else {
                        i += 1;
                    }
                }
                let depth = state.jobs.len();
                return Some((batch, depth));
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    /// Closes the queue: no new jobs are admitted, blocked workers wake
    /// up, and remaining jobs keep draining through `pop_batch`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }

    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }
}

pub(crate) fn ticket_pair() -> (Ticket, Ticket) {
    Ticket::new()
}

/// Model-check harnesses for the queue's backpressure/drain protocol and
/// the ticket handshake, exploring the *real* implementation above (the
/// sync facade resolves to shim-loom under `--cfg slcs_model_check`).
/// Run via `cargo xtask model-check`.
#[cfg(all(test, slcs_model_check))]
mod model_tests {
    use super::*;
    use crate::cache::IndexKind;
    use crate::request::{AlgoChoice, CacheStatus, Operation, Payload};
    use shim_loom::model::{Builder, Strategy};
    use shim_loom::thread;

    fn mk_job(pattern: &[u8], text: &[u8]) -> (Job, Ticket) {
        let req = CompareRequest::new(pattern, text, Operation::Lcs);
        let key = CacheKey::new(IndexKind::Plain, pattern, text);
        let (theirs, ours) = ticket_pair();
        (Job { req, ticket: ours, enqueued_at: Instant::now(), key }, theirs)
    }

    fn env_usize(name: &str, default: usize) -> usize {
        std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn outcome() -> Result<CompareOutcome, EngineError> {
        Ok(CompareOutcome {
            payload: Payload::Score(7),
            algo: AlgoChoice::BitParallel,
            cache: CacheStatus::Bypass,
            service_micros: 1,
            wait_micros: 1,
        })
    }

    #[test]
    fn model_backpressure_never_loses_or_duplicates_jobs() {
        // Producer races a draining consumer on a capacity-1 queue:
        // every `Push::Ok` job must come out exactly once, `Push::Full`
        // jobs never block or corrupt the queue, and close() always
        // unsticks the consumer.
        let cap = env_usize("SLCS_MODEL_SCHEDULES", 10_000);
        let report = Builder {
            max_preemptions: env_usize("SLCS_MODEL_PREEMPTIONS", 2),
            max_schedules: cap,
            ..Builder::default()
        }
        .check(|| {
            let q = Arc::new(JobQueue::new(1));
            let q2 = Arc::clone(&q);
            let producer = thread::spawn(move || {
                let mut accepted = 0usize;
                for text in [&b"x"[..], &b"y"[..], &b"z"[..]] {
                    let (job, _ticket) = mk_job(b"pp", text);
                    match q2.push(job) {
                        Push::Ok { depth } => {
                            assert_eq!(depth, 1, "capacity-1 queue admits one at a time");
                            accepted += 1;
                        }
                        Push::Full => {}
                        Push::Closed => unreachable!("nobody closed yet"),
                    }
                }
                q2.close();
                accepted
            });
            let mut drained = 0usize;
            while let Some((batch, _depth)) = q.pop_batch(4) {
                drained += batch.len();
            }
            let accepted = producer.join().unwrap();
            assert_eq!(drained, accepted, "accepted jobs drain exactly once");
            assert_eq!(q.depth(), 0);
            assert!(q.pop_batch(4).is_none(), "closed + drained stays drained");
        });
        println!(
            "model_backpressure_never_loses_or_duplicates_jobs: {} schedules, complete={}",
            report.schedules, report.complete
        );
        assert!(report.complete || report.schedules >= cap);
    }

    #[test]
    fn model_push_close_race_is_clean() {
        // push raced against close: the push either lands (and is
        // drained) or observes Closed — there is no third outcome and no
        // stuck consumer.
        let report = Builder {
            max_preemptions: env_usize("SLCS_MODEL_PREEMPTIONS", 2),
            max_schedules: env_usize("SLCS_MODEL_SCHEDULES", 10_000),
            ..Builder::default()
        }
        .check(|| {
            let q = Arc::new(JobQueue::new(4));
            let q2 = Arc::clone(&q);
            let closer = thread::spawn(move || q2.close());
            let (job, _ticket) = mk_job(b"pp", b"x");
            let landed = matches!(q.push(job), Push::Ok { .. });
            closer.join().unwrap();
            let mut drained = 0usize;
            while let Some((batch, _)) = q.pop_batch(4) {
                drained += batch.len();
            }
            assert_eq!(drained, usize::from(landed), "landed jobs drain; refused jobs vanish");
        });
        println!(
            "model_push_close_race_is_clean: {} schedules, complete={}",
            report.schedules, report.complete
        );
    }

    #[test]
    fn model_ticket_handshake_has_no_lost_wakeup() {
        // fulfill() raced against wait(): the waiter must always see the
        // result, whichever side runs first (the under-lock re-check is
        // what the model is exercising). The result itself travels
        // through a *tracked cell* (see `TicketShared`), so this harness
        // also proves the mutex handshake publishes the non-atomic write
        // — the race detector fails any schedule where it would not.
        let report = Builder {
            strategy: Strategy::Random {
                seed: env_usize("SLCS_MODEL_SEED", 0x5eed) as u64 ^ 0x71c7,
                iterations: env_usize("SLCS_MODEL_SCHEDULES", 10_000).min(2_000),
            },
            ..Builder::default()
        }
        .check(|| {
            let (theirs, ours) = ticket_pair();
            let waiter = thread::spawn(move || theirs.wait());
            ours.fulfill(outcome());
            let got = waiter.join().unwrap().expect("fulfilled Ok");
            assert_eq!(got.payload, Payload::Score(7));
        });
        println!("model_ticket_handshake_has_no_lost_wakeup: {} schedules", report.schedules);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::IndexKind;
    use crate::request::{Operation, Payload};

    fn job(pattern: &[u8], text: &[u8]) -> (Job, Ticket) {
        let req = CompareRequest::new(pattern, text, Operation::Lcs);
        let key = CacheKey::new(IndexKind::Plain, pattern, text);
        let (theirs, ours) = ticket_pair();
        (Job { req, ticket: ours, enqueued_at: Instant::now(), key }, theirs)
    }

    #[test]
    fn push_reports_full_at_capacity() {
        let q = JobQueue::new(2);
        let (j1, _t1) = job(b"a", b"b");
        let (j2, _t2) = job(b"a", b"c");
        let (j3, _t3) = job(b"a", b"d");
        assert!(matches!(q.push(j1), Push::Ok { depth: 1 }));
        assert!(matches!(q.push(j2), Push::Ok { depth: 2 }));
        assert!(matches!(q.push(j3), Push::Full));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn pop_batch_groups_by_pattern_and_keeps_order() {
        let q = JobQueue::new(16);
        let (ja1, _t1) = job(b"aaaa", b"x");
        let (jb, _t2) = job(b"bbbb", b"y");
        let (ja2, _t3) = job(b"aaaa", b"z");
        assert!(matches!(q.push(ja1), Push::Ok { .. }));
        assert!(matches!(q.push(jb), Push::Ok { .. }));
        assert!(matches!(q.push(ja2), Push::Ok { .. }));
        let (batch, depth) = q.pop_batch(8).unwrap();
        assert_eq!(batch.len(), 2, "both aaaa jobs coalesce");
        assert!(batch.iter().all(|j| &j.req.pattern[..] == b"aaaa"));
        assert_eq!(depth, 1);
        let (batch, depth) = q.pop_batch(8).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(&batch[0].req.pattern[..], b"bbbb");
        assert_eq!(depth, 0);
    }

    #[test]
    fn batch_limit_caps_coalescing() {
        let q = JobQueue::new(16);
        for i in 0..5u8 {
            let (j, _t) = job(b"pp", &[i]);
            assert!(matches!(q.push(j), Push::Ok { .. }));
        }
        let (batch, _) = q.pop_batch(3).unwrap();
        assert_eq!(batch.len(), 3);
        let (batch, _) = q.pop_batch(3).unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn close_wakes_and_drains() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let (j, _t) = job(b"a", b"b");
        assert!(matches!(q.push(j), Push::Ok { .. }));
        q.close();
        let (j2, _t2) = job(b"a", b"c");
        assert!(matches!(q.push(j2), Push::Closed));
        assert!(q.pop_batch(4).is_some(), "drains pending job");
        assert!(q.pop_batch(4).is_none(), "then reports closed");
    }

    #[test]
    fn tickets_hand_over_results_across_threads() {
        let (theirs, ours) = ticket_pair();
        assert!(theirs.wait_timeout(Duration::from_millis(1)).is_none());
        let handle = std::thread::spawn(move || theirs.wait());
        ours.fulfill(Ok(CompareOutcome {
            payload: Payload::Score(7),
            algo: crate::request::AlgoChoice::BitParallel,
            cache: crate::request::CacheStatus::Bypass,
            service_micros: 1,
            wait_micros: 1,
        }));
        let outcome = handle.join().unwrap().unwrap();
        assert_eq!(outcome.payload, Payload::Score(7));
    }
}
