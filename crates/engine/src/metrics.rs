//! Engine observability: atomic counters, gauges and latency histograms.
//!
//! Everything here is lock-free (`Ordering::Relaxed` — the counters are
//! monotone statistics, not synchronization), so workers and submitters
//! can record events without contending, and [`Metrics::snapshot`] can be
//! read at any time from any thread.
//!
//! # Counters vs gauges
//!
//! Two different kinds of number live in a [`StatsSnapshot`], and they
//! have different contracts:
//!
//! * **Counters** (`submitted`, `cache_hits`, the histogram buckets, …)
//!   are monotone: atomics bumped at the event site, never decremented,
//!   so a relaxed racing read is merely *slightly stale* and two
//!   snapshots can be subtracted to get a rate. `max_queue_depth` is a
//!   monotone high-water mark with the same properties.
//! * **Gauges** (`queue_depth`, `par_grain`) are *instantaneous reads of
//!   authoritative state*, captured at snapshot time. Maintaining a
//!   gauge as its own atomic alongside the real state is a trap: the
//!   submit/pop sites race and the shadow copy goes stale (an earlier
//!   revision kept such a scratch `queue_depth` atomic here and `STATS`
//!   could report a depth the queue never had). The rule: a gauge is
//!   computed from its source of truth when the snapshot is taken —
//!   [`Metrics::snapshot`] therefore *takes* the live depth as an
//!   argument rather than storing one.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::request::DispatchReason;

const BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram over microseconds.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` µs (bucket 0 also takes
/// sub-microsecond samples); the last bucket absorbs the tail. Fixed
/// memory, lock-free recording, quantiles by bucket interpolation.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Running total of every recorded sample (µs) — the `_sum` series
    /// of the Prometheus exposition, so scrapers can compute true mean
    /// latency instead of a bucket-interpolated one.
    sum: AtomicU64,
}

impl Histogram {
    pub fn record(&self, micros: u64) {
        let idx = (64 - micros.leading_zeros() as usize).min(BUCKETS).saturating_sub(1);
        // ORDERING: Relaxed — independent monotonic bucket counter.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — independent monotonic sum counter.
        self.sum.fetch_add(micros, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(&self.buckets) {
            // ORDERING: Relaxed — the snapshot tolerates slightly-torn bucket views.
            *slot = b.load(Ordering::Relaxed);
        }
        // ORDERING: Relaxed — see above; sum and buckets may be one sample apart.
        HistogramSnapshot { buckets, sum: self.sum.load(Ordering::Relaxed) }
    }

    /// Zeroes every bucket and the sum. Used by the rolling-window ring
    /// when a slice is recycled; a reader racing the reset sees a
    /// partially-cleared histogram, which windowed telemetry tolerates
    /// (one slice of one window, momentarily under-counted).
    pub fn clear(&self) {
        for b in &self.buckets {
            // ORDERING: Relaxed — telemetry reset; see the doc comment.
            b.store(0, Ordering::Relaxed);
        }
        // ORDERING: Relaxed — telemetry reset; see the doc comment.
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// An immutable copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded samples (µs).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Number of buckets (also the length of [`Self::buckets`]).
    pub const LEN: usize = BUCKETS;

    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exclusive upper bound (µs) of bucket `i`, or `None` for the last
    /// bucket, which absorbs the tail (`+Inf` in exposition formats).
    /// Bucket 0 also takes sub-microsecond samples, so its effective
    /// range is `[0, 2)`.
    pub fn bucket_upper_bound(i: usize) -> Option<u64> {
        (i + 1 < BUCKETS).then(|| 1u64 << (i + 1))
    }

    /// Accumulates `other` into `self`, bucket by bucket — for
    /// aggregating histograms across engines or scrape intervals
    /// (log₂ bucketing makes merge exact, unlike quantile averaging).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }

    /// Upper bound (µs) of the bucket holding quantile `q` in `[0, 1]`.
    /// Returns 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// All engine counters and histograms, shared by workers and submitters.
#[derive(Default)]
pub struct Metrics {
    /// Requests offered to `submit` (accepted or not).
    pub submitted: AtomicU64,
    /// Requests accepted into the queue.
    pub accepted: AtomicU64,
    /// Requests bounced with [`Submit::QueueFull`](crate::Submit::QueueFull).
    pub rejected_queue_full: AtomicU64,
    /// Requests bounced at validation.
    pub rejected_invalid: AtomicU64,
    /// Requests fully served (ticket fulfilled with a result).
    pub completed: AtomicU64,
    /// Requests answered from a cached kernel index.
    pub cache_hits: AtomicU64,
    /// Requests that had to build (and insert) a kernel.
    pub cache_misses: AtomicU64,
    /// Cache entries evicted to make room.
    pub cache_evictions: AtomicU64,
    /// Requests served as part of a coalesced batch of size > 1.
    pub coalesced: AtomicU64,
    /// Batches popped by workers (1 batch may serve many requests).
    pub batches: AtomicU64,
    /// High-water mark of observed queue depths (fed by `note_depth`).
    pub max_queue_depth: AtomicU64,
    /// Dispatch decisions, one counter per [`DispatchReason`] (indexed
    /// by [`DispatchReason::index`]) — the `slcs_dispatch_total` series.
    pub dispatch: [AtomicU64; DispatchReason::COUNT],
    /// Resolved scheduling modes of grid-parallel kernel builds, one
    /// counter per [`SCHED_MODE_TOKENS`] label — the
    /// `slcs_sched_mode_total` series. `Auto` requests are counted
    /// under the concrete mode the tuning profile resolved them to.
    pub sched_modes: [AtomicU64; SCHED_MODE_TOKENS.len()],
    /// Protocol/request errors, one counter per [`ErrorKind`] (indexed
    /// by [`ErrorKind::index`]) — the `slcs_engine_errors_total` series.
    pub errors: [AtomicU64; ErrorKind::COUNT],
    /// Time from acceptance to a worker picking the request up.
    pub wait_micros: Histogram,
    /// Time a worker spent computing the answer.
    pub service_micros: Histogram,
}

/// Protocol/request error vocabulary of `slcs_engine_errors_total{kind}`
/// and the STATS `errors=` field. These are the failure paths that
/// previously left no metric trail: a malformed protocol line, an
/// oversize input bounced before parsing, a queue-full rejection
/// surfaced to a client, and an internal (panicked) request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unparseable or invalid protocol line (bad command, bad args).
    Malformed,
    /// Input line larger than the server's size cap.
    Oversize,
    /// Request bounced with BUSY because the queue was full.
    QueueFull,
    /// Request failed inside the engine (worker caught a panic).
    Internal,
}

impl ErrorKind {
    /// Every kind, in counter-index order (see [`Self::index`]).
    pub const ALL: [ErrorKind; 4] =
        [ErrorKind::Malformed, ErrorKind::Oversize, ErrorKind::QueueFull, ErrorKind::Internal];

    /// Number of kinds (length of [`Self::ALL`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Position of this kind in [`Self::ALL`] — the index of its counter.
    pub fn index(&self) -> usize {
        match self {
            ErrorKind::Malformed => 0,
            ErrorKind::Oversize => 1,
            ErrorKind::QueueFull => 2,
            ErrorKind::Internal => 3,
        }
    }

    /// Stable lowercase label — the `kind` value of the
    /// `slcs_engine_errors_total` series and the STATS `errors=` field.
    pub fn token(&self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::Oversize => "oversize",
            ErrorKind::QueueFull => "queue_full",
            ErrorKind::Internal => "internal",
        }
    }
}

/// Label set of the `slcs_sched_mode_total` series, index-aligned with
/// [`Metrics::sched_modes`] / [`StatsSnapshot::sched_modes`]. Matches
/// [`slcs_semilocal::Scheduling::token`] values.
pub const SCHED_MODE_TOKENS: [&str; 5] =
    ["spawn_per_diag", "pool_per_diag", "team", "work_steal", "auto"];

impl Metrics {
    pub fn note_depth(&self, depth: u64) {
        // ORDERING: Relaxed — a high-water mark; racing maxima still converge.
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records which branch the dispatcher took for one request.
    pub fn note_dispatch(&self, reason: DispatchReason) {
        // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
        self.dispatch[reason.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one protocol/request error.
    pub fn note_error(&self, kind: ErrorKind) {
        // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
        self.errors[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records the scheduling mode a grid-parallel kernel build ran
    /// under (the concrete mode, after `Auto` resolution).
    pub fn note_sched_mode(&self, mode: slcs_semilocal::Scheduling) {
        if let Some(i) = SCHED_MODE_TOKENS.iter().position(|t| *t == mode.token()) {
            // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
            self.sched_modes[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies every counter into a [`StatsSnapshot`]. `queue_depth` is a
    /// gauge, not a counter (see the module docs): the caller passes the
    /// live depth read from the queue itself, so `STATS`/`METRICS` can
    /// never report a stale shadow value.
    pub fn snapshot(&self, queue_depth: u64) -> StatsSnapshot {
        StatsSnapshot {
            // ORDERING: Relaxed (whole literal) — counters are independent; the
            // snapshot does not promise a consistent cross-counter cut.
            submitted: self.submitted.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            dispatch: std::array::from_fn(|i| self.dispatch[i].load(Ordering::Relaxed)),
            sched_modes: std::array::from_fn(|i| self.sched_modes[i].load(Ordering::Relaxed)),
            errors: std::array::from_fn(|i| self.errors[i].load(Ordering::Relaxed)),
            queue_depth,
            windows: crate::windows::WindowsSnapshot::default(),
            wait_micros: self.wait_micros.snapshot(),
            service_micros: self.service_micros.snapshot(),
            par_grain: slcs_semilocal::par_grain(),
            simd: slcs_semilocal::simd_support(),
            alloc: slcs_alloc::stats(),
            alloc_installed: slcs_alloc::installed(),
        }
    }
}

/// A point-in-time copy of every engine statistic.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    pub submitted: u64,
    pub accepted: u64,
    pub rejected_queue_full: u64,
    pub rejected_invalid: u64,
    pub completed: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub coalesced: u64,
    pub batches: u64,
    /// Dispatch-decision counts, indexed by [`DispatchReason::index`].
    pub dispatch: [u64; DispatchReason::COUNT],
    /// Grid-parallel scheduling-mode counts, index-aligned with
    /// [`SCHED_MODE_TOKENS`].
    pub sched_modes: [u64; SCHED_MODE_TOKENS.len()],
    /// Protocol/request error counts, indexed by [`ErrorKind::index`].
    pub errors: [u64; ErrorKind::COUNT],
    /// Rolling-window latency quantile data per request class (filled by
    /// [`Engine::stats`](crate::Engine::stats) from the engine's window
    /// ring; empty in a bare [`Metrics::snapshot`]).
    pub windows: crate::windows::WindowsSnapshot,
    /// Gauge: live queue depth at snapshot time (read from the queue
    /// itself, never a shadow atomic — see the module docs).
    pub queue_depth: u64,
    pub max_queue_depth: u64,
    pub wait_micros: HistogramSnapshot,
    pub service_micros: HistogramSnapshot,
    /// Effective anti-diagonal chunk grain (cells per parallel task),
    /// resolved once from `SLCS_PAR_GRAIN` — configuration, not a
    /// counter, but surfaced here so STATS readers can correlate latency
    /// shifts with scheduling granularity.
    pub par_grain: usize,
    /// Gauge-at-snapshot: the SIMD capability the branchless kernels
    /// compile/dispatch for on this host (`slcs_semilocal::simd_support`)
    /// — configuration like `par_grain`, surfaced so ops can tell an ISA
    /// downgrade from a genuine perf regression.
    pub simd: &'static str,
    /// Process-wide allocator telemetry from `slcs-alloc` (all zeros
    /// unless the binary installed [`slcs_alloc::InstrumentedAlloc`]
    /// as its global allocator).
    pub alloc: slcs_alloc::AllocStats,
    /// Whether the instrumented allocator is actually installed —
    /// distinguishes "no allocations counted" from "not measuring".
    pub alloc_installed: bool,
}

impl StatsSnapshot {
    /// Renders every counter, gauge and histogram as Prometheus text
    /// exposition (`# TYPE`-annotated, cumulative `le` buckets with
    /// explicit bounds). The `METRICS` server command serves this,
    /// appending executor/trace sections and the `# EOF` terminator.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        for (name, value) in [
            ("slcs_requests_submitted", self.submitted),
            ("slcs_requests_accepted", self.accepted),
            ("slcs_requests_rejected_queue_full", self.rejected_queue_full),
            ("slcs_requests_rejected_invalid", self.rejected_invalid),
            ("slcs_requests_completed", self.completed),
            ("slcs_cache_hits", self.cache_hits),
            ("slcs_cache_misses", self.cache_misses),
            ("slcs_cache_evictions", self.cache_evictions),
            ("slcs_requests_coalesced", self.coalesced),
            ("slcs_batches_popped", self.batches),
        ] {
            let _ = writeln!(out, "# TYPE {name}_total counter");
            let _ = writeln!(out, "{name}_total {value}");
        }
        // One labelled series per dispatch branch; every label pair is
        // emitted even at zero so scrapers see a stable set.
        let _ = writeln!(out, "# TYPE slcs_dispatch_total counter");
        for reason in DispatchReason::ALL {
            let _ = writeln!(
                out,
                "slcs_dispatch_total{{algo=\"{}\",reason=\"{}\"}} {}",
                reason.algo_token(),
                reason.token(),
                self.dispatch[reason.index()],
            );
        }
        // Scheduling modes actually run, stable-zero like the dispatch
        // series above.
        let _ = writeln!(out, "# TYPE slcs_sched_mode_total counter");
        for (token, count) in SCHED_MODE_TOKENS.iter().zip(&self.sched_modes) {
            let _ = writeln!(out, "slcs_sched_mode_total{{mode=\"{token}\"}} {count}");
        }
        // Protocol/request errors, stable-zero per kind.
        let _ = writeln!(out, "# TYPE slcs_engine_errors_total counter");
        for kind in ErrorKind::ALL {
            let _ = writeln!(
                out,
                "slcs_engine_errors_total{{kind=\"{}\"}} {}",
                kind.token(),
                self.errors[kind.index()],
            );
        }
        // Rolling-window latency quantiles per request class.
        self.windows.write_prometheus(&mut out);
        for (name, value) in [
            ("slcs_queue_depth", self.queue_depth),
            ("slcs_queue_depth_max", self.max_queue_depth),
            ("slcs_par_grain", self.par_grain as u64),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        // Info-style gauge: which branchless-kernel ISA this host runs.
        let _ = writeln!(out, "# TYPE slcs_simd_kernel gauge");
        let _ = writeln!(out, "slcs_simd_kernel{{isa=\"{}\"}} 1", self.simd);
        write_prometheus_histogram(&mut out, "slcs_wait_micros", &self.wait_micros);
        write_prometheus_histogram(&mut out, "slcs_service_micros", &self.service_micros);
        self.write_alloc_section(&mut out);
        out
    }

    /// The `slcs_alloc_*` section: allocator counters, live/peak
    /// gauges, and the power-of-two size-class histogram. Emitted even
    /// when the instrumented allocator is not installed (all zeros,
    /// `slcs_alloc_installed 0`) so scrape configs stay stable.
    fn write_alloc_section(&self, out: &mut String) {
        for (name, value) in [
            ("slcs_alloc_allocations", self.alloc.allocs),
            ("slcs_alloc_frees", self.alloc.frees),
            ("slcs_alloc_allocated_bytes", self.alloc.alloc_bytes),
            ("slcs_alloc_freed_bytes", self.alloc.freed_bytes),
        ] {
            let _ = writeln!(out, "# TYPE {name}_total counter");
            let _ = writeln!(out, "{name}_total {value}");
        }
        for (name, value) in [
            ("slcs_alloc_installed", u64::from(self.alloc_installed)),
            ("slcs_alloc_live_bytes", self.alloc.live_bytes),
            ("slcs_alloc_peak_live_bytes", self.alloc.peak_live_bytes),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        let name = "slcs_alloc_size_bytes";
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &count) in self.alloc.size_classes.iter().enumerate() {
            cumulative += count;
            match slcs_alloc::AllocStats::class_upper_bound(i) {
                Some(bound) => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(out, "{name}_sum {}", self.alloc.alloc_bytes);
        let _ = writeln!(out, "{name}_count {cumulative}");
    }
}

fn write_prometheus_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &count) in h.buckets.iter().enumerate() {
        cumulative += count;
        match HistogramSnapshot::bucket_upper_bound(i) {
            Some(bound) => {
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            None => {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
    }
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {cumulative}");
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: submitted={} accepted={} completed={} \
             rejected(queue_full={} invalid={})",
            self.submitted,
            self.accepted,
            self.completed,
            self.rejected_queue_full,
            self.rejected_invalid,
        )?;
        writeln!(
            f,
            "cache:    hits={} misses={} evictions={}",
            self.cache_hits, self.cache_misses, self.cache_evictions
        )?;
        write!(f, "dispatch:")?;
        for reason in DispatchReason::ALL {
            write!(f, " {}={}", reason.token(), self.dispatch[reason.index()])?;
        }
        writeln!(f)?;
        write!(f, "errors:  ")?;
        for kind in ErrorKind::ALL {
            write!(f, " {}={}", kind.token(), self.errors[kind.index()])?;
        }
        writeln!(f)?;
        writeln!(f, "batches:  {} popped, {} requests coalesced", self.batches, self.coalesced)?;
        writeln!(f, "queue:    depth={} max_depth={}", self.queue_depth, self.max_queue_depth)?;
        write!(f, "sched:    par_grain={} simd={}", self.par_grain, self.simd)?;
        for (token, count) in SCHED_MODE_TOKENS.iter().zip(&self.sched_modes) {
            write!(f, " {token}={count}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "memory:   allocs={} frees={} live={}B peak={}B ({})",
            self.alloc.allocs,
            self.alloc.frees,
            self.alloc.live_bytes,
            self.alloc.peak_live_bytes,
            if self.alloc_installed { "instrumented" } else { "not instrumented" },
        )?;
        writeln!(
            f,
            "wait:     p50<={}us p95<={}us p99<={}us (n={})",
            self.wait_micros.quantile(0.50),
            self.wait_micros.quantile(0.95),
            self.wait_micros.quantile(0.99),
            self.wait_micros.count(),
        )?;
        write!(
            f,
            "service:  p50<={}us p95<={}us p99<={}us (n={})",
            self.service_micros.quantile(0.50),
            self.service_micros.quantile(0.95),
            self.service_micros.quantile(0.99),
            self.service_micros.count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn quantile_walks_cumulative_counts() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(5000);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 2); // in bucket 0 → bound 2^1
        assert!(s.quantile(0.99) >= 4096);
        assert_eq!(HistogramSnapshot { buckets: [0; BUCKETS], sum: 0 }.quantile(0.9), 0);
    }

    #[test]
    fn snapshot_copies_counters_and_takes_live_depth() {
        let m = Metrics::default();
        m.submitted.fetch_add(3, Ordering::Relaxed);
        m.note_depth(7);
        m.note_depth(4);
        let s = m.snapshot(5);
        assert_eq!(s.submitted, 3);
        assert_eq!(s.max_queue_depth, 7);
        assert_eq!(s.queue_depth, 5, "gauge comes from the caller's live read");
        let text = s.to_string();
        assert!(text.contains("submitted=3"));
        assert!(text.contains("max_depth=7"));
        assert!(text.contains("depth=5"));
    }

    #[test]
    fn histogram_merge_is_bucketwise_sum() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record(1);
        a.record(1024);
        b.record(1);
        b.record(u64::MAX); // tail bucket
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.buckets[0], 2);
        assert_eq!(merged.buckets[10], 1);
        assert_eq!(merged.buckets[BUCKETS - 1], 1);
        assert_eq!(merged.count(), 4);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two_then_inf() {
        assert_eq!(HistogramSnapshot::bucket_upper_bound(0), Some(2));
        assert_eq!(HistogramSnapshot::bucket_upper_bound(10), Some(2048));
        assert_eq!(HistogramSnapshot::bucket_upper_bound(BUCKETS - 2), Some(1 << (BUCKETS - 1)));
        assert_eq!(HistogramSnapshot::bucket_upper_bound(BUCKETS - 1), None);
    }

    #[test]
    fn prometheus_exposition_lists_every_counter_and_bucket() {
        let m = Metrics::default();
        m.submitted.fetch_add(2, Ordering::Relaxed);
        m.wait_micros.record(3);
        m.wait_micros.record(3);
        m.service_micros.record(100);
        let text = m.snapshot(1).to_prometheus();
        for name in [
            "slcs_requests_submitted_total",
            "slcs_requests_accepted_total",
            "slcs_requests_rejected_queue_full_total",
            "slcs_requests_rejected_invalid_total",
            "slcs_requests_completed_total",
            "slcs_cache_hits_total",
            "slcs_cache_misses_total",
            "slcs_cache_evictions_total",
            "slcs_requests_coalesced_total",
            "slcs_batches_popped_total",
            "slcs_queue_depth",
            "slcs_queue_depth_max",
            "slcs_par_grain",
        ] {
            assert!(
                text.contains(&format!("\n{name} ")) || text.starts_with(&format!("{name} ")),
                "missing sample line for {name}:\n{text}"
            );
        }
        // Cumulative le buckets with explicit bounds, ending at +Inf.
        assert!(text.contains("slcs_wait_micros_bucket{le=\"2\"} 0"));
        assert!(text.contains("slcs_wait_micros_bucket{le=\"4\"} 2"));
        assert!(text.contains("slcs_wait_micros_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("slcs_wait_micros_count 2"));
        assert!(text.contains("slcs_wait_micros_sum 6"));
        assert!(text.contains("slcs_service_micros_bucket{le=\"128\"} 1"));
        assert!(text.contains("slcs_service_micros_count 1"));
        assert!(text.contains("slcs_service_micros_sum 100"));
        assert!(text.contains("# TYPE slcs_wait_micros histogram"));
        // The allocator section is always present, installed or not.
        for name in [
            "slcs_alloc_allocations_total",
            "slcs_alloc_frees_total",
            "slcs_alloc_allocated_bytes_total",
            "slcs_alloc_freed_bytes_total",
            "slcs_alloc_installed",
            "slcs_alloc_live_bytes",
            "slcs_alloc_peak_live_bytes",
            "slcs_alloc_size_bytes_sum",
            "slcs_alloc_size_bytes_count",
        ] {
            assert!(text.contains(&format!("\n{name} ")), "missing {name}:\n{text}");
        }
        assert!(text.contains("slcs_alloc_size_bytes_bucket{le=\"+Inf\"}"), "{text}");
    }

    #[test]
    fn dispatch_counters_expose_every_reason_with_stable_labels() {
        let m = Metrics::default();
        m.note_dispatch(DispatchReason::EditSimilar);
        m.note_dispatch(DispatchReason::EditSimilar);
        m.note_dispatch(DispatchReason::SmallAlphabet);
        let s = m.snapshot(0);
        assert_eq!(s.dispatch[DispatchReason::EditSimilar.index()], 2);
        assert_eq!(s.dispatch[DispatchReason::SmallAlphabet.index()], 1);
        assert_eq!(s.dispatch.iter().sum::<u64>(), 3);
        let text = s.to_prometheus();
        assert!(text.contains("# TYPE slcs_dispatch_total counter"));
        assert!(text.contains("slcs_dispatch_total{algo=\"osed\",reason=\"edit_similar\"} 2"));
        assert!(text.contains("slcs_dispatch_total{algo=\"bitpar\",reason=\"small_alphabet\"} 1"));
        // Zero-valued series are still emitted so the label set is stable.
        assert!(text.contains("slcs_dispatch_total{algo=\"cached\",reason=\"cache_hit\"} 0"));
        for reason in DispatchReason::ALL {
            assert!(
                text.contains(&format!("reason=\"{}\"", reason.token())),
                "missing series for {}:\n{text}",
                reason.token()
            );
        }
        let human = s.to_string();
        assert!(human.contains("dispatch:"), "{human}");
        assert!(human.contains("edit_similar=2"), "{human}");
    }

    #[test]
    fn sched_mode_and_simd_series_are_exposed() {
        let m = Metrics::default();
        m.note_sched_mode(slcs_semilocal::Scheduling::WorkSteal);
        m.note_sched_mode(slcs_semilocal::Scheduling::WorkSteal);
        m.note_sched_mode(slcs_semilocal::Scheduling::Team);
        let s = m.snapshot(0);
        assert_eq!(s.sched_modes.iter().sum::<u64>(), 3);
        let text = s.to_prometheus();
        assert!(text.contains("# TYPE slcs_sched_mode_total counter"), "{text}");
        assert!(text.contains("slcs_sched_mode_total{mode=\"work_steal\"} 2"), "{text}");
        assert!(text.contains("slcs_sched_mode_total{mode=\"team\"} 1"), "{text}");
        // Stable-zero: every mode label appears even when unused.
        for token in SCHED_MODE_TOKENS {
            assert!(text.contains(&format!("mode=\"{token}\"")), "missing {token}:\n{text}");
        }
        let isa = slcs_semilocal::simd_support();
        assert!(text.contains(&format!("slcs_simd_kernel{{isa=\"{isa}\"}} 1")), "{text}");
        let human = s.to_string();
        assert!(human.contains(&format!("simd={isa}")), "{human}");
        assert!(human.contains("work_steal=2"), "{human}");
    }

    #[test]
    fn histogram_sum_accumulates_and_merges() {
        let h = Histogram::default();
        h.record(3);
        h.record(7);
        let mut s = h.snapshot();
        assert_eq!(s.sum, 10);
        let other = Histogram::default();
        other.record(90);
        s.merge(&other.snapshot());
        assert_eq!(s.sum, 100);
        assert_eq!(s.count(), 3);
    }
}
