//! Adaptive algorithm selection and request execution.
//!
//! The engine has three ways to answer a comparison, with very different
//! cost profiles:
//!
//! * **Bit-parallel LCS** — O(σ·mn / 64) machine words, score only, no
//!   reusable artifact. Unbeatable for one-shot global scores on small
//!   alphabets.
//! * **Sequential combing** — O(mn) braid pass producing a semi-local
//!   kernel. Lowest constant factor; right for small grids or one thread.
//! * **Grid hybrid combing** — the paper's parallel comb; pays task
//!   spawning and merge overhead, so it only wins on grids large enough
//!   to amortize it across threads.
//!
//! [`choose`] is a pure function of (operation, input sizes, thread
//! budget) so tests can property-check it against reference oracles;
//! [`execute`] layers the kernel cache on top — a cached kernel beats
//! every fresh computation, so the cache is always consulted first for
//! kernel-based operations.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use slcs_bitpar::bit_lcs_alphabet;
use slcs_semilocal::{grid_hybrid_combing, iterative_combing, EditDistances, SemiLocalKernel};

use crate::cache::{CacheKey, CachedIndex, IndexKind, KernelCache, PlainEntry};
use crate::metrics::Metrics;
use crate::request::{AlgoChoice, CacheStatus, CompareRequest, Operation, Payload};

/// Grid area (`m * n`) below which sequential combing beats the parallel
/// comb's task-spawn and merge overhead.
pub const PAR_COMB_THRESHOLD: usize = 1 << 16;

/// Largest alphabet the bit-parallel fast path is worth: its cost grows
/// with ⌈log₂ σ⌉ bit planes, and past 64 symbols combing's reusable
/// kernel usually pays better.
pub const BITPAR_MAX_SIGMA: usize = 64;

/// Number of distinct byte values across both inputs.
pub fn alphabet_size(pattern: &[u8], text: &[u8]) -> usize {
    let mut seen = [false; 256];
    for &c in pattern.iter().chain(text) {
        seen[c as usize] = true;
    }
    seen.iter().filter(|&&s| s).count()
}

/// Which combing variant to use for an `m × n` grid on `threads` threads.
pub fn combing_choice(m: usize, n: usize, threads: usize) -> AlgoChoice {
    if threads <= 1 || m.saturating_mul(n) < PAR_COMB_THRESHOLD {
        AlgoChoice::IterativeCombing
    } else {
        AlgoChoice::GridHybridCombing { tasks: threads }
    }
}

/// The planned algorithm for a request, *ignoring* the cache (a cache
/// hit overrides any plan). Pure, so properties like "the plan's score
/// always matches the reference oracle" are directly testable.
pub fn choose(op: &Operation, pattern: &[u8], text: &[u8], threads: usize) -> AlgoChoice {
    let (m, n) = (pattern.len(), text.len());
    match op {
        Operation::Lcs if alphabet_size(pattern, text) <= BITPAR_MAX_SIGMA => {
            AlgoChoice::BitParallel
        }
        Operation::Lcs | Operation::Windows { .. } => combing_choice(m, n, threads),
        Operation::Edit { .. } => AlgoChoice::EditIndex,
    }
}

fn comb(pattern: &[u8], text: &[u8], threads: usize) -> (SemiLocalKernel, AlgoChoice) {
    let choice = combing_choice(pattern.len(), text.len(), threads);
    let _build_span = slcs_trace::span!(
        "engine.kernel_build",
        "algo" => choice.token(),
        "area" => pattern.len() * text.len()
    );
    // Attribute allocator traffic (braid blocks, kernel storage) to the
    // kernel-build phase; lands as an instant inside the span above.
    let _build_mem = slcs_alloc::alloc_scope!("engine.kernel_build.mem");
    match choice {
        AlgoChoice::GridHybridCombing { tasks } => {
            (grid_hybrid_combing(pattern, text, tasks), AlgoChoice::GridHybridCombing { tasks })
        }
        _ => (iterative_combing(pattern, text), AlgoChoice::IterativeCombing),
    }
}

/// Fetches or builds the plain kernel entry for a pair.
fn plain_entry(
    pattern: &[u8],
    text: &[u8],
    cache: &KernelCache,
    metrics: &Metrics,
    threads: usize,
) -> (Arc<PlainEntry>, AlgoChoice, CacheStatus) {
    let key = CacheKey::new(IndexKind::Plain, pattern, text);
    if let Some(CachedIndex::Plain(entry)) = cache.get(&key) {
        // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
        metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        slcs_trace::instant!("engine.cache_hit", "kind" => "plain");
        return (entry, AlgoChoice::CachedKernel, CacheStatus::Hit);
    }
    // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
    metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    let (kernel, algo) = comb(pattern, text, threads);
    let entry = Arc::new(PlainEntry::new(kernel));
    let evicted = cache.insert(key, CachedIndex::Plain(entry.clone()));
    // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
    metrics.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
    (entry, algo, CacheStatus::Miss)
}

/// Fetches or builds the edit-distance index for a pair.
fn edit_entry(
    pattern: &[u8],
    text: &[u8],
    cache: &KernelCache,
    metrics: &Metrics,
) -> (Arc<EditDistances>, AlgoChoice, CacheStatus) {
    let key = CacheKey::new(IndexKind::Edit, pattern, text);
    if let Some(CachedIndex::Edit(entry)) = cache.get(&key) {
        // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
        metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        slcs_trace::instant!("engine.cache_hit", "kind" => "edit");
        return (entry, AlgoChoice::CachedKernel, CacheStatus::Hit);
    }
    // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
    metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    let _build_span = slcs_trace::span!(
        "engine.index_build",
        "kind" => "edit",
        "area" => pattern.len() * text.len()
    );
    let _build_mem = slcs_alloc::alloc_scope!("engine.index_build.mem");
    let entry = Arc::new(EditDistances::new(pattern, text));
    let evicted = cache.insert(key, CachedIndex::Edit(entry.clone()));
    // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
    metrics.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
    (entry, AlgoChoice::EditIndex, CacheStatus::Miss)
}

fn best_window(scores: &[usize]) -> (usize, usize) {
    scores
        .iter()
        .enumerate()
        .max_by(|(i, a), (j, b)| a.cmp(b).then(j.cmp(i)))
        .map(|(i, &s)| (i, s))
        .unwrap_or((0, 0))
}

/// Serves one request: consults the cache, runs the chosen algorithm,
/// and reports which path was taken. Degenerate (empty) inputs are
/// answered directly so the kernel algorithms never see them.
pub fn execute(
    req: &CompareRequest,
    cache: &KernelCache,
    metrics: &Metrics,
    threads: usize,
) -> (Payload, AlgoChoice, CacheStatus) {
    let (pattern, text) = (&req.pattern[..], &req.text[..]);
    let (m, n) = (pattern.len(), text.len());
    if m == 0 || n == 0 {
        let payload = match req.op {
            Operation::Lcs => Payload::Score(0),
            Operation::Windows { w } => {
                let scores = vec![0; n + 1 - w];
                Payload::Windows { scores, best: (0, 0) }
            }
            Operation::Edit { w } => {
                // With an empty pattern every length-w window costs w
                // deletions; with an empty text no window is valid
                // (validation only admits w = None then).
                Payload::Edit { global: m + n, best: w.map(|w| (0, w, m + w)) }
            }
        };
        return (payload, AlgoChoice::BitParallel, CacheStatus::Bypass);
    }
    match req.op {
        Operation::Lcs => {
            // A cached kernel answers for free; otherwise only build one
            // when combing was the plan anyway — the bit-parallel path
            // is cheaper than a comb it wouldn't reuse.
            let key = CacheKey::new(IndexKind::Plain, pattern, text);
            if let Some(CachedIndex::Plain(entry)) = cache.get(&key) {
                // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
                metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                slcs_trace::instant!("engine.cache_hit", "kind" => "plain");
                return (
                    Payload::Score(entry.kernel().lcs()),
                    AlgoChoice::CachedKernel,
                    CacheStatus::Hit,
                );
            }
            match choose(&req.op, pattern, text, threads) {
                AlgoChoice::BitParallel => (
                    Payload::Score(bit_lcs_alphabet(pattern, text)),
                    AlgoChoice::BitParallel,
                    CacheStatus::Bypass,
                ),
                _ => {
                    // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
                    metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                    let (kernel, algo) = comb(pattern, text, threads);
                    let score = kernel.lcs();
                    let evicted =
                        cache.insert(key, CachedIndex::Plain(Arc::new(PlainEntry::new(kernel))));
                    // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
                    metrics.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
                    (Payload::Score(score), algo, CacheStatus::Miss)
                }
            }
        }
        Operation::Windows { w } => {
            let (entry, algo, status) = plain_entry(pattern, text, cache, metrics, threads);
            let scores = entry.scores().windows_linear(w);
            let best = best_window(&scores);
            (Payload::Windows { scores, best }, algo, status)
        }
        Operation::Edit { w } => {
            let (entry, algo, status) = edit_entry(pattern, text, cache, metrics);
            let global = entry.global();
            let best = w.map(|w| entry.best_window(w));
            (Payload::Edit { global, best }, algo, status)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slcs_baselines::{edit_distance, prefix_rowmajor};

    fn req(pattern: &[u8], text: &[u8], op: Operation) -> CompareRequest {
        CompareRequest::new(pattern, text, op)
    }

    #[test]
    fn choose_prefers_bitparallel_for_small_alphabet_scores() {
        assert_eq!(choose(&Operation::Lcs, b"acgt", b"tgca", 4), AlgoChoice::BitParallel);
        // Window queries always need a kernel.
        assert!(matches!(
            choose(&Operation::Windows { w: 2 }, b"acgt", b"tgca", 1),
            AlgoChoice::IterativeCombing
        ));
        assert_eq!(choose(&Operation::Edit { w: None }, b"ab", b"ba", 1), AlgoChoice::EditIndex);
    }

    #[test]
    fn combing_goes_parallel_only_on_large_grids_with_threads() {
        assert_eq!(combing_choice(100, 100, 8), AlgoChoice::IterativeCombing);
        assert_eq!(combing_choice(1000, 1000, 1), AlgoChoice::IterativeCombing);
        assert_eq!(combing_choice(1000, 1000, 8), AlgoChoice::GridHybridCombing { tasks: 8 });
    }

    #[test]
    fn execute_matches_reference_scores() {
        let cache = KernelCache::new(16);
        let metrics = Metrics::default();
        let (a, b) = (&b"bacaabca"[..], &b"abacabcab"[..]);
        let (payload, _, status) = execute(&req(a, b, Operation::Lcs), &cache, &metrics, 1);
        assert_eq!(payload, Payload::Score(prefix_rowmajor(a, b)));
        assert_eq!(status, CacheStatus::Bypass);
        let (payload, _, _) = execute(&req(a, b, Operation::Edit { w: None }), &cache, &metrics, 1);
        assert_eq!(payload, Payload::Edit { global: edit_distance(a, b), best: None });
    }

    #[test]
    fn window_scan_agrees_with_direct_lcs_per_window() {
        let cache = KernelCache::new(16);
        let metrics = Metrics::default();
        let (a, b) = (&b"abcba"[..], &b"babcbabcab"[..]);
        let w = 5;
        let (payload, _, status) =
            execute(&req(a, b, Operation::Windows { w }), &cache, &metrics, 1);
        let Payload::Windows { scores, best } = payload else { panic!("wrong payload") };
        assert_eq!(status, CacheStatus::Miss);
        for (i, &s) in scores.iter().enumerate() {
            assert_eq!(s, prefix_rowmajor(a, &b[i..i + w]), "window {i}");
        }
        assert_eq!(best.1, *scores.iter().max().unwrap());
        // Second identical request is a hit and bit-identical.
        let (payload2, algo2, status2) =
            execute(&req(a, b, Operation::Windows { w }), &cache, &metrics, 1);
        assert_eq!(status2, CacheStatus::Hit);
        assert_eq!(algo2, AlgoChoice::CachedKernel);
        assert_eq!(payload2, Payload::Windows { scores, best });
    }

    #[test]
    fn lcs_after_windows_reuses_the_cached_kernel() {
        let cache = KernelCache::new(16);
        let metrics = Metrics::default();
        let (a, b) = (&b"abcba"[..], &b"babcbabcab"[..]);
        execute(&req(a, b, Operation::Windows { w: 3 }), &cache, &metrics, 1);
        let (payload, algo, status) = execute(&req(a, b, Operation::Lcs), &cache, &metrics, 1);
        assert_eq!(status, CacheStatus::Hit);
        assert_eq!(algo, AlgoChoice::CachedKernel);
        assert_eq!(payload, Payload::Score(prefix_rowmajor(a, b)));
    }

    #[test]
    fn empty_inputs_are_served_directly() {
        let cache = KernelCache::new(4);
        let metrics = Metrics::default();
        let (payload, _, _) = execute(&req(b"", b"abc", Operation::Lcs), &cache, &metrics, 1);
        assert_eq!(payload, Payload::Score(0));
        let (payload, _, _) =
            execute(&req(b"", b"abc", Operation::Windows { w: 2 }), &cache, &metrics, 1);
        assert_eq!(payload, Payload::Windows { scores: vec![0, 0], best: (0, 0) });
        let (payload, _, _) =
            execute(&req(b"xy", b"", Operation::Edit { w: None }), &cache, &metrics, 1);
        assert_eq!(payload, Payload::Edit { global: 2, best: None });
        assert!(cache.is_empty());
    }
}
