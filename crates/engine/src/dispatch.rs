//! Adaptive algorithm selection and request execution.
//!
//! The engine has three ways to answer a comparison, with very different
//! cost profiles:
//!
//! * **Bit-parallel LCS** — O(σ·mn / 64) machine words, score only, no
//!   reusable artifact. Unbeatable for one-shot global scores on small
//!   alphabets.
//! * **Sequential combing** — O(mn) braid pass producing a semi-local
//!   kernel. Lowest constant factor; right for small grids or one thread.
//! * **Grid-parallel combing** — the paper's parallel comb; pays
//!   scheduling overhead, so it only wins on grids large enough to
//!   amortize it across threads. *Which* parallel schedule runs
//!   (barrier team, per-diagonal fork/join, work stealing) is resolved
//!   per request by the measured cost model ([`slcs_semilocal::tuning`],
//!   fed by `slcs tune`), recorded in `slcs_sched_mode_total{mode}` and
//!   the `engine.dispatch` instant's `sched` field.
//! * **Output-sensitive BFS** (`slcs-osed`) — Landau–Vishkin O(n + d²)
//!   edit distance. Wins by orders of magnitude when the inputs are
//!   nearly equal (small d), loses badly when they are not, so the
//!   dispatcher samples similarity ([`similar_inputs`]) before routing
//!   a global edit request to it. Thresholded requests
//!   ([`Operation::EditBounded`]) always take it: the BFS stops after
//!   `k + 1` rounds by construction.
//!
//! [`decide`] is a pure function of (operation, input bytes, thread
//! budget) returning a [`DispatchDecision`] — algorithm *and* the
//! reason it was picked — so tests can property-check routing and ops
//! can read it back from METRICS (`slcs_dispatch_total{algo,reason}`).
//! [`execute`] layers the kernel cache on top — a cached kernel beats
//! every fresh computation, so the cache is always consulted first for
//! kernel-based operations.

use crate::sync::atomic::Ordering;
use std::sync::Arc;

use slcs_bitpar::bit_lcs_alphabet;
use slcs_semilocal::{
    auto_plan, iterative_combing, par_antidiag_combing_branchless_sched, EditDistances,
    SemiLocalKernel,
};

use crate::cache::{CacheKey, CachedIndex, IndexKind, KernelCache, PlainEntry};
use crate::metrics::Metrics;
use crate::request::{
    AlgoChoice, CacheStatus, CompareRequest, DispatchDecision, DispatchReason, Operation, Payload,
};

/// Grid area (`m * n`) below which sequential combing beats the parallel
/// comb's task-spawn and merge overhead.
pub const PAR_COMB_THRESHOLD: usize = 1 << 16;

/// Largest alphabet the bit-parallel fast path is worth: its cost grows
/// with ⌈log₂ σ⌉ bit planes, and past 64 symbols combing's reusable
/// kernel usually pays better.
pub const BITPAR_MAX_SIGMA: usize = 64;

/// Number of distinct byte values across both inputs.
pub fn alphabet_size(pattern: &[u8], text: &[u8]) -> usize {
    let mut seen = [false; 256];
    for &c in pattern.iter().chain(text) {
        seen[c as usize] = true;
    }
    seen.iter().filter(|&&s| s).count()
}

/// Which combing variant to use for an `m × n` grid on `threads` threads.
pub fn combing_choice(m: usize, n: usize, threads: usize) -> AlgoChoice {
    if threads <= 1 || m.saturating_mul(n) < PAR_COMB_THRESHOLD {
        AlgoChoice::IterativeCombing
    } else {
        AlgoChoice::GridHybridCombing { tasks: threads }
    }
}

/// Shortest input (both sides) the similarity probe considers. Below
/// this the full-grid index is cheap anyway and the probe's anchors
/// would overlap into noise.
pub const OSED_MIN_LEN: usize = 64;

/// Bytes per similarity anchor sampled from the pattern.
const ANCHOR_LEN: usize = 8;

/// Number of anchors the probe samples.
const ANCHOR_COUNT: usize = 32;

/// Slack added to the search radius around each anchor's expected
/// position, absorbing indel drift the length difference doesn't show.
const ANCHOR_PAD: usize = 256;

/// Anchor hits required to call a pair "similar" (out of
/// [`ANCHOR_COUNT`] sampled).
const ANCHOR_HITS: usize = 8;

/// Cheap similarity probe: samples [`ANCHOR_COUNT`] 8-byte anchors at
/// evenly spaced pattern positions and looks for each near its
/// proportional position in the text (± `|m−n| +` [`ANCHOR_PAD`]).
/// Nearly identical strings hit almost every anchor; unrelated strings
/// hit almost none (a random 8-byte match is vanishingly unlikely for
/// non-trivial alphabets). O(anchors · radius) — microseconds against
/// the milliseconds-to-seconds grid build it gates.
pub fn similar_inputs(pattern: &[u8], text: &[u8]) -> bool {
    let (m, n) = (pattern.len(), text.len());
    if m < OSED_MIN_LEN || n < OSED_MIN_LEN {
        return false;
    }
    // A length gap over 25% means d ≥ gap is already grid territory.
    if m.abs_diff(n) > m.min(n) / 4 {
        return false;
    }
    let radius = m.abs_diff(n) + ANCHOR_PAD;
    let mut hits = 0;
    for i in 0..ANCHOR_COUNT {
        let pos = i * (m - ANCHOR_LEN) / (ANCHOR_COUNT - 1);
        let anchor = &pattern[pos..pos + ANCHOR_LEN];
        let center = pos * n / m;
        let lo = center.saturating_sub(radius);
        let hi = (center + radius + ANCHOR_LEN).min(n);
        if text[lo..hi].windows(ANCHOR_LEN).any(|w| w == anchor) {
            hits += 1;
        }
    }
    hits >= ANCHOR_HITS
}

/// The planned route for a request, *ignoring* the cache (a cache hit
/// overrides any plan). Pure, so properties like "the plan's score
/// always matches the reference oracle" and "similar pairs go to osed"
/// are directly testable.
pub fn decide(op: &Operation, pattern: &[u8], text: &[u8], threads: usize) -> DispatchDecision {
    let (m, n) = (pattern.len(), text.len());
    match op {
        Operation::Lcs if alphabet_size(pattern, text) <= BITPAR_MAX_SIGMA => DispatchDecision {
            algo: AlgoChoice::BitParallel,
            reason: DispatchReason::SmallAlphabet,
        },
        Operation::Lcs | Operation::Windows { .. } => {
            let algo = combing_choice(m, n, threads);
            let reason = match algo {
                AlgoChoice::GridHybridCombing { .. } => DispatchReason::GridParallel,
                _ => DispatchReason::GridSequential,
            };
            DispatchDecision { algo, reason }
        }
        Operation::Edit { w: Some(_) } => {
            DispatchDecision { algo: AlgoChoice::EditIndex, reason: DispatchReason::EditWindowed }
        }
        Operation::Edit { w: None } => {
            if similar_inputs(pattern, text) {
                DispatchDecision {
                    algo: AlgoChoice::OutputSensitive,
                    reason: DispatchReason::EditSimilar,
                }
            } else {
                DispatchDecision {
                    algo: AlgoChoice::EditIndex,
                    reason: DispatchReason::EditDissimilar,
                }
            }
        }
        Operation::EditBounded { .. } => DispatchDecision {
            algo: AlgoChoice::OutputSensitive,
            reason: DispatchReason::EditBoundedK,
        },
    }
}

/// The planned algorithm for a request — [`decide`] without the reason,
/// kept for callers that only route.
pub fn choose(op: &Operation, pattern: &[u8], text: &[u8], threads: usize) -> AlgoChoice {
    decide(op, pattern, text, threads).algo
}

fn comb(
    pattern: &[u8],
    text: &[u8],
    metrics: &Metrics,
    threads: usize,
) -> (SemiLocalKernel, AlgoChoice) {
    let choice = combing_choice(pattern.len(), text.len(), threads);
    match choice {
        AlgoChoice::GridHybridCombing { tasks } => {
            // The grid-parallel route consults the measured cost model
            // (`slcs tune` → perf/tuning.json, builtin table otherwise)
            // for the concrete scheduling mode and grain. The mode is
            // the `sched` field of the build span (it determines the
            // algo token, so the span carries sched + area).
            let (mode, grain) = auto_plan(pattern.len(), text.len(), tasks);
            metrics.note_sched_mode(mode);
            let _build_span = slcs_trace::span!(
                "engine.kernel_build",
                "sched" => mode.token(),
                "area" => pattern.len() * text.len()
            );
            // Attribute allocator traffic (braid blocks, kernel storage)
            // to the kernel-build phase; lands inside the span above.
            let _build_mem = slcs_alloc::alloc_scope!("engine.kernel_build.mem");
            (
                par_antidiag_combing_branchless_sched(pattern, text, mode, grain),
                AlgoChoice::GridHybridCombing { tasks },
            )
        }
        _ => {
            let _build_span = slcs_trace::span!(
                "engine.kernel_build",
                "sched" => "seq",
                "area" => pattern.len() * text.len()
            );
            let _build_mem = slcs_alloc::alloc_scope!("engine.kernel_build.mem");
            (iterative_combing(pattern, text), AlgoChoice::IterativeCombing)
        }
    }
}

/// Fetches or builds the plain kernel entry for a pair.
fn plain_entry(
    pattern: &[u8],
    text: &[u8],
    cache: &KernelCache,
    metrics: &Metrics,
    threads: usize,
) -> (Arc<PlainEntry>, AlgoChoice, CacheStatus) {
    let key = CacheKey::new(IndexKind::Plain, pattern, text);
    if let Some(CachedIndex::Plain(entry)) = cache.get(&key) {
        // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
        metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        slcs_trace::instant!("engine.cache_hit", "kind" => "plain");
        return (entry, AlgoChoice::CachedKernel, CacheStatus::Hit);
    }
    // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
    metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    let (kernel, algo) = comb(pattern, text, metrics, threads);
    let entry = Arc::new(PlainEntry::new(kernel));
    let evicted = cache.insert(key, CachedIndex::Plain(entry.clone()));
    // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
    metrics.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
    (entry, algo, CacheStatus::Miss)
}

/// Fetches or builds the edit-distance index for a pair.
fn edit_entry(
    pattern: &[u8],
    text: &[u8],
    cache: &KernelCache,
    metrics: &Metrics,
) -> (Arc<EditDistances>, AlgoChoice, CacheStatus) {
    let key = CacheKey::new(IndexKind::Edit, pattern, text);
    if let Some(CachedIndex::Edit(entry)) = cache.get(&key) {
        // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
        metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        slcs_trace::instant!("engine.cache_hit", "kind" => "edit");
        return (entry, AlgoChoice::CachedKernel, CacheStatus::Hit);
    }
    // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
    metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    let _build_span = slcs_trace::span!(
        "engine.index_build",
        "kind" => "edit",
        "area" => pattern.len() * text.len()
    );
    let _build_mem = slcs_alloc::alloc_scope!("engine.index_build.mem");
    let entry = Arc::new(EditDistances::new(pattern, text));
    let evicted = cache.insert(key, CachedIndex::Edit(entry.clone()));
    // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
    metrics.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
    (entry, AlgoChoice::EditIndex, CacheStatus::Miss)
}

fn best_window(scores: &[usize]) -> (usize, usize) {
    scores
        .iter()
        .enumerate()
        .max_by(|(i, a), (j, b)| a.cmp(b).then(j.cmp(i)))
        .map(|(i, &s)| (i, s))
        .unwrap_or((0, 0))
}

/// Everything [`execute_request`] learned serving one request — the
/// payload plus the audit facts the flight recorder stores.
pub struct Executed {
    pub payload: Payload,
    pub algo: AlgoChoice,
    pub cache: CacheStatus,
    pub reason: DispatchReason,
    /// Scheduling-mode token (`"seq"` or a concrete grid mode).
    pub sched: &'static str,
}

/// Serves one request: consults the cache, runs the chosen algorithm,
/// and reports which path was taken. Degenerate (empty) inputs are
/// answered directly so the kernel algorithms never see them. Every
/// call lands in exactly one `slcs_dispatch_total{algo,reason}` bucket
/// and emits one `engine.dispatch` trace instant.
pub fn execute(
    req: &CompareRequest,
    cache: &KernelCache,
    metrics: &Metrics,
    threads: usize,
) -> (Payload, AlgoChoice, CacheStatus) {
    let ex = execute_request(req, cache, metrics, threads, 0);
    (ex.payload, ex.algo, ex.cache)
}

/// [`execute`] plus the audit plumbing: the engine-assigned request id
/// rides on the `engine.dispatch` instant (so exemplar traces are
/// navigable back to their audit record), and the dispatch facts are
/// returned for the flight recorder.
pub fn execute_request(
    req: &CompareRequest,
    cache: &KernelCache,
    metrics: &Metrics,
    threads: usize,
    req_id: u64,
) -> Executed {
    let (payload, algo, cache_status, reason) = execute_inner(req, cache, metrics, threads);
    metrics.note_dispatch(reason);
    // The scheduling mode a grid-parallel build resolves to is a pure
    // function of (m, n, threads) and the loaded profile, so it can be
    // recomputed here for the instant without plumbing it out of comb().
    let sched = match algo {
        AlgoChoice::GridHybridCombing { tasks } => {
            auto_plan(req.pattern.len(), req.text.len(), tasks).0.token()
        }
        _ => "seq",
    };
    // Three field slots per event: `reason` implies `algo` (see
    // `DispatchReason::algo_token`), so the triple carried here is the
    // routing reason, the resolved scheduling mode, and the request id.
    slcs_trace::instant!(
        "engine.dispatch",
        "reason" => reason.token(),
        "sched" => sched,
        "req" => req_id
    );
    Executed { payload, algo, cache: cache_status, reason, sched }
}

/// The reason matching a fetch-or-build helper's outcome: a cache hit
/// overrides whatever the miss path would have reported.
fn entry_reason(status: CacheStatus, miss: DispatchReason) -> DispatchReason {
    match status {
        CacheStatus::Hit => DispatchReason::CacheHit,
        _ => miss,
    }
}

fn execute_inner(
    req: &CompareRequest,
    cache: &KernelCache,
    metrics: &Metrics,
    threads: usize,
) -> (Payload, AlgoChoice, CacheStatus, DispatchReason) {
    let (pattern, text) = (&req.pattern[..], &req.text[..]);
    let (m, n) = (pattern.len(), text.len());
    if m == 0 || n == 0 {
        let payload = match req.op {
            Operation::Lcs => Payload::Score(0),
            Operation::Windows { w } => {
                let scores = vec![0; n + 1 - w];
                Payload::Windows { scores, best: (0, 0) }
            }
            Operation::Edit { w } => {
                // With an empty pattern every length-w window costs w
                // deletions; with an empty text no window is valid
                // (validation only admits w = None then).
                Payload::Edit { global: m + n, best: w.map(|w| (0, w, m + w)) }
            }
            Operation::EditBounded { k } => {
                let d = m + n;
                Payload::EditBounded { distance: (d <= k).then_some(d), k }
            }
        };
        return (payload, AlgoChoice::BitParallel, CacheStatus::Bypass, DispatchReason::EmptyInput);
    }
    match req.op {
        Operation::Lcs => {
            // A cached kernel answers for free; otherwise only build one
            // when combing was the plan anyway — the bit-parallel path
            // is cheaper than a comb it wouldn't reuse.
            let key = CacheKey::new(IndexKind::Plain, pattern, text);
            if let Some(CachedIndex::Plain(entry)) = cache.get(&key) {
                // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
                metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                slcs_trace::instant!("engine.cache_hit", "kind" => "plain");
                return (
                    Payload::Score(entry.kernel().lcs()),
                    AlgoChoice::CachedKernel,
                    CacheStatus::Hit,
                    DispatchReason::CacheHit,
                );
            }
            let decision = decide(&req.op, pattern, text, threads);
            match decision.algo {
                AlgoChoice::BitParallel => (
                    Payload::Score(bit_lcs_alphabet(pattern, text)),
                    AlgoChoice::BitParallel,
                    CacheStatus::Bypass,
                    decision.reason,
                ),
                _ => {
                    // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
                    metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                    let (kernel, algo) = comb(pattern, text, metrics, threads);
                    let score = kernel.lcs();
                    let evicted =
                        cache.insert(key, CachedIndex::Plain(Arc::new(PlainEntry::new(kernel))));
                    // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
                    metrics.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
                    let reason = match algo {
                        AlgoChoice::GridHybridCombing { .. } => DispatchReason::GridParallel,
                        _ => DispatchReason::GridSequential,
                    };
                    (Payload::Score(score), algo, CacheStatus::Miss, reason)
                }
            }
        }
        Operation::Windows { w } => {
            let (entry, algo, status) = plain_entry(pattern, text, cache, metrics, threads);
            let scores = entry.scores().windows_linear(w);
            let best = best_window(&scores);
            let miss = match algo {
                AlgoChoice::GridHybridCombing { .. } => DispatchReason::GridParallel,
                _ => DispatchReason::GridSequential,
            };
            (Payload::Windows { scores, best }, algo, status, entry_reason(status, miss))
        }
        Operation::Edit { w: Some(w) } => {
            let (entry, algo, status) = edit_entry(pattern, text, cache, metrics);
            let global = entry.global();
            let best = Some(entry.best_window(w));
            let reason = entry_reason(status, DispatchReason::EditWindowed);
            (Payload::Edit { global, best }, algo, status, reason)
        }
        Operation::Edit { w: None } => {
            // A cached index answers for free even when the plan would
            // be osed; otherwise similarity decides between the O(n+d²)
            // BFS (no reusable artifact — the cache is bypassed, not
            // missed) and the full index.
            let key = CacheKey::new(IndexKind::Edit, pattern, text);
            if let Some(CachedIndex::Edit(entry)) = cache.get(&key) {
                // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
                metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                slcs_trace::instant!("engine.cache_hit", "kind" => "edit");
                return (
                    Payload::Edit { global: entry.global(), best: None },
                    AlgoChoice::CachedKernel,
                    CacheStatus::Hit,
                    DispatchReason::CacheHit,
                );
            }
            let decision = decide(&req.op, pattern, text, threads);
            if decision.algo == AlgoChoice::OutputSensitive {
                let global = if threads > 1 {
                    slcs_osed::par_edit_distance(pattern, text)
                } else {
                    slcs_osed::edit_distance(pattern, text)
                };
                return (
                    Payload::Edit { global, best: None },
                    AlgoChoice::OutputSensitive,
                    CacheStatus::Bypass,
                    decision.reason,
                );
            }
            let (entry, algo, status) = edit_entry(pattern, text, cache, metrics);
            let reason = entry_reason(status, decision.reason);
            (Payload::Edit { global: entry.global(), best: None }, algo, status, reason)
        }
        Operation::EditBounded { k } => {
            // A full index left behind by an earlier Edit request knows
            // the exact distance — reuse it rather than re-running the
            // BFS; a fresh request runs the k-capped BFS and never
            // builds (or misses) anything cacheable.
            let key = CacheKey::new(IndexKind::Edit, pattern, text);
            if let Some(CachedIndex::Edit(entry)) = cache.get(&key) {
                // ORDERING: Relaxed — independent monotonic metrics counter; nothing is published through it.
                metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                slcs_trace::instant!("engine.cache_hit", "kind" => "edit");
                let global = entry.global();
                return (
                    Payload::EditBounded { distance: (global <= k).then_some(global), k },
                    AlgoChoice::CachedKernel,
                    CacheStatus::Hit,
                    DispatchReason::CacheHit,
                );
            }
            let distance = slcs_osed::edit_distance_bounded(pattern, text, k);
            (
                Payload::EditBounded { distance, k },
                AlgoChoice::OutputSensitive,
                CacheStatus::Bypass,
                DispatchReason::EditBoundedK,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slcs_baselines::{edit_distance, prefix_rowmajor};

    fn req(pattern: &[u8], text: &[u8], op: Operation) -> CompareRequest {
        CompareRequest::new(pattern, text, op)
    }

    #[test]
    fn choose_prefers_bitparallel_for_small_alphabet_scores() {
        assert_eq!(choose(&Operation::Lcs, b"acgt", b"tgca", 4), AlgoChoice::BitParallel);
        // Window queries always need a kernel.
        assert!(matches!(
            choose(&Operation::Windows { w: 2 }, b"acgt", b"tgca", 1),
            AlgoChoice::IterativeCombing
        ));
        assert_eq!(choose(&Operation::Edit { w: None }, b"ab", b"ba", 1), AlgoChoice::EditIndex);
    }

    #[test]
    fn combing_goes_parallel_only_on_large_grids_with_threads() {
        assert_eq!(combing_choice(100, 100, 8), AlgoChoice::IterativeCombing);
        assert_eq!(combing_choice(1000, 1000, 1), AlgoChoice::IterativeCombing);
        assert_eq!(combing_choice(1000, 1000, 8), AlgoChoice::GridHybridCombing { tasks: 8 });
    }

    #[test]
    fn execute_matches_reference_scores() {
        let cache = KernelCache::new(16);
        let metrics = Metrics::default();
        let (a, b) = (&b"bacaabca"[..], &b"abacabcab"[..]);
        let (payload, _, status) = execute(&req(a, b, Operation::Lcs), &cache, &metrics, 1);
        assert_eq!(payload, Payload::Score(prefix_rowmajor(a, b)));
        assert_eq!(status, CacheStatus::Bypass);
        let (payload, _, _) = execute(&req(a, b, Operation::Edit { w: None }), &cache, &metrics, 1);
        assert_eq!(payload, Payload::Edit { global: edit_distance(a, b), best: None });
    }

    #[test]
    fn window_scan_agrees_with_direct_lcs_per_window() {
        let cache = KernelCache::new(16);
        let metrics = Metrics::default();
        let (a, b) = (&b"abcba"[..], &b"babcbabcab"[..]);
        let w = 5;
        let (payload, _, status) =
            execute(&req(a, b, Operation::Windows { w }), &cache, &metrics, 1);
        let Payload::Windows { scores, best } = payload else { panic!("wrong payload") };
        assert_eq!(status, CacheStatus::Miss);
        for (i, &s) in scores.iter().enumerate() {
            assert_eq!(s, prefix_rowmajor(a, &b[i..i + w]), "window {i}");
        }
        assert_eq!(best.1, *scores.iter().max().unwrap());
        // Second identical request is a hit and bit-identical.
        let (payload2, algo2, status2) =
            execute(&req(a, b, Operation::Windows { w }), &cache, &metrics, 1);
        assert_eq!(status2, CacheStatus::Hit);
        assert_eq!(algo2, AlgoChoice::CachedKernel);
        assert_eq!(payload2, Payload::Windows { scores, best });
    }

    #[test]
    fn lcs_after_windows_reuses_the_cached_kernel() {
        let cache = KernelCache::new(16);
        let metrics = Metrics::default();
        let (a, b) = (&b"abcba"[..], &b"babcbabcab"[..]);
        execute(&req(a, b, Operation::Windows { w: 3 }), &cache, &metrics, 1);
        let (payload, algo, status) = execute(&req(a, b, Operation::Lcs), &cache, &metrics, 1);
        assert_eq!(status, CacheStatus::Hit);
        assert_eq!(algo, AlgoChoice::CachedKernel);
        assert_eq!(payload, Payload::Score(prefix_rowmajor(a, b)));
    }

    #[test]
    fn empty_inputs_are_served_directly() {
        let cache = KernelCache::new(4);
        let metrics = Metrics::default();
        let (payload, _, _) = execute(&req(b"", b"abc", Operation::Lcs), &cache, &metrics, 1);
        assert_eq!(payload, Payload::Score(0));
        let (payload, _, _) =
            execute(&req(b"", b"abc", Operation::Windows { w: 2 }), &cache, &metrics, 1);
        assert_eq!(payload, Payload::Windows { scores: vec![0, 0], best: (0, 0) });
        let (payload, _, _) =
            execute(&req(b"xy", b"", Operation::Edit { w: None }), &cache, &metrics, 1);
        assert_eq!(payload, Payload::Edit { global: 2, best: None });
        let (payload, _, _) =
            execute(&req(b"xy", b"", Operation::EditBounded { k: 1 }), &cache, &metrics, 1);
        assert_eq!(payload, Payload::EditBounded { distance: None, k: 1 });
        let (payload, _, _) =
            execute(&req(b"xy", b"", Operation::EditBounded { k: 2 }), &cache, &metrics, 1);
        assert_eq!(payload, Payload::EditBounded { distance: Some(2), k: 2 });
        assert!(cache.is_empty());
    }

    type Pair = (Vec<u8>, Vec<u8>);

    /// A seeded ≥ OSED_MIN_LEN pair at ~99% similarity, plus an
    /// unrelated pair of the same lengths.
    fn probe_pairs() -> (Pair, Pair) {
        let mut rng = slcs_datagen::seeded_rng(71);
        let similar = slcs_datagen::similar_pair(&mut rng, 2_048, 26, 0.01);
        let unrelated = (
            slcs_datagen::uniform_string(&mut rng, 2_048, 26),
            slcs_datagen::uniform_string(&mut rng, 2_048, 26),
        );
        (similar, unrelated)
    }

    #[test]
    fn similarity_probe_separates_near_identical_from_unrelated() {
        let ((a, b), (x, y)) = probe_pairs();
        assert!(similar_inputs(&a, &b));
        assert!(similar_inputs(&b, &a), "probe should be usable in either orientation");
        assert!(!similar_inputs(&x, &y));
        // Too short to probe, even when identical.
        assert!(!similar_inputs(b"abc", b"abc"));
        // A 2x length gap is grid territory regardless of content.
        let half = a[..a.len() / 2].to_vec();
        assert!(!similar_inputs(&a, &half));
    }

    #[test]
    fn decide_routes_similar_global_edits_to_osed() {
        let ((a, b), (x, y)) = probe_pairs();
        let op = Operation::Edit { w: None };
        assert_eq!(
            decide(&op, &a, &b, 1),
            DispatchDecision {
                algo: AlgoChoice::OutputSensitive,
                reason: DispatchReason::EditSimilar
            }
        );
        assert_eq!(decide(&op, &x, &y, 1).reason, DispatchReason::EditDissimilar);
        // Windowed edits always need the index; bounded edits always
        // take the capped BFS.
        assert_eq!(decide(&Operation::Edit { w: Some(9) }, &a, &b, 1).algo, AlgoChoice::EditIndex);
        assert_eq!(
            decide(&Operation::EditBounded { k: 3 }, &x, &y, 1).algo,
            AlgoChoice::OutputSensitive
        );
    }

    #[test]
    fn osed_path_matches_the_index_and_bypasses_the_cache() {
        let cache = KernelCache::new(16);
        let metrics = Metrics::default();
        let ((a, b), _) = probe_pairs();
        let expected = edit_distance(&a, &b);
        for threads in [1, 4] {
            let (payload, algo, status) =
                execute(&req(&a, &b, Operation::Edit { w: None }), &cache, &metrics, threads);
            assert_eq!(payload, Payload::Edit { global: expected, best: None });
            assert_eq!(algo, AlgoChoice::OutputSensitive);
            assert_eq!(status, CacheStatus::Bypass);
        }
        assert!(cache.is_empty(), "the BFS leaves no artifact to cache");
    }

    #[test]
    fn bounded_edit_caps_the_bfs_and_reuses_a_cached_index() {
        let cache = KernelCache::new(16);
        let metrics = Metrics::default();
        let (_, (x, y)) = probe_pairs();
        let d = edit_distance(&x, &y);
        let (payload, algo, status) =
            execute(&req(&x, &y, Operation::EditBounded { k: d }), &cache, &metrics, 1);
        assert_eq!(payload, Payload::EditBounded { distance: Some(d), k: d });
        assert_eq!(algo, AlgoChoice::OutputSensitive);
        assert_eq!(status, CacheStatus::Bypass);
        let (payload, _, _) =
            execute(&req(&x, &y, Operation::EditBounded { k: d - 1 }), &cache, &metrics, 1);
        assert_eq!(payload, Payload::EditBounded { distance: None, k: d - 1 });
        // A full Edit request builds the index; the next bounded query
        // answers from it instead of re-running the BFS.
        execute(&req(&x, &y, Operation::Edit { w: None }), &cache, &metrics, 1);
        let (payload, algo, status) =
            execute(&req(&x, &y, Operation::EditBounded { k: d }), &cache, &metrics, 1);
        assert_eq!(payload, Payload::EditBounded { distance: Some(d), k: d });
        assert_eq!(algo, AlgoChoice::CachedKernel);
        assert_eq!(status, CacheStatus::Hit);
    }

    #[test]
    fn every_execute_lands_in_exactly_one_dispatch_bucket() {
        let cache = KernelCache::new(16);
        let metrics = Metrics::default();
        let ((a, b), _) = probe_pairs();
        execute(&req(b"acgt", b"tgca", Operation::Lcs), &cache, &metrics, 1);
        execute(&req(&a, &b, Operation::Edit { w: None }), &cache, &metrics, 1);
        execute(&req(&a, &b, Operation::EditBounded { k: 64 }), &cache, &metrics, 1);
        execute(&req(b"", b"abc", Operation::Lcs), &cache, &metrics, 1);
        let snap = metrics.snapshot(0);
        let total: u64 = snap.dispatch.iter().sum();
        assert_eq!(total, 4);
        let count = |r: DispatchReason| snap.dispatch[r.index()];
        assert_eq!(count(DispatchReason::SmallAlphabet), 1);
        assert_eq!(count(DispatchReason::EditSimilar), 1);
        assert_eq!(count(DispatchReason::EditBoundedK), 1);
        assert_eq!(count(DispatchReason::EmptyInput), 1);
    }
}
