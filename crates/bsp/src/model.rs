//! The BSP machine and cost accounting (Valiant 1990).
//!
//! A BSP computation is a sequence of *supersteps*; in each, every
//! processor computes locally, then exchanges messages, then all barriers
//! synchronise. With machine parameters `(p, g, l)` — processor count,
//! per-word communication gap, and barrier latency — a superstep in which
//! the busiest processor performs `w` operations and the largest
//! inbound/outbound message volume is `h` words costs
//!
//! ```text
//! T(superstep) = w + g·h + l
//! ```
//!
//! all in units of one local operation.

/// BSP machine parameters, in units of one local word operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BspMachine {
    /// Processors.
    pub p: usize,
    /// Communication gap: cost per word of an h-relation.
    pub g: f64,
    /// Barrier synchronisation latency.
    pub l: f64,
}

impl BspMachine {
    /// A machine with free communication (the PRAM-like limit).
    pub fn pram(p: usize) -> Self {
        BspMachine { p, g: 0.0, l: 0.0 }
    }
}

/// One superstep's cost profile: the busiest processor's local work and
/// the largest per-processor message volume.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Superstep {
    /// max over processors of local operations.
    pub work: f64,
    /// max over processors of words sent or received (the h-relation).
    pub h_words: f64,
}

/// An accumulated BSP cost: a sequence of supersteps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BspCost {
    pub supersteps: Vec<Superstep>,
}

impl BspCost {
    /// Appends a superstep.
    pub fn step(&mut self, work: f64, h_words: f64) {
        self.supersteps.push(Superstep { work, h_words });
    }

    /// Number of barrier synchronisations.
    pub fn sync_count(&self) -> usize {
        self.supersteps.len()
    }

    /// Total local work (sum of per-superstep maxima).
    pub fn total_work(&self) -> f64 {
        self.supersteps.iter().map(|s| s.work).sum()
    }

    /// Total communication volume (sum of per-superstep h-relations).
    pub fn total_comm(&self) -> f64 {
        self.supersteps.iter().map(|s| s.h_words).sum()
    }

    /// Predicted running time on `machine`, in local-operation units.
    pub fn time(&self, machine: &BspMachine) -> f64 {
        self.supersteps.iter().map(|s| s.work + machine.g * s.h_words + machine.l).sum()
    }

    /// Concatenates two cost sequences (sequential composition).
    pub fn then(mut self, other: BspCost) -> BspCost {
        self.supersteps.extend(other.supersteps);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_decomposes_linearly() {
        let mut c = BspCost::default();
        c.step(100.0, 10.0);
        c.step(50.0, 5.0);
        let m = BspMachine { p: 4, g: 2.0, l: 30.0 };
        assert_eq!(c.time(&m), 100.0 + 20.0 + 30.0 + 50.0 + 10.0 + 30.0);
        assert_eq!(c.sync_count(), 2);
        assert_eq!(c.total_work(), 150.0);
        assert_eq!(c.total_comm(), 15.0);
    }

    #[test]
    fn pram_machine_ignores_comm_and_sync() {
        let mut c = BspCost::default();
        c.step(10.0, 1_000.0);
        assert_eq!(c.time(&BspMachine::pram(8)), 10.0);
    }

    #[test]
    fn then_concatenates() {
        let mut a = BspCost::default();
        a.step(1.0, 0.0);
        let mut b = BspCost::default();
        b.step(2.0, 3.0);
        let c = a.then(b);
        assert_eq!(c.sync_count(), 2);
        assert_eq!(c.total_work(), 3.0);
    }
}
