//! BSP (bulk-synchronous parallel) cost modelling for parallel string
//! comparison.
//!
//! The paper's parallel braid-multiplication approach originates in the
//! BSP algorithms of Tiskin, *Communication vs Synchronisation in
//! Parallel String Comparison* (SPAA 2020) — reference [25] — built on
//! Valiant's BSP bridging model. This crate provides that substrate:
//! the machine/cost abstraction ([`model`]) and BSP cost formulations of
//! the two parallel combing strategies ([`algorithms`]), with constants
//! calibratable against this repository's real implementations.
//!
//! It answers, analytically, the question the paper answers empirically
//! on one shared-memory machine: *when does coarse-grained combing with
//! braid multiplication beat the fine-grained wavefront?* (Answer: when
//! synchronisation is expensive relative to work — see
//! [`algorithms::sweep_machines`] and the `repro abl-bsp` table.)

pub mod algorithms;
pub mod model;

pub use algorithms::{
    antidiag_combing_cost, strip_combing_cost, sweep_machines, Calibration, SweepRow,
};
pub use model::{BspCost, BspMachine, Superstep};
